//! The Lublin–Feitelson batch workload model.
//!
//! Structure (faithful to the published model and to the paper's summary
//! of it):
//!
//! * interarrival times: `Gamma(α, β)` — the paper's "peak hour" model,
//!   α = 10.23, β = 0.49, mean α·β = 5.01 s;
//! * node counts: serial with probability `serial_prob`; otherwise the
//!   log₂ of the size is drawn from a two-stage uniform over
//!   `[low, med, log₂(max_nodes)]` and the result is rounded to a power of
//!   two with probability `pow2_prob`;
//! * runtimes: `exp(X)` where `X` is hyper-Gamma with components
//!   `(shape₁, scale₁)` and `(shape₂, scale₂)` and first-component
//!   probability `p(n) = pa·n + pb` — bigger jobs lean towards the
//!   long-running component.
//!
//! The numeric constants of the original model were fit to 1990s
//! supercomputer logs that we cannot consult offline; the constants in
//! [`LublinConfig::paper_2006`] keep the published *structure* and the
//! paper-specified arrival parameters, with runtime/size constants
//! calibrated so that a 128-node cluster is moderately overloaded at the
//! 5 s peak arrival rate (queues build during the submission window, as
//! the paper describes) while the no-redundancy baseline stretch stays in
//! the O(10) range shown in the paper's Figure 4. See DESIGN.md.

use rand::Rng;
use rbr_dist::{Gamma, HyperGamma, Sample, TwoStageUniform};
use rbr_simcore::{unit, Duration, SimTime};

use crate::estimate::EstimateModel;
use crate::job::JobSpec;

/// All constants of the Lublin workload model.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LublinConfig {
    /// Shape α of the Gamma interarrival distribution.
    pub interarrival_shape: f64,
    /// Scale β of the Gamma interarrival distribution.
    pub interarrival_scale: f64,
    /// Probability that a job is serial (1 node).
    pub serial_prob: f64,
    /// Probability that a parallel job size is rounded to a power of two.
    pub pow2_prob: f64,
    /// Lower breakpoint of the two-stage log₂-size distribution.
    pub size_log2_low: f64,
    /// Middle breakpoint of the two-stage log₂-size distribution.
    pub size_log2_med: f64,
    /// Probability of the lower band in the two-stage size distribution.
    pub size_log2_prob: f64,
    /// Shape of the short-job log-runtime Gamma component.
    pub rt_shape1: f64,
    /// Scale of the short-job log-runtime Gamma component.
    pub rt_scale1: f64,
    /// Shape of the long-job log-runtime Gamma component.
    pub rt_shape2: f64,
    /// Scale of the long-job log-runtime Gamma component.
    pub rt_scale2: f64,
    /// Slope of `p(n) = pa·n + pb`, the probability of the short
    /// component as a function of node count.
    pub rt_pa: f64,
    /// Intercept of `p(n)`.
    pub rt_pb: f64,
    /// Multiplier applied to runtimes after the hyper-Gamma draw — the
    /// single calibration knob for offered load (see DESIGN.md).
    pub runtime_scale: f64,
    /// Runtimes are clamped below by this bound.
    pub min_runtime: Duration,
    /// Runtimes are clamped above by this bound (the original model also
    /// caps runtimes at the machine's policy limit).
    pub max_runtime: Duration,
    /// Cluster size: jobs never request more nodes than this.
    pub max_nodes: u32,
}

impl LublinConfig {
    /// The calibrated configuration used throughout the paper-reproduction
    /// experiments: a 128-node cluster with the paper's peak-hour arrival
    /// process.
    pub fn paper_2006() -> Self {
        LublinConfig {
            interarrival_shape: 10.23,
            interarrival_scale: 0.49,
            serial_prob: 0.55,
            pow2_prob: 0.75,
            size_log2_low: 0.8,
            size_log2_med: 2.5,
            size_log2_prob: 0.86,
            rt_shape1: 100.0,
            rt_scale1: 0.04,
            rt_shape2: 100.0,
            rt_scale2: 0.055,
            rt_pa: -0.0054,
            rt_pb: 0.78,
            runtime_scale: 1.0,
            min_runtime: Duration::from_secs(1.0),
            max_runtime: Duration::from_secs(36_000.0),
            max_nodes: 128,
        }
    }

    /// Same model on a cluster of a different size (Table 3 draws cluster
    /// sizes from {16, 32, 64, 128, 256}).
    pub fn with_max_nodes(mut self, max_nodes: u32) -> Self {
        assert!(max_nodes >= 1, "cluster must have at least one node");
        self.max_nodes = max_nodes;
        self
    }

    /// Changes the interarrival shape α, keeping β — exactly the Figure 3
    /// sweep ("we vary the value of α from 4 to 20, leading to interarrival
    /// times between approximately 2 and 10 seconds").
    pub fn with_interarrival_shape(mut self, alpha: f64) -> Self {
        assert!(alpha > 0.0, "interarrival shape must be positive");
        self.interarrival_shape = alpha;
        self
    }

    /// Rescales β so that the mean interarrival time equals `mean`
    /// seconds (Table 3 draws cluster arrival rates from U(2 s, 20 s)).
    pub fn with_mean_interarrival(mut self, mean: f64) -> Self {
        assert!(mean > 0.0, "mean interarrival must be positive");
        self.interarrival_scale = mean / self.interarrival_shape;
        self
    }

    /// Mean interarrival time α·β in seconds.
    pub fn mean_interarrival(&self) -> f64 {
        self.interarrival_shape * self.interarrival_scale
    }
}

/// A sampler for the Lublin model.
#[derive(Clone, Debug)]
pub struct LublinModel {
    config: LublinConfig,
    interarrival: Gamma,
    size_log2: TwoStageUniform,
    runtime_log: HyperGamma,
}

impl LublinModel {
    /// Builds a sampler from a configuration.
    ///
    /// # Panics
    /// Panics if the configuration is internally inconsistent (e.g. the
    /// size breakpoints exceed `log₂(max_nodes)`).
    pub fn new(config: LublinConfig) -> Self {
        let hi = (config.max_nodes as f64).log2();
        let med = config.size_log2_med.min(hi);
        let low = config.size_log2_low.min(med);
        LublinModel {
            interarrival: Gamma::new(config.interarrival_shape, config.interarrival_scale),
            size_log2: TwoStageUniform::new(low, med, hi, config.size_log2_prob),
            runtime_log: HyperGamma::new(
                config.rt_shape1,
                config.rt_scale1,
                config.rt_shape2,
                config.rt_scale2,
                1.0,
            ),
            config,
        }
    }

    /// The configuration this sampler was built from.
    pub fn config(&self) -> &LublinConfig {
        &self.config
    }

    /// Draws one interarrival gap.
    pub fn sample_interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_secs(self.interarrival.sample(rng).max(1e-6))
    }

    /// Draws one job size (node count).
    pub fn sample_nodes<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        if self.config.max_nodes == 1 || unit(rng) < self.config.serial_prob {
            return 1;
        }
        let l = self.size_log2.sample(rng);
        let nodes = if unit(rng) < self.config.pow2_prob {
            // Round in log space → nearest power of two.
            1u64 << (l.round().max(0.0) as u32)
        } else {
            (2f64.powf(l)).round().max(1.0) as u64
        };
        (nodes.min(self.config.max_nodes as u64) as u32).max(1)
    }

    /// Draws one runtime for a job of the given size.
    pub fn sample_runtime<R: Rng + ?Sized>(&self, rng: &mut R, nodes: u32) -> Duration {
        let p = (self.config.rt_pa * nodes as f64 + self.config.rt_pb).clamp(0.0, 1.0);
        let log_rt = self.runtime_log.with_p(p).sample(rng);
        // Clamp in seconds space between the configured policy bounds.
        let secs = log_rt.exp() * self.config.runtime_scale;
        let rt = Duration::from_secs(secs.min(self.config.max_runtime.as_secs()));
        rt.max(self.config.min_runtime).min(self.config.max_runtime)
    }

    /// Draws one complete job arriving at `arrival`.
    pub fn sample_job<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        arrival: SimTime,
        estimate_model: &EstimateModel,
    ) -> JobSpec {
        let nodes = self.sample_nodes(rng);
        let runtime = self.sample_runtime(rng, nodes);
        let estimate = estimate_model.estimate(runtime, rng);
        JobSpec::new(arrival, nodes, runtime, estimate)
    }

    /// Streams the jobs arriving during `[0, window)` lazily, one at a
    /// time, in exactly the draw order of [`LublinModel::generate`] —
    /// the same seed produces the identical job sequence whether
    /// collected or streamed. Loadgen and large campaigns use this to
    /// replay arrival streams without materializing a full trace.
    pub fn stream<'a, R: Rng + ?Sized>(
        &'a self,
        rng: &'a mut R,
        window: Duration,
        estimate_model: &'a EstimateModel,
    ) -> JobStream<'a, R> {
        JobStream {
            model: self,
            rng,
            estimate_model,
            window,
            t: SimTime::ZERO,
            done: false,
        }
    }

    /// Generates the stream of jobs arriving during `[0, window)`.
    ///
    /// This is the paper's "6 hours of job submissions": arrivals stop at
    /// the window; the simulation later runs until all jobs complete.
    /// A thin collect of [`LublinModel::stream`].
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        window: Duration,
        estimate_model: &EstimateModel,
    ) -> Vec<JobSpec> {
        self.stream(rng, window, estimate_model).collect()
    }

    /// Expected offered load ρ = E[nodes·runtime] / (max_nodes · mean
    /// interarrival), estimated by Monte-Carlo with `n` samples.
    ///
    /// Used in calibration tests: ρ slightly above 1 reproduces the
    /// paper's "queues grow during peak hours" regime.
    pub fn offered_load<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> f64 {
        let mut area = 0.0;
        for _ in 0..n {
            let nodes = self.sample_nodes(rng);
            let rt = self.sample_runtime(rng, nodes);
            area += nodes as f64 * rt.as_secs();
        }
        area / n as f64 / (self.config.max_nodes as f64 * self.config.mean_interarrival())
    }
}

/// Lazy iterator over a Lublin arrival stream: each `next()` draws one
/// interarrival gap and, if the arrival still falls inside the window,
/// one complete job. Ends (permanently) at the first arrival past the
/// window, leaving the borrowed rng positioned exactly where
/// [`LublinModel::generate`] would have left it.
pub struct JobStream<'a, R: Rng + ?Sized> {
    model: &'a LublinModel,
    rng: &'a mut R,
    estimate_model: &'a EstimateModel,
    window: Duration,
    t: SimTime,
    done: bool,
}

impl<R: Rng + ?Sized> Iterator for JobStream<'_, R> {
    type Item = JobSpec;

    fn next(&mut self) -> Option<JobSpec> {
        if self.done {
            return None;
        }
        self.t += self.model.sample_interarrival(self.rng);
        if self.t.since(SimTime::ZERO) >= self.window {
            self.done = true;
            return None;
        }
        Some(self.model.sample_job(self.rng, self.t, self.estimate_model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    fn model() -> LublinModel {
        LublinModel::new(LublinConfig::paper_2006())
    }

    #[test]
    fn interarrival_mean_matches_paper() {
        let m = model();
        assert!((m.config().mean_interarrival() - 5.0127).abs() < 1e-9);
        let mut rng = SeedSequence::new(40).rng();
        let n = 100_000;
        let mean: f64 = (0..n)
            .map(|_| m.sample_interarrival(&mut rng).as_secs())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 5.01).abs() < 0.05, "mean interarrival {mean}");
    }

    #[test]
    fn six_hour_window_yields_about_4000_jobs() {
        let m = model();
        let mut rng = SeedSequence::new(41).rng();
        let jobs = m.generate(&mut rng, Duration::from_hours(6), &EstimateModel::Exact);
        // 21600 s / 5.01 s ≈ 4311 expected.
        assert!(
            (4100..4550).contains(&jobs.len()),
            "got {} jobs",
            jobs.len()
        );
        // Arrivals are sorted and inside the window.
        for w in jobs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        assert!(jobs.last().unwrap().arrival < SimTime::ZERO + Duration::from_hours(6));
    }

    #[test]
    fn node_counts_respect_cluster_size() {
        for max in [1u32, 16, 128, 256] {
            let m = LublinModel::new(LublinConfig::paper_2006().with_max_nodes(max));
            let mut rng = SeedSequence::new(42).rng();
            for _ in 0..20_000 {
                let n = m.sample_nodes(&mut rng);
                assert!((1..=max).contains(&n), "size {n} on {max}-node cluster");
            }
        }
    }

    #[test]
    fn sizes_are_biased_to_powers_of_two() {
        let m = model();
        let mut rng = SeedSequence::new(43).rng();
        let n = 50_000;
        let pow2 = (0..n)
            .map(|_| m.sample_nodes(&mut rng))
            .filter(|s| s.is_power_of_two())
            .count();
        let frac = pow2 as f64 / n as f64;
        // serial (always pow2) + 75 % of parallel jobs, plus accidental
        // power-of-two roundings: well above 0.7.
        assert!(frac > 0.7, "power-of-two fraction {frac}");
    }

    #[test]
    fn serial_fraction_matches_config() {
        let m = model();
        let mut rng = SeedSequence::new(44).rng();
        let n = 100_000;
        let serial = (0..n)
            .map(|_| m.sample_nodes(&mut rng))
            .filter(|&s| s == 1)
            .count();
        let frac = serial as f64 / n as f64;
        // serial_prob plus a tiny mass of parallel jobs rounded down to 1.
        let expected = LublinConfig::paper_2006().serial_prob;
        assert!(
            (expected - 0.01..expected + 0.08).contains(&frac),
            "serial fraction {frac}"
        );
    }

    #[test]
    fn runtimes_are_clamped() {
        let m = model();
        let cfg = *m.config();
        let mut rng = SeedSequence::new(45).rng();
        for _ in 0..50_000 {
            let rt = m.sample_runtime(&mut rng, 8);
            assert!(rt >= cfg.min_runtime && rt <= cfg.max_runtime);
        }
    }

    #[test]
    fn bigger_jobs_run_longer_on_average() {
        let m = model();
        let mut rng = SeedSequence::new(46).rng();
        let n = 40_000;
        let mean_rt = |nodes: u32, rng: &mut rand::rngs::StdRng| {
            (0..n)
                .map(|_| m.sample_runtime(rng, nodes).as_secs())
                .sum::<f64>()
                / n as f64
        };
        let small = mean_rt(1, &mut rng);
        let large = mean_rt(120, &mut rng);
        assert!(
            large > small,
            "p(n) coupling: 120-node mean {large} should exceed 1-node mean {small}"
        );
    }

    #[test]
    fn offered_load_is_moderate_overload() {
        // Calibration guard: the paper's regime is an overloaded peak
        // window. Keep ρ in a band that yields growing queues but O(10)
        // baseline stretches.
        let m = model();
        let mut rng = SeedSequence::new(47).rng();
        let rho = m.offered_load(&mut rng, 200_000);
        assert!(
            (1.05..1.2).contains(&rho),
            "offered load {rho} outside calibration band"
        );
    }

    #[test]
    fn figure3_sweep_changes_mean_interarrival() {
        let c4 = LublinConfig::paper_2006().with_interarrival_shape(4.0);
        let c20 = LublinConfig::paper_2006().with_interarrival_shape(20.0);
        assert!((c4.mean_interarrival() - 1.96).abs() < 1e-9);
        assert!((c20.mean_interarrival() - 9.8).abs() < 1e-9);
    }

    #[test]
    fn with_mean_interarrival_hits_target() {
        let c = LublinConfig::paper_2006().with_mean_interarrival(12.5);
        assert!((c.mean_interarrival() - 12.5).abs() < 1e-9);
    }

    #[test]
    fn estimates_applied_by_sample_job() {
        let m = model();
        let mut rng = SeedSequence::new(48).rng();
        let j = m.sample_job(&mut rng, SimTime::ZERO, &EstimateModel::paper_real());
        assert!(j.estimate >= j.runtime);
    }

    #[test]
    fn stream_is_draw_for_draw_equivalent_to_generate() {
        let m = model();
        let window = Duration::from_secs(3_600.0);
        let est = EstimateModel::paper_real();
        let collected = m.generate(&mut SeedSequence::new(50).rng(), window, &est);
        let mut rng = SeedSequence::new(50).rng();
        let streamed: Vec<JobSpec> = m.stream(&mut rng, window, &est).collect();
        assert_eq!(collected, streamed);
        // The stream leaves the rng exactly where generate would: the
        // next draws from both rngs coincide.
        let mut after_generate = SeedSequence::new(50).rng();
        let _ = m.generate(&mut after_generate, window, &est);
        assert_eq!(
            m.sample_interarrival(&mut rng),
            m.sample_interarrival(&mut after_generate)
        );
    }

    #[test]
    fn stream_is_fused_at_the_window() {
        let m = model();
        let mut rng = SeedSequence::new(51).rng();
        let mut s = m.stream(&mut rng, Duration::from_secs(60.0), &EstimateModel::Exact);
        while s.next().is_some() {}
        assert!(s.next().is_none(), "ended stream must stay ended");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model();
        let a = m.generate(
            &mut SeedSequence::new(49).rng(),
            Duration::from_secs(600.0),
            &EstimateModel::Exact,
        );
        let b = m.generate(
            &mut SeedSequence::new(49).rng(),
            Duration::from_secs(600.0),
            &EstimateModel::Exact,
        );
        assert_eq!(a, b);
    }
}
