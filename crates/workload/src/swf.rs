//! Standard Workload Format (SWF) traces.
//!
//! The paper cross-checked its model-driven results against logs from the
//! Parallel Workloads Archive, which are distributed in SWF: one job per
//! line, 18 whitespace-separated fields, `;` comment/header lines. This
//! module parses, writes, and converts SWF traces to [`JobSpec`] streams
//! so every experiment can also be replayed from a real log.

use std::fmt::Write as _;
use std::str::FromStr;

use rbr_simcore::{Duration, SimTime};

use crate::job::JobSpec;

/// One SWF record (the subset of the 18 standard fields the simulator
/// uses, with the rest preserved for round-tripping).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwfJob {
    /// Field 1: job number.
    pub job_id: u64,
    /// Field 2: submit time (seconds since trace start).
    pub submit: f64,
    /// Field 3: wait time in seconds (−1 if unknown).
    pub wait: f64,
    /// Field 4: actual runtime in seconds.
    pub runtime: f64,
    /// Field 5: number of allocated processors.
    pub used_procs: i64,
    /// Field 8: requested number of processors.
    pub requested_procs: i64,
    /// Field 9: requested (estimated) runtime in seconds.
    pub requested_time: f64,
    /// Field 11: completion status.
    pub status: i64,
}

/// A parsed SWF trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SwfTrace {
    /// Header comment lines (without the leading `;`).
    pub header: Vec<String>,
    /// Job records in file order.
    pub jobs: Vec<SwfJob>,
}

/// Errors from SWF parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum SwfError {
    /// A data line had fewer than the 18 standard fields.
    TooFewFields {
        /// 1-based line number.
        line: usize,
        /// Number of fields found.
        found: usize,
    },
    /// A field failed numeric conversion.
    BadField {
        /// 1-based line number.
        line: usize,
        /// 1-based field index.
        field: usize,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::TooFewFields { line, found } => {
                write!(f, "line {line}: expected 18 SWF fields, found {found}")
            }
            SwfError::BadField { line, field } => {
                write!(f, "line {line}: field {field} is not a number")
            }
        }
    }
}

impl std::error::Error for SwfError {}

impl SwfTrace {
    /// Parses a trace from SWF text.
    pub fn parse(text: &str) -> Result<SwfTrace, SwfError> {
        let mut trace = SwfTrace::default();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                trace.header.push(comment.trim().to_string());
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() < 18 {
                return Err(SwfError::TooFewFields {
                    line: line_no,
                    found: fields.len(),
                });
            }
            fn num<T: FromStr>(fields: &[&str], line: usize, i: usize) -> Result<T, SwfError> {
                fields[i - 1]
                    .parse::<T>()
                    .map_err(|_| SwfError::BadField { line, field: i })
            }
            trace.jobs.push(SwfJob {
                job_id: num(&fields, line_no, 1)?,
                submit: num(&fields, line_no, 2)?,
                wait: num(&fields, line_no, 3)?,
                runtime: num(&fields, line_no, 4)?,
                used_procs: num(&fields, line_no, 5)?,
                requested_procs: num(&fields, line_no, 8)?,
                requested_time: num(&fields, line_no, 9)?,
                status: num(&fields, line_no, 11)?,
            });
        }
        Ok(trace)
    }

    /// Renders the trace back to SWF text (unknown fields written as −1).
    pub fn to_swf(&self) -> String {
        let mut out = String::new();
        for h in &self.header {
            let _ = writeln!(out, "; {h}");
        }
        for j in &self.jobs {
            // SWF allows fractional seconds; six decimals keep the
            // simulator's microsecond resolution lossless.
            let _ = writeln!(
                out,
                "{} {:.6} {:.6} {:.6} {} -1 -1 {} {:.6} -1 {} -1 -1 -1 -1 -1 -1 -1",
                j.job_id,
                j.submit,
                j.wait,
                j.runtime,
                j.used_procs,
                j.requested_procs,
                j.requested_time,
                j.status,
            );
        }
        out
    }

    /// Converts to a [`JobSpec`] stream for the simulator.
    ///
    /// Jobs that cannot be simulated are skipped: non-positive runtime or
    /// processor counts (cancelled or corrupted records). Requested
    /// runtime is floored at the actual runtime, node counts are capped at
    /// `max_nodes`, and arrivals are shifted so the first job arrives at
    /// t = 0.
    pub fn to_jobs(&self, max_nodes: u32) -> Vec<JobSpec> {
        let t0 = self
            .jobs
            .iter()
            .filter(|j| j.runtime > 0.0)
            .map(|j| j.submit)
            .fold(f64::INFINITY, f64::min);
        if !t0.is_finite() {
            return Vec::new();
        }
        self.jobs
            .iter()
            .filter_map(|j| {
                let procs = if j.requested_procs > 0 {
                    j.requested_procs
                } else {
                    j.used_procs
                };
                if j.runtime <= 0.0 || procs <= 0 || j.submit < t0 {
                    return None;
                }
                let runtime = Duration::from_secs(j.runtime);
                let estimate = if j.requested_time > 0.0 {
                    Duration::from_secs(j.requested_time).max(runtime)
                } else {
                    runtime
                };
                Some(JobSpec::new(
                    SimTime::from_secs(j.submit - t0),
                    (procs as u32).min(max_nodes).max(1),
                    runtime,
                    estimate,
                ))
            })
            .collect()
    }

    /// Builds a trace from a [`JobSpec`] stream (the inverse of
    /// [`SwfTrace::to_jobs`], used to export generated workloads).
    pub fn from_jobs(jobs: &[JobSpec], header: Vec<String>) -> SwfTrace {
        SwfTrace {
            header,
            jobs: jobs
                .iter()
                .enumerate()
                .map(|(i, j)| SwfJob {
                    job_id: i as u64 + 1,
                    submit: j.arrival.as_secs(),
                    wait: -1.0,
                    runtime: j.runtime.as_secs(),
                    used_procs: j.nodes as i64,
                    requested_procs: j.nodes as i64,
                    requested_time: j.estimate.as_secs(),
                    status: 1,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Computer: Example Cluster
; MaxNodes: 128
1 0 10 100 4 -1 -1 4 200 -1 1 1 1 -1 1 -1 -1 -1
2 5 0 50 1 -1 -1 1 60 -1 1 2 1 -1 1 -1 -1 -1
3 9 2 0 8 -1 -1 8 300 -1 0 3 1 -1 1 -1 -1 -1
";

    #[test]
    fn parses_header_and_jobs() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        assert_eq!(t.header.len(), 2);
        assert_eq!(t.jobs.len(), 3);
        assert_eq!(t.jobs[0].job_id, 1);
        assert_eq!(t.jobs[0].requested_procs, 4);
        assert_eq!(t.jobs[1].runtime, 50.0);
    }

    #[test]
    fn to_jobs_skips_unusable_records() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let jobs = t.to_jobs(128);
        // Job 3 has zero runtime → skipped.
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].nodes, 4);
        assert_eq!(jobs[0].estimate, Duration::from_secs(200.0));
    }

    #[test]
    fn arrivals_shift_to_zero() {
        let text = "\
10 1000 0 60 2 -1 -1 2 60 -1 1 1 1 -1 1 -1 -1 -1
11 1030 0 60 2 -1 -1 2 60 -1 1 1 1 -1 1 -1 -1 -1
";
        let jobs = SwfTrace::parse(text).unwrap().to_jobs(64);
        assert_eq!(jobs[0].arrival, SimTime::ZERO);
        assert_eq!(jobs[1].arrival, SimTime::from_secs(30.0));
    }

    #[test]
    fn node_counts_capped() {
        let text = "1 0 0 60 512 -1 -1 512 60 -1 1 1 1 -1 1 -1 -1 -1\n";
        let jobs = SwfTrace::parse(text).unwrap().to_jobs(128);
        assert_eq!(jobs[0].nodes, 128);
    }

    #[test]
    fn estimate_floored_at_runtime() {
        let text = "1 0 0 100 4 -1 -1 4 50 -1 1 1 1 -1 1 -1 -1 -1\n";
        let jobs = SwfTrace::parse(text).unwrap().to_jobs(128);
        assert_eq!(jobs[0].estimate, jobs[0].runtime);
    }

    #[test]
    fn roundtrip_through_swf_text() {
        let t = SwfTrace::parse(SAMPLE).unwrap();
        let out = t.to_swf();
        let t2 = SwfTrace::parse(&out).unwrap();
        assert_eq!(t.jobs.len(), t2.jobs.len());
        assert_eq!(t.jobs[0].requested_time, t2.jobs[0].requested_time);
    }

    #[test]
    fn from_jobs_roundtrip() {
        let jobs = vec![
            JobSpec::new(
                SimTime::from_secs(0.0),
                4,
                Duration::from_secs(100.0),
                Duration::from_secs(150.0),
            ),
            JobSpec::new(
                SimTime::from_secs(7.0),
                1,
                Duration::from_secs(30.0),
                Duration::from_secs(30.0),
            ),
        ];
        let trace = SwfTrace::from_jobs(&jobs, vec!["generated".into()]);
        let back = SwfTrace::parse(&trace.to_swf()).unwrap().to_jobs(128);
        assert_eq!(back, jobs);
    }

    #[test]
    fn short_line_is_an_error() {
        let err = SwfTrace::parse("1 2 3\n").unwrap_err();
        assert_eq!(err, SwfError::TooFewFields { line: 1, found: 3 });
    }

    #[test]
    fn bad_number_is_an_error() {
        let err = SwfTrace::parse("x 0 0 60 2 -1 -1 2 60 -1 1 1 1 -1 1 -1 -1 -1\n").unwrap_err();
        assert_eq!(err, SwfError::BadField { line: 1, field: 1 });
    }

    #[test]
    fn empty_trace_yields_no_jobs() {
        let t = SwfTrace::parse("; just a header\n").unwrap();
        assert!(t.to_jobs(128).is_empty());
    }
}
