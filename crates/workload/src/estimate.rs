//! User runtime-estimate models.
//!
//! Section 3.3 of the paper evaluates schedulers both with "Exact
//! Estimates" (jobs request precisely their runtime) and "Real Estimates"
//! (requests are gross overestimations, as observed in practice). The
//! paper uses the "φ model" of Zhang et al. with φ = 0.10, which it
//! describes as "a uniformly distributed overestimation factor with mean
//! 2.16".

use rand::Rng;
use rbr_simcore::{unit, Duration};

/// A model mapping a job's actual runtime to the compute time its user
/// requests.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EstimateModel {
    /// Requests exactly the runtime ("Exact Estimates").
    Exact,
    /// Requested time = runtime × factor, factor uniform in `[lo, hi]`.
    ///
    /// `UniformFactor { lo: 1.0, hi: 3.32 }` realizes the paper's
    /// "uniformly distributed overestimation factor with mean 2.16" and is
    /// what the Table 1 "Real Estimates" column uses
    /// ([`EstimateModel::paper_real`]).
    UniformFactor {
        /// Smallest overestimation factor (≥ 1).
        lo: f64,
        /// Largest overestimation factor.
        hi: f64,
    },
    /// The φ model in its original multiplicative form: the requested time
    /// is `runtime / u` with `u` uniform in `[φ, 1]`, i.e. the *accuracy*
    /// `runtime / request` is uniform. The mean overestimation factor is
    /// `ln(1/φ) / (1 − φ)` (≈ 2.56 for φ = 0.10).
    Phi {
        /// Lower bound of the uniform accuracy (0 < φ ≤ 1).
        phi: f64,
    },
}

impl EstimateModel {
    /// The paper's "Real Estimates" instantiation: uniform factor on
    /// `[1, 3.32]`, mean 2.16.
    pub fn paper_real() -> Self {
        EstimateModel::UniformFactor { lo: 1.0, hi: 3.32 }
    }

    /// Draws the requested compute time for a job with the given runtime.
    ///
    /// The result is always ≥ `runtime`.
    pub fn estimate<R: Rng + ?Sized>(&self, runtime: Duration, rng: &mut R) -> Duration {
        let factor = self.sample_factor(rng);
        runtime.scale(factor).max(runtime)
    }

    /// Draws one overestimation factor (≥ 1).
    pub fn sample_factor<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            EstimateModel::Exact => 1.0,
            EstimateModel::UniformFactor { lo, hi } => {
                assert!(
                    1.0 <= lo && lo <= hi,
                    "uniform factor bounds must satisfy 1 <= lo <= hi, got [{lo}, {hi}]"
                );
                lo + (hi - lo) * unit(rng)
            }
            EstimateModel::Phi { phi } => {
                assert!(phi > 0.0 && phi <= 1.0, "phi must be in (0, 1], got {phi}");
                let u = phi + (1.0 - phi) * unit(rng);
                1.0 / u
            }
        }
    }

    /// Mean overestimation factor of the model.
    pub fn mean_factor(&self) -> f64 {
        match *self {
            EstimateModel::Exact => 1.0,
            EstimateModel::UniformFactor { lo, hi } => 0.5 * (lo + hi),
            EstimateModel::Phi { phi } => {
                if phi >= 1.0 {
                    1.0
                } else {
                    (1.0 / phi).ln() / (1.0 - phi)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn exact_is_identity() {
        let mut rng = SeedSequence::new(30).rng();
        let rt = Duration::from_secs(123.0);
        assert_eq!(EstimateModel::Exact.estimate(rt, &mut rng), rt);
    }

    #[test]
    fn paper_real_has_mean_2_16() {
        let m = EstimateModel::paper_real();
        assert!((m.mean_factor() - 2.16).abs() < 1e-12);
        let mut rng = SeedSequence::new(31).rng();
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| m.sample_factor(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.16).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn estimates_never_undershoot_runtime() {
        let mut rng = SeedSequence::new(32).rng();
        let rt = Duration::from_secs(50.0);
        for model in [
            EstimateModel::Exact,
            EstimateModel::paper_real(),
            EstimateModel::Phi { phi: 0.1 },
        ] {
            for _ in 0..5_000 {
                assert!(model.estimate(rt, &mut rng) >= rt);
            }
        }
    }

    #[test]
    fn phi_mean_factor_formula() {
        let m = EstimateModel::Phi { phi: 0.1 };
        // ln(10) / 0.9 ≈ 2.558
        assert!((m.mean_factor() - 2.5584).abs() < 1e-3);
        let mut rng = SeedSequence::new(33).rng();
        let n = 400_000;
        let mean: f64 = (0..n).map(|_| m.sample_factor(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - m.mean_factor()).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn phi_factor_bounded_by_inverse_phi() {
        let m = EstimateModel::Phi { phi: 0.25 };
        let mut rng = SeedSequence::new(34).rng();
        for _ in 0..10_000 {
            let f = m.sample_factor(&mut rng);
            assert!((1.0..=4.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    #[should_panic(expected = "1 <= lo <= hi")]
    fn invalid_uniform_bounds_rejected() {
        let mut rng = SeedSequence::new(35).rng();
        let _ = EstimateModel::UniformFactor { lo: 0.5, hi: 2.0 }.sample_factor(&mut rng);
    }
}
