//! # rbr-workload
//!
//! Job streams for the redundant-batch-requests study.
//!
//! The paper drives every simulation with the Lublin–Feitelson batch
//! workload model (JPDC 2003), "the latest, most comprehensive, and most
//! validated batch workload model in the literature" at the time:
//!
//! * **arrivals** — Gamma-distributed interarrival times; the "peak hour"
//!   parameters α = 10.23, β = 0.49 give the paper's mean of 5.01 s;
//! * **node counts** — a mixture of serial jobs and a two-stage log-uniform
//!   parallel-size distribution biased towards powers of two;
//! * **runtimes** — a hyper-Gamma distribution in log space whose mixture
//!   weight `p(n) = pa·n + pb` couples runtime to job size.
//!
//! [`LublinModel`] implements that structure with every constant exposed
//! on [`LublinConfig`]. [`LublinConfig::paper_2006`] is the calibrated
//! instance used by the experiment runners (see DESIGN.md for the
//! calibration rationale). The crate also provides the runtime-estimate
//! models of Section 3.3 ([`estimate`]) and SWF trace replay ([`swf`]) for
//! validating against Parallel Workloads Archive logs.

pub mod daily;
pub mod estimate;
pub mod job;
pub mod lublin;
pub mod swf;

pub use daily::{generate_daily, DailyCycle};
pub use estimate::EstimateModel;
pub use job::JobSpec;
pub use lublin::{JobStream, LublinConfig, LublinModel};
pub use swf::{SwfJob, SwfTrace};
