//! Daily arrival-rate modulation.
//!
//! The full Lublin–Feitelson model includes a strong daily cycle; the
//! paper simulates only the "peak hour" slice of it (constant Gamma
//! interarrivals). This module restores the cycle for multi-day
//! experiments such as the §4.1 24-hour queue-size measurement: the
//! peak-hour interarrival process is time-rescaled by an hour-of-day
//! weight profile, so the *peak* hours reproduce the paper's rate exactly
//! and the night hours thin out.

use rand::Rng;
use rbr_simcore::{Duration, SimTime};

use crate::estimate::EstimateModel;
use crate::job::JobSpec;
use crate::lublin::LublinModel;

/// Relative arrival-rate weight for each hour of the day (1 = the
/// peak-hour rate).
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DailyCycle {
    /// Weight per hour of day; each must be in `(0, 1]`.
    pub weights: [f64; 24],
}

impl DailyCycle {
    /// A supercomputer-log-like profile: quiet nights (≈25 % of the peak
    /// rate), a morning ramp, full rate through working hours, and an
    /// evening decline.
    pub fn workday() -> Self {
        let mut weights = [0.25; 24];
        for (hour, w) in weights.iter_mut().enumerate() {
            *w = match hour {
                0..=5 => 0.25,
                6 => 0.4,
                7 => 0.6,
                8 => 0.8,
                9..=17 => 1.0,
                18 => 0.8,
                19 => 0.6,
                20 => 0.5,
                21 => 0.4,
                _ => 0.3,
            };
        }
        DailyCycle { weights }
    }

    /// A flat profile — generation degenerates to the paper's constant
    /// peak-hour process.
    pub fn flat() -> Self {
        DailyCycle { weights: [1.0; 24] }
    }

    /// The weight in effect at instant `t`.
    pub fn weight_at(&self, t: SimTime) -> f64 {
        let hour = (t.as_secs() / 3_600.0) as u64 % 24;
        self.weights[hour as usize]
    }

    /// Mean weight over the day (the average-to-peak rate ratio).
    pub fn mean_weight(&self) -> f64 {
        self.weights.iter().sum::<f64>() / 24.0
    }

    /// Validates the profile.
    ///
    /// # Panics
    /// Panics if any weight is outside `(0, 1]`.
    pub fn validate(&self) {
        for (h, &w) in self.weights.iter().enumerate() {
            assert!(w > 0.0 && w <= 1.0, "hour {h}: weight {w} outside (0, 1]");
        }
    }
}

/// Generates a job stream over `window` with the interarrival gaps
/// time-rescaled by the daily profile: a gap sampled at the peak rate is
/// stretched by `1 / weight(now)`, so the instantaneous rate follows the
/// cycle and equals the paper's rate during peak hours.
pub fn generate_daily<R: Rng + ?Sized>(
    model: &LublinModel,
    cycle: &DailyCycle,
    rng: &mut R,
    window: Duration,
    estimate_model: &EstimateModel,
) -> Vec<JobSpec> {
    cycle.validate();
    let mut jobs = Vec::new();
    let mut t = SimTime::ZERO;
    loop {
        let gap = model.sample_interarrival(rng);
        let weight = cycle.weight_at(t);
        t += gap.scale(1.0 / weight);
        if t.since(SimTime::ZERO) >= window {
            return jobs;
        }
        jobs.push(model.sample_job(rng, t, estimate_model));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lublin::LublinConfig;
    use rbr_simcore::SeedSequence;

    fn model() -> LublinModel {
        LublinModel::new(LublinConfig::paper_2006())
    }

    #[test]
    fn flat_cycle_matches_plain_generation_rate() {
        let m = model();
        let mut rng = SeedSequence::new(80).rng();
        let jobs = generate_daily(
            &m,
            &DailyCycle::flat(),
            &mut rng,
            Duration::from_hours(6),
            &EstimateModel::Exact,
        );
        // ≈ 21600 / 5.01 jobs, like the plain generator.
        assert!((4_100..4_550).contains(&jobs.len()), "got {}", jobs.len());
    }

    #[test]
    fn workday_cycle_thins_the_night() {
        let m = model();
        let cycle = DailyCycle::workday();
        let mut rng = SeedSequence::new(81).rng();
        let jobs = generate_daily(
            &m,
            &cycle,
            &mut rng,
            Duration::from_hours(24),
            &EstimateModel::Exact,
        );
        let hour_of = |j: &JobSpec| (j.arrival.as_secs() / 3_600.0) as usize % 24;
        let night = jobs.iter().filter(|j| hour_of(j) < 6).count() as f64 / 6.0;
        let day = jobs
            .iter()
            .filter(|j| (9..18).contains(&hour_of(j)))
            .count() as f64
            / 9.0;
        // Working hours must be several times busier per hour than night.
        assert!(
            day > 2.5 * night,
            "day rate {day}/h vs night rate {night}/h"
        );
        // Total volume ≈ mean_weight × peak volume.
        let expected = 24.0 * 3_600.0 / 5.01 * cycle.mean_weight();
        let ratio = jobs.len() as f64 / expected;
        assert!((0.9..1.1).contains(&ratio), "volume ratio {ratio}");
    }

    #[test]
    fn weight_lookup_wraps_around_midnight() {
        let cycle = DailyCycle::workday();
        assert_eq!(cycle.weight_at(SimTime::from_secs(3.0 * 3_600.0)), 0.25);
        assert_eq!(cycle.weight_at(SimTime::from_secs(12.0 * 3_600.0)), 1.0);
        // Hour 36 = hour 12 of day two.
        assert_eq!(cycle.weight_at(SimTime::from_secs(36.0 * 3_600.0)), 1.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_weight_rejected() {
        let mut cycle = DailyCycle::flat();
        cycle.weights[3] = 0.0;
        cycle.validate();
    }
}
