//! Property tests for the workload substrate: the SWF parser never
//! panics, generated jobs always satisfy their invariants, and estimate
//! models never under-estimate.

use proptest::prelude::*;
use rand::SeedableRng;
use rbr_simcore::Duration;
use rbr_workload::{EstimateModel, LublinConfig, LublinModel, SwfTrace};

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The SWF parser returns Ok or Err but never panics, on arbitrary
    /// text including control characters and huge numbers.
    #[test]
    fn swf_parser_never_panics(text in ".{0,400}") {
        let _ = SwfTrace::parse(&text);
    }

    /// Structured-but-corrupt SWF lines (numeric soup) also never panic
    /// and any accepted job converts to a valid JobSpec stream.
    #[test]
    fn swf_numeric_soup_is_handled(
        fields in prop::collection::vec(prop::collection::vec(-1e9f64..1e9, 18), 0..20),
    ) {
        let text: String = fields
            .iter()
            .map(|f| {
                f.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>().join(" ") + "\n"
            })
            .collect();
        if let Ok(trace) = SwfTrace::parse(&text) {
            // Conversion must uphold JobSpec invariants (panics otherwise).
            let jobs = trace.to_jobs(128);
            for j in jobs {
                prop_assert!(j.nodes >= 1 && j.nodes <= 128);
                prop_assert!(j.estimate >= j.runtime);
            }
        }
    }

    /// Generated jobs always satisfy the scheduler-facing invariants for
    /// any cluster size and arrival rate.
    #[test]
    fn generated_jobs_are_always_valid(
        max_nodes in 1u32..512,
        mean_iat in 0.5f64..60.0,
        seed in 0u64..500,
    ) {
        let cfg = LublinConfig::paper_2006()
            .with_max_nodes(max_nodes)
            .with_mean_interarrival(mean_iat);
        let model = LublinModel::new(cfg);
        let jobs = model.generate(
            &mut rng(seed),
            Duration::from_secs(600.0),
            &EstimateModel::paper_real(),
        );
        let mut last = None;
        for j in &jobs {
            prop_assert!(j.nodes >= 1 && j.nodes <= max_nodes);
            prop_assert!(!j.runtime.is_zero());
            prop_assert!(j.estimate >= j.runtime);
            if let Some(prev) = last {
                prop_assert!(j.arrival >= prev, "arrivals sorted");
            }
            last = Some(j.arrival);
        }
    }

    /// Every estimate model produces factors ≥ 1 for arbitrary runtimes.
    #[test]
    fn estimates_never_undershoot(runtime_s in 0.001f64..100_000.0, phi in 0.01f64..1.0, seed in 0u64..500) {
        let rt = Duration::from_secs(runtime_s).max(Duration::from_micros(1));
        let mut r = rng(seed);
        for model in [
            EstimateModel::Exact,
            EstimateModel::paper_real(),
            EstimateModel::Phi { phi },
        ] {
            prop_assert!(model.estimate(rt, &mut r) >= rt);
        }
    }
}
