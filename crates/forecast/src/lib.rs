//! # rbr-forecast
//!
//! Statistical queue-waiting-time forecasting — the direction the paper's
//! Section 5 and conclusion point to as future work ("statistical
//! techniques for predicting queue waiting times are more promising
//! [Brevik, Nurmi & Wolski]. It would be interesting to explore the
//! effect of redundant requests on these techniques.").
//!
//! [`QuantilePredictor`] implements the Binomial Method of that line of
//! work: from a history of observed waits, it produces an upper *bound*
//! on a target quantile of the next wait, with a stated confidence, using
//! order statistics — no distributional assumptions.
//!
//! [`evaluate()`] replays a finished grid run through the predictor
//! (observations arrive when jobs start; queries happen at submission)
//! and scores **correctness** (the fraction of waits that respected the
//! bound — should be at least the target quantile) and **tightness**
//! (how much the bound over-shoots), separately for jobs using and not
//! using redundant requests — closing the paper's open question.

pub mod binomial;
pub mod evaluate;

pub use binomial::QuantilePredictor;
pub use evaluate::{evaluate, Evaluation};
