//! The Binomial Method quantile-bound predictor.
//!
//! Given `n` historical observations, the `k`-th order statistic (sorted
//! ascending, 1-based) is an upper bound on the population's `q`-quantile
//! with confidence equal to the probability that a Binomial(n, q) draw is
//! strictly less than `k`. The predictor keeps a sliding window of
//! observations and returns the smallest order statistic achieving the
//! requested confidence — exactly the machinery proposed for
//! batch-queue delay bounds by Brevik, Nurmi & Wolski (PPoPP 2006).

use std::collections::VecDeque;

/// Sliding-window binomial quantile-bound predictor.
#[derive(Clone, Debug)]
pub struct QuantilePredictor {
    quantile: f64,
    confidence: f64,
    capacity: usize,
    history: VecDeque<f64>,
}

impl QuantilePredictor {
    /// Creates a predictor for an upper bound on the `quantile`-quantile
    /// with the given `confidence`, over a sliding window of at most
    /// `capacity` observations.
    ///
    /// # Panics
    /// Panics unless `quantile` and `confidence` are in `(0, 1)` and
    /// `capacity > 0`.
    pub fn new(quantile: f64, confidence: f64, capacity: usize) -> Self {
        assert!(
            quantile > 0.0 && quantile < 1.0,
            "quantile must be in (0, 1), got {quantile}"
        );
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        assert!(capacity > 0, "window capacity must be positive");
        QuantilePredictor {
            quantile,
            confidence,
            capacity,
            history: VecDeque::new(),
        }
    }

    /// The canonical configuration of the original work: an upper bound
    /// on the 95th-percentile wait with 95 % confidence.
    pub fn qbets_default() -> Self {
        QuantilePredictor::new(0.95, 0.95, 512)
    }

    /// Records one observed wait (seconds).
    ///
    /// # Panics
    /// Panics on negative or non-finite observations.
    pub fn observe(&mut self, wait_secs: f64) {
        assert!(
            wait_secs.is_finite() && wait_secs >= 0.0,
            "waits must be finite and non-negative, got {wait_secs}"
        );
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(wait_secs);
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The smallest number of observations at which a bound exists: the
    /// maximum order statistic must itself clear the confidence bar,
    /// i.e. `1 − q^n ≥ confidence`.
    pub fn min_observations(&self) -> usize {
        // n ≥ ln(1 − c) / ln(q)
        ((1.0 - self.confidence).ln() / self.quantile.ln()).ceil() as usize
    }

    /// The current upper bound on the target quantile of the next wait,
    /// or `None` if the window is still too small for the requested
    /// confidence.
    pub fn predict(&self) -> Option<f64> {
        let n = self.history.len();
        if n < self.min_observations() {
            return None;
        }
        let mut sorted: Vec<f64> = self.history.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("observations are finite"));
        let k = smallest_k(n, self.quantile, self.confidence)?;
        Some(sorted[k - 1])
    }
}

/// Smallest 1-based `k` such that `P[Binomial(n, q) < k] ≥ confidence`,
/// i.e. the k-th order statistic upper-bounds the q-quantile with the
/// requested confidence. `None` if even `k = n` does not reach it.
fn smallest_k(n: usize, q: f64, confidence: f64) -> Option<usize> {
    // Walk the binomial CDF with the standard recurrence; all in linear
    // space (n ≤ a few thousand, probabilities well-conditioned because
    // we stop as soon as the CDF crosses the confidence).
    let mut pmf = (1.0 - q).powi(n as i32); // P[X = 0]
    let mut cdf = pmf;
    if cdf >= confidence {
        return Some(1);
    }
    for x in 0..n {
        // pmf(x+1) = pmf(x) · (n−x)/(x+1) · q/(1−q)
        pmf *= (n - x) as f64 / (x + 1) as f64 * (q / (1.0 - q));
        cdf += pmf;
        let k = x + 2; // bound strictly above X = x+1 needs k = x+2
        if k > n {
            break;
        }
        if cdf >= confidence {
            return Some(k);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smallest_k_matches_hand_computation() {
        // n = 3, q = 0.5: CDF at X<1 is 0.125, X<2 is 0.5, X<3 is 0.875.
        assert_eq!(smallest_k(3, 0.5, 0.8), Some(3));
        assert_eq!(smallest_k(3, 0.5, 0.4), Some(2));
        assert_eq!(smallest_k(3, 0.5, 0.9), None);
    }

    #[test]
    fn min_observations_for_qbets_default() {
        let p = QuantilePredictor::qbets_default();
        // 1 − 0.95^n ≥ 0.95 → n ≥ 59 (ln 0.05 / ln 0.95 ≈ 58.4).
        assert_eq!(p.min_observations(), 59);
    }

    #[test]
    fn no_prediction_until_enough_history() {
        let mut p = QuantilePredictor::qbets_default();
        for i in 0..58 {
            p.observe(i as f64);
            assert!(p.predict().is_none(), "premature bound at n = {}", i + 1);
        }
        p.observe(58.0);
        assert!(p.predict().is_some());
    }

    #[test]
    fn bound_is_an_upper_order_statistic() {
        let mut p = QuantilePredictor::new(0.5, 0.9, 1_000);
        for i in 1..=100 {
            p.observe(i as f64);
        }
        let bound = p.predict().expect("enough history");
        // Median bound with 90% confidence over 1..=100: above the median,
        // at most the maximum.
        assert!(bound > 50.0 && bound <= 100.0, "bound {bound}");
    }

    #[test]
    fn sliding_window_forgets_old_observations() {
        let mut p = QuantilePredictor::new(0.5, 0.8, 100);
        for _ in 0..100 {
            p.observe(1_000.0);
        }
        for _ in 0..100 {
            p.observe(1.0);
        }
        assert_eq!(p.len(), 100);
        let bound = p.predict().unwrap();
        assert_eq!(bound, 1.0, "window must have slid past the large waits");
    }

    /// Empirical coverage: for iid waits, the bound must cover the true
    /// quantile at least `confidence` of the time.
    #[test]
    fn empirical_coverage_holds() {
        use rand::{RngExt, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut covered = 0;
        let trials = 300;
        for _ in 0..trials {
            let mut p = QuantilePredictor::new(0.8, 0.9, 512);
            for _ in 0..200 {
                p.observe(rng.random::<f64>()); // U(0,1): 0.8-quantile = 0.8
            }
            if p.predict().unwrap() >= 0.8 {
                covered += 1;
            }
        }
        let rate = covered as f64 / trials as f64;
        assert!(rate >= 0.85, "coverage {rate} below confidence");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_wait_rejected() {
        let mut p = QuantilePredictor::qbets_default();
        p.observe(-1.0);
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn invalid_quantile_rejected() {
        let _ = QuantilePredictor::new(1.0, 0.9, 10);
    }
}
