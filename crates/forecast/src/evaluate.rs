//! Offline evaluation of the statistical predictor against a finished
//! grid run.
//!
//! The replay respects information causality: a job's wait becomes
//! observable when it *starts*; a prediction for a job is made at its
//! *submission*, using only waits observed strictly before that instant,
//! and only from the job's home cluster (each cluster's users see their
//! own queue history).

use rbr_grid::{JobRecord, RunResult};
use rbr_stats::Summary;

use crate::binomial::QuantilePredictor;

/// Scores for one job population.
#[derive(Clone, Copy, Debug, Default)]
pub struct PopulationScore {
    /// Jobs that had a prediction available at submission.
    pub predicted: usize,
    /// Of those, how many actually waited no longer than the bound.
    pub covered: usize,
    /// Mean of `bound / max(wait, floor)` over predicted jobs — the
    /// bound's looseness (the statistical analogue of Table 4's
    /// over-prediction factors).
    pub tightness_mean: f64,
}

impl PopulationScore {
    /// Fraction of predicted jobs whose wait respected the bound; should
    /// be at least the predictor's target quantile when the waits are
    /// exchangeable.
    pub fn correctness(&self) -> f64 {
        if self.predicted == 0 {
            f64::NAN
        } else {
            self.covered as f64 / self.predicted as f64
        }
    }
}

/// The evaluation outcome over a run.
#[derive(Clone, Copy, Debug)]
pub struct Evaluation {
    /// Jobs that used redundant requests.
    pub redundant: PopulationScore,
    /// Jobs that did not.
    pub non_redundant: PopulationScore,
    /// Everything together.
    pub all: PopulationScore,
}

/// Replays `run` through per-cluster predictors.
///
/// `floor_secs` guards the tightness ratio against zero waits (same
/// convention as Table 4's over-prediction ratios).
pub fn evaluate(run: &RunResult, predictor: &QuantilePredictor, floor_secs: f64) -> Evaluation {
    assert!(floor_secs > 0.0, "tightness floor must be positive");
    let n_clusters = run.max_queue_len.len();
    let mut predictors = vec![predictor.clone(); n_clusters];

    // Timeline: predictions fire at submissions, observations at starts.
    // Sort indices by the relevant instants; process in global time
    // order, observations before predictions at equal instants (a start
    // at the same instant as a submission is visible history).
    #[derive(Clone, Copy)]
    enum Ev {
        Observe(usize),
        Predict(usize),
    }
    let mut events: Vec<(u64, u8, Ev)> = Vec::with_capacity(run.records.len() * 2);
    for (i, r) in run.records.iter().enumerate() {
        events.push((r.start.as_micros(), 0, Ev::Observe(i)));
        events.push((r.arrival.as_micros(), 1, Ev::Predict(i)));
    }
    events.sort_by_key(|&(t, kind, _)| (t, kind));

    let mut bounds: Vec<Option<f64>> = vec![None; run.records.len()];
    for (_, _, ev) in events {
        match ev {
            Ev::Observe(i) => {
                let r = &run.records[i];
                // Users observe the queue they submitted to; the winning
                // copy's wait is reported at its home cluster, where the
                // user watches from.
                predictors[r.home].observe(r.wait().as_secs());
            }
            Ev::Predict(i) => {
                bounds[i] = predictors[run.records[i].home].predict();
            }
        }
    }

    let mut redundant = Accum::default();
    let mut non_redundant = Accum::default();
    let mut all = Accum::default();
    for (r, bound) in run.records.iter().zip(&bounds) {
        if let Some(b) = *bound {
            all.push(r, b, floor_secs);
            if r.redundant {
                redundant.push(r, b, floor_secs);
            } else {
                non_redundant.push(r, b, floor_secs);
            }
        }
    }
    Evaluation {
        redundant: redundant.score(),
        non_redundant: non_redundant.score(),
        all: all.score(),
    }
}

#[derive(Default)]
struct Accum {
    predicted: usize,
    covered: usize,
    tightness: Summary,
}

impl Accum {
    fn push(&mut self, r: &JobRecord, bound: f64, floor: f64) {
        self.predicted += 1;
        let wait = r.wait().as_secs();
        if wait <= bound {
            self.covered += 1;
        }
        self.tightness.push(bound.max(floor) / wait.max(floor));
    }

    fn score(&self) -> PopulationScore {
        PopulationScore {
            predicted: self.predicted,
            covered: self.covered,
            tightness_mean: self.tightness.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_grid::record::JobClass;
    use rbr_grid::{GridConfig, GridSim, Scheme};
    use rbr_simcore::{Duration, SeedSequence};

    fn run_grid(scheme: Scheme, fraction: f64) -> RunResult {
        let mut cfg = GridConfig::homogeneous(3, scheme);
        cfg.redundant_fraction = fraction;
        cfg.window = Duration::from_secs(3_600.0);
        GridSim::execute(cfg, SeedSequence::new(321))
    }

    #[test]
    fn coverage_meets_target_without_redundancy() {
        let run = run_grid(Scheme::None, 0.0);
        let eval = evaluate(&run, &QuantilePredictor::new(0.9, 0.9, 512), 1.0);
        assert!(eval.all.predicted > 100, "enough predicted jobs");
        // The binomial guarantee assumes exchangeable waits; during an
        // overloaded submission window waits trend upward, so empirical
        // coverage falls below the nominal level (the original authors
        // added changepoint detection for exactly this). Require the
        // bound to remain broadly informative rather than nominal.
        assert!(
            eval.all.correctness() > 0.6,
            "correctness {}",
            eval.all.correctness()
        );
        assert!(eval.all.tightness_mean >= 1.0);
    }

    #[test]
    fn mixed_population_scores_both_classes() {
        let run = run_grid(Scheme::All, 0.5);
        let eval = evaluate(&run, &QuantilePredictor::new(0.9, 0.9, 512), 1.0);
        assert!(eval.redundant.predicted > 0);
        assert!(eval.non_redundant.predicted > 0);
        assert_eq!(
            eval.all.predicted,
            eval.redundant.predicted + eval.non_redundant.predicted
        );
        // Both are real statistics.
        assert!(eval.redundant.correctness().is_finite());
        assert!(eval.non_redundant.correctness().is_finite());
        let _ = run.stretch(JobClass::All);
    }

    #[test]
    fn early_jobs_have_no_prediction() {
        let run = run_grid(Scheme::None, 0.0);
        let eval = evaluate(&run, &QuantilePredictor::qbets_default(), 1.0);
        // The first min_observations jobs per cluster cannot be predicted.
        assert!(eval.all.predicted < run.records.len());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_floor_rejected() {
        let run = run_grid(Scheme::None, 0.0);
        let _ = evaluate(&run, &QuantilePredictor::qbets_default(), 0.0);
    }
}
