//! The crash-safe, segmented campaign journal.
//!
//! A campaign directory holds fixed-size JSONL *segments* plus a compact
//! footer index:
//!
//! ```text
//! seg-00000.jsonl   header + up to `segment_records` cell records
//! seg-00001.jsonl   ...
//! journal.idx       index header + one block per sealed segment
//! ```
//!
//! Every segment starts with a header line naming the campaign manifest,
//! the declared cell count, and its own segment number; each completed
//! cell is appended (and flushed) to the active segment the moment it
//! finishes. When a segment fills, it is *sealed*: a block is appended
//! to `journal.idx` mapping each of its cells to `(segment, offset,
//! len)`, terminated by a commit line carrying the segment's record
//! count and byte length. [`Journal::load`] then recovers sealed
//! segments by seeking through the index — an O(index) operation that
//! never reads sealed payload bytes — and only linearly scans the
//! segments past the last committed block (normally just the active
//! one). [`Journal::finish`] seals the final partial segment of a
//! completed campaign so a later `--resume` replay is pure index seeks.
//!
//! Crash tolerance mirrors the writer's append order. A kill mid-record
//! leaves a truncated final line in the active segment (tolerated and
//! cut on reopen, exactly as the single-file format did); a kill
//! mid-seal leaves a torn tail block in `journal.idx` (ignored — the
//! affected segment is recovered by scan instead); a *disagreement*
//! between a committed index block and its segment file is an error,
//! never a silent drop, because sealed segments are immutable by
//! construction. Journals written by the pre-segmented single-file
//! format (`journal.jsonl`) still load via the original linear scan.
//!
//! The format remains deliberately minimal — objects with string and
//! number fields only — so this crate needs no JSON dependency and the
//! records stay greppable:
//!
//! ```text
//! {"campaign":"scale=smoke seed=default reps=- format=json","cells":16,"segment":0}
//! {"cell":0,"key":"fig1","elapsed_secs":0.41,"payload":"{\"meta\":..."}
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::hash;

/// Registry handle for successful cell appends (registered once; the
/// per-append cost is a relaxed load when metrics are off).
fn appends_counter() -> &'static rbr_obs::Counter {
    static C: OnceLock<rbr_obs::Counter> = OnceLock::new();
    C.get_or_init(|| rbr_obs::metrics::counter("exec.journal.appends"))
}

/// Registry handle for sealed index blocks.
fn seals_counter() -> &'static rbr_obs::Counter {
    static C: OnceLock<rbr_obs::Counter> = OnceLock::new();
    C.get_or_init(|| rbr_obs::metrics::counter("exec.journal.seals"))
}

/// File name of the legacy single-file journal inside a campaign
/// directory (still loadable; new journals are segmented).
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// File name of the footer index inside a campaign directory.
pub const INDEX_FILE: &str = "journal.idx";

/// Records per segment before it rolls and is sealed into the index.
pub const DEFAULT_SEGMENT_RECORDS: usize = 1024;

/// The file name of segment `segment`.
pub fn segment_file(segment: u64) -> String {
    format!("seg-{segment:05}.jsonl")
}

/// One completed cell, as recorded in the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Cell index within the campaign (its merge position).
    pub cell: u64,
    /// Stable cell key (the experiment's registry name).
    pub key: String,
    /// Wall-clock seconds the cell took when it originally ran.
    pub elapsed_secs: f64,
    /// The cell's rendered output, replayed verbatim on resume.
    pub payload: String,
}

/// Where a loaded cell's payload lives.
#[derive(Clone, Debug)]
enum Loc {
    /// Legacy single-file journal: the linear scan already decoded the
    /// payload, so it is held in memory (the status quo for old dirs).
    Inline(String),
    /// Segmented journal: the payload is fetched on demand with one
    /// seek + bounded read, so resume memory stays O(index).
    Seek { segment: u64, offset: u64, len: u64 },
}

/// One completed cell as the loader located it: metadata in memory,
/// payload fetched lazily via [`Loaded::read_payload`].
#[derive(Clone, Debug)]
pub struct Entry {
    /// Cell index within the campaign.
    pub cell: u64,
    /// Stable cell key.
    pub key: String,
    /// Wall-clock seconds the cell took when it originally ran.
    pub elapsed_secs: f64,
    loc: Loc,
}

/// How to continue appending after a load, per format.
#[derive(Debug)]
enum Resume {
    Legacy {
        /// Byte length of the valid prefix; anything past this is a
        /// truncated trailing record and must be cut before appending.
        valid_len: u64,
    },
    Segmented {
        /// The segment new appends go into. May not exist yet on disk
        /// (every existing segment was already sealed).
        active_segment: u64,
        /// Truncate the active segment to this before appending, when it
        /// exists (`None` = create it fresh, with a header).
        active_valid_len: Option<u64>,
        /// Records already in the active segment.
        active_records: usize,
        /// Truncate `journal.idx` to this before appending (cuts a torn
        /// tail block).
        idx_valid_len: u64,
        /// Roll threshold recorded in the index header (the default when
        /// the index was missing).
        segment_records: usize,
    },
}

/// A parsed journal: the campaign identity plus the located cells.
#[derive(Debug)]
pub struct Loaded {
    /// The campaign manifest the journal was recorded under.
    pub manifest: String,
    /// Total cells the campaign declared.
    pub cells: u64,
    /// Every completed cell, in recovery order (index blocks first, then
    /// scanned segments in file order).
    pub entries: Vec<Entry>,
    /// True when a partial trailing line was dropped from the active
    /// segment (or the legacy file).
    pub dropped_partial: bool,
    /// Cells located via the footer index (no payload bytes read).
    pub indexed: usize,
    /// Cells recovered by linearly scanning unindexed segments.
    pub scanned: usize,
    dir: PathBuf,
    resume: Resume,
    /// One cached open segment handle for [`Loaded::read_payload`];
    /// replay reads arrive in cell order, which clusters by segment.
    reader: Mutex<Option<(u64, File)>>,
}

impl Loaded {
    /// Reads one cell's payload: a clone for legacy journals, a single
    /// seek + bounded read for segmented ones.
    pub fn read_payload(&self, entry: &Entry) -> Result<String, String> {
        match &entry.loc {
            Loc::Inline(payload) => Ok(payload.clone()),
            Loc::Seek {
                segment,
                offset,
                len,
            } => {
                let mut reader = self.reader.lock().unwrap();
                if reader.as_ref().map(|(s, _)| *s) != Some(*segment) {
                    let path = self.dir.join(segment_file(*segment));
                    let file = File::open(&path)
                        .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                    *reader = Some((*segment, file));
                }
                let (_, file) = reader.as_mut().unwrap();
                file.seek(SeekFrom::Start(*offset))
                    .map_err(|e| format!("cannot seek segment {segment}: {e}"))?;
                let mut buf = vec![0u8; *len as usize];
                file.read_exact(&mut buf)
                    .map_err(|e| format!("cannot read segment {segment}: {e}"))?;
                let line = buf.strip_suffix(b"\n").unwrap_or(&buf);
                let record = parse_record(line).map_err(|e| {
                    format!("segment {segment} offset {offset}: indexed record is corrupt: {e}")
                })?;
                if record.cell != entry.cell {
                    return Err(format!(
                        "segment {segment} offset {offset}: index says cell {} but the \
                         record is cell {} — index/segment disagreement",
                        entry.cell, record.cell
                    ));
                }
                Ok(record.payload)
            }
        }
    }
}

/// A sealed-cell index entry held for the active segment until it rolls.
struct IndexEntry {
    cell: u64,
    key: String,
    elapsed_secs: f64,
    offset: u64,
    len: u64,
}

/// Append state of a segmented journal.
struct Segmented {
    dir: PathBuf,
    cells: u64,
    segment_records: usize,
    index: File,
    segment: u64,
    file: File,
    seg_bytes: u64,
    seg_records: usize,
    /// Index entries for the active segment, written out when it seals.
    pending: Vec<IndexEntry>,
    finished: bool,
}

/// An append handle on a campaign journal.
pub struct Journal {
    store: Store,
}

enum Store {
    Legacy { file: File, path: PathBuf },
    Segmented(Segmented),
}

impl Journal {
    /// Starts a fresh segmented journal (removing any previous journal
    /// in `dir`, legacy or segmented) with headers declaring the
    /// manifest and cell count. `segment_records` is the roll threshold.
    pub fn create(
        dir: &Path,
        manifest: &str,
        cells: u64,
        segment_records: usize,
    ) -> Result<Journal, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create campaign dir {}: {e}", dir.display()))?;
        remove_existing_journal(dir)?;
        let segment_records = segment_records.max(1);
        let (file, seg_bytes) = create_segment(dir, manifest, cells, 0)?;
        let idx_path = dir.join(INDEX_FILE);
        let mut index = File::create(&idx_path)
            .map_err(|e| format!("cannot create {}: {e}", idx_path.display()))?;
        let header = format!(
            "{{\"index\":\"rbr-journal-v1\",\"manifest_hash\":\"{}\",\
             \"cells\":{cells},\"segment_records\":{segment_records}}}\n",
            hash::digest64(manifest.as_bytes())
        );
        index
            .write_all(header.as_bytes())
            .and_then(|()| index.flush())
            .map_err(|e| format!("cannot write {}: {e}", idx_path.display()))?;
        Ok(Journal {
            store: Store::Segmented(Segmented {
                dir: dir.to_path_buf(),
                cells,
                segment_records,
                index,
                segment: 0,
                file,
                seg_bytes,
                seg_records: 0,
                pending: Vec::new(),
                finished: false,
            }),
        })
    }

    /// Reopens a loaded journal for appending: truncates the torn tails
    /// `load` identified (active segment and/or index) and restores the
    /// active segment's pending index entries.
    pub fn reopen(dir: &Path, loaded: &Loaded) -> Result<Journal, String> {
        match &loaded.resume {
            Resume::Legacy { valid_len } => {
                let path = dir.join(JOURNAL_FILE);
                let file = OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                file.set_len(*valid_len)
                    .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?;
                Ok(Journal {
                    store: Store::Legacy { file, path },
                })
            }
            Resume::Segmented {
                active_segment,
                active_valid_len,
                active_records,
                idx_valid_len,
                segment_records,
            } => {
                let idx_path = dir.join(INDEX_FILE);
                let index = match OpenOptions::new().write(true).open(&idx_path) {
                    Ok(f) => {
                        f.set_len(*idx_valid_len)
                            .map_err(|e| format!("cannot truncate {}: {e}", idx_path.display()))?;
                        OpenOptions::new()
                            .append(true)
                            .open(&idx_path)
                            .map_err(|e| format!("cannot reopen {}: {e}", idx_path.display()))?
                    }
                    // The index never made it to disk (kill between the
                    // first segment's creation and the index header):
                    // recreate it so future seals have somewhere to go.
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        let mut f = File::create(&idx_path)
                            .map_err(|e| format!("cannot create {}: {e}", idx_path.display()))?;
                        let header = format!(
                            "{{\"index\":\"rbr-journal-v1\",\"manifest_hash\":\"{}\",\
                             \"cells\":{},\"segment_records\":{segment_records}}}\n",
                            hash::digest64(loaded.manifest.as_bytes()),
                            loaded.cells
                        );
                        f.write_all(header.as_bytes())
                            .and_then(|()| f.flush())
                            .map_err(|e| format!("cannot write {}: {e}", idx_path.display()))?;
                        f
                    }
                    Err(e) => return Err(format!("cannot open {}: {e}", idx_path.display())),
                };
                let (file, seg_bytes, seg_records) = match active_valid_len {
                    Some(valid_len) => {
                        let path = dir.join(segment_file(*active_segment));
                        let f = OpenOptions::new()
                            .write(true)
                            .open(&path)
                            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
                        f.set_len(*valid_len)
                            .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
                        let f = OpenOptions::new()
                            .append(true)
                            .open(&path)
                            .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?;
                        (f, *valid_len, *active_records)
                    }
                    None => {
                        let (f, bytes) =
                            create_segment(dir, &loaded.manifest, loaded.cells, *active_segment)?;
                        (f, bytes, 0)
                    }
                };
                // The active segment's cells must re-enter the pending
                // list so the block written at its eventual seal is
                // complete. They were all recovered by scan (the active
                // segment is past the last committed block by
                // definition), so their seek locations are known.
                let pending = loaded
                    .entries
                    .iter()
                    .filter_map(|e| match &e.loc {
                        Loc::Seek {
                            segment,
                            offset,
                            len,
                        } if segment == active_segment => Some(IndexEntry {
                            cell: e.cell,
                            key: e.key.clone(),
                            elapsed_secs: e.elapsed_secs,
                            offset: *offset,
                            len: *len,
                        }),
                        _ => None,
                    })
                    .collect();
                Ok(Journal {
                    store: Store::Segmented(Segmented {
                        dir: dir.to_path_buf(),
                        cells: loaded.cells,
                        segment_records: *segment_records,
                        index,
                        segment: *active_segment,
                        file,
                        seg_bytes,
                        seg_records,
                        pending,
                        finished: false,
                    }),
                })
            }
        }
    }

    /// Appends one completed cell and flushes, so the record survives a
    /// kill immediately after. Rolls (and seals) the active segment
    /// first when it is full.
    pub fn append(&mut self, record: &Record) -> Result<(), String> {
        let mut line = format!("{{\"cell\":{},\"key\":", record.cell);
        write_json_string(&mut line, &record.key);
        line.push_str(&format!(",\"elapsed_secs\":{}", record.elapsed_secs));
        line.push_str(",\"payload\":");
        write_json_string(&mut line, &record.payload);
        line.push_str("}\n");
        let appended = match &mut self.store {
            Store::Legacy { file, path } => file
                .write_all(line.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| format!("cannot append to {}: {e}", path.display())),
            Store::Segmented(seg) => {
                if seg.finished {
                    return Err("journal already finished".to_string());
                }
                if seg.seg_records >= seg.segment_records {
                    seg.roll()?;
                }
                let path = seg.dir.join(segment_file(seg.segment));
                seg.file
                    .write_all(line.as_bytes())
                    .and_then(|()| seg.file.flush())
                    .map_err(|e| format!("cannot append to {}: {e}", path.display()))?;
                seg.pending.push(IndexEntry {
                    cell: record.cell,
                    key: record.key.clone(),
                    elapsed_secs: record.elapsed_secs,
                    offset: seg.seg_bytes,
                    len: line.len() as u64,
                });
                seg.seg_bytes += line.len() as u64;
                seg.seg_records += 1;
                Ok(())
            }
        };
        if appended.is_ok() {
            appends_counter().inc();
        }
        appended
    }

    /// Seals the final (partial) segment of a completed campaign into
    /// the index, so a later `--resume` replays by pure index seeks. No
    /// further appends are accepted. A no-op for legacy journals.
    pub fn finish(&mut self) -> Result<(), String> {
        if let Store::Segmented(seg) = &mut self.store {
            if !seg.finished && !seg.pending.is_empty() {
                seg.seal()?;
            }
            seg.finished = true;
        }
        Ok(())
    }

    /// Loads and validates the journal in `dir`, whichever format it is.
    ///
    /// Returns `Ok(None)` when no journal exists. Sealed segments load
    /// through the footer index without reading payload bytes; segments
    /// past the last committed index block (or all of them, when the
    /// index is missing) are recovered by linear scan. A malformed or
    /// incomplete *final* line of the active segment is tolerated
    /// (dropped, and cut on reopen); a committed index block that
    /// disagrees with its segment file is an error.
    pub fn load(dir: &Path) -> Result<Option<Loaded>, String> {
        let seg0 = dir.join(segment_file(0));
        let idx = dir.join(INDEX_FILE);
        if seg0.exists() || idx.exists() {
            return load_segmented(dir).map(Some);
        }
        load_legacy(dir)
    }
}

impl Segmented {
    /// Appends the active segment's block (cell lines, then the commit
    /// line that makes the block valid) to the footer index.
    fn seal(&mut self) -> Result<(), String> {
        let mut block = String::new();
        for e in &self.pending {
            block.push_str(&format!("{{\"cell\":{},\"key\":", e.cell));
            write_json_string(&mut block, &e.key);
            block.push_str(&format!(
                ",\"elapsed_secs\":{},\"segment\":{},\"offset\":{},\"len\":{}}}\n",
                e.elapsed_secs, self.segment, e.offset, e.len
            ));
        }
        block.push_str(&format!(
            "{{\"segment\":{},\"records\":{},\"bytes\":{}}}\n",
            self.segment,
            self.pending.len(),
            self.seg_bytes
        ));
        let idx_path = self.dir.join(INDEX_FILE);
        self.index
            .write_all(block.as_bytes())
            .and_then(|()| self.index.flush())
            .map_err(|e| format!("cannot append to {}: {e}", idx_path.display()))?;
        self.pending.clear();
        seals_counter().inc();
        Ok(())
    }

    /// Seals the full active segment and opens the next one.
    fn roll(&mut self) -> Result<(), String> {
        self.seal()?;
        // Re-derive the manifest for the next segment's header from the
        // pending-free state: segment headers repeat the manifest so any
        // single segment file is self-describing.
        let manifest = read_manifest(&self.dir, self.segment)?;
        self.segment += 1;
        let (file, bytes) = create_segment(&self.dir, &manifest, self.cells, self.segment)?;
        self.file = file;
        self.seg_bytes = bytes;
        self.seg_records = 0;
        Ok(())
    }
}

/// Reads the manifest back out of segment `segment`'s header line.
fn read_manifest(dir: &Path, segment: u64) -> Result<String, String> {
    let path = dir.join(segment_file(segment));
    let file = File::open(&path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    let mut line = String::new();
    BufReader::new(file)
        .read_line(&mut line)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let (manifest, _, _) = parse_segment_header(line.trim_end_matches('\n').as_bytes())
        .map_err(|e| format!("{}: bad segment header: {e}", path.display()))?;
    Ok(manifest)
}

/// Creates segment file `segment` with its header line.
fn create_segment(
    dir: &Path,
    manifest: &str,
    cells: u64,
    segment: u64,
) -> Result<(File, u64), String> {
    let path = dir.join(segment_file(segment));
    let mut file =
        File::create(&path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
    let mut header = String::from("{\"campaign\":");
    write_json_string(&mut header, manifest);
    header.push_str(&format!(",\"cells\":{cells},\"segment\":{segment}}}\n"));
    file.write_all(header.as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    Ok((file, header.len() as u64))
}

/// Removes every journal artifact in `dir` (a fresh run must not see
/// stale segments from a previous, longer campaign).
fn remove_existing_journal(dir: &Path) -> Result<(), String> {
    for name in [JOURNAL_FILE, INDEX_FILE] {
        let path = dir.join(name);
        if path.exists() {
            std::fs::remove_file(&path)
                .map_err(|e| format!("cannot remove {}: {e}", path.display()))?;
        }
    }
    let entries = match std::fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(format!("cannot list {}: {e}", dir.display())),
    };
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("seg-") && name.ends_with(".jsonl") {
            std::fs::remove_file(entry.path())
                .map_err(|e| format!("cannot remove {}: {e}", entry.path().display()))?;
        }
    }
    Ok(())
}

/// One committed index block's summary.
struct CommittedSegment {
    bytes: u64,
}

/// Loads a segmented journal: index blocks first, then a linear scan of
/// everything past the last committed block.
fn load_segmented(dir: &Path) -> Result<Loaded, String> {
    // The first segment's header is the campaign's identity (the index
    // only carries a hash of it).
    let seg0_path = dir.join(segment_file(0));
    let seg0_head = {
        let file = match File::open(&seg0_path) {
            Ok(f) => f,
            Err(e) => {
                return Err(format!(
                    "cannot open {}: {e} (index present without its first segment)",
                    seg0_path.display()
                ))
            }
        };
        let mut line = String::new();
        BufReader::new(file)
            .read_line(&mut line)
            .map_err(|e| format!("cannot read {}: {e}", seg0_path.display()))?;
        line
    };
    let (manifest, cells, seg0_num) =
        parse_segment_header(seg0_head.trim_end_matches('\n').as_bytes())
            .map_err(|e| format!("{}: bad segment header: {e}", seg0_path.display()))?;
    if seg0_num != 0 {
        return Err(format!(
            "{}: header claims segment {seg0_num}, expected 0",
            seg0_path.display()
        ));
    }

    // Parse the footer index, tolerating a torn tail (a block whose
    // commit line never landed): everything from the first anomaly on is
    // ignored and the affected segments are recovered by scan instead.
    let idx_path = dir.join(INDEX_FILE);
    let mut entries: Vec<Entry> = Vec::new();
    let mut committed: Vec<CommittedSegment> = Vec::new();
    let mut idx_valid_len = 0u64;
    let mut segment_records = DEFAULT_SEGMENT_RECORDS;
    match std::fs::read(&idx_path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(format!("cannot read {}: {e}", idx_path.display())),
        Ok(bytes) => {
            let mut lines: Vec<(usize, &[u8])> = Vec::new();
            let mut start = 0usize;
            for (i, b) in bytes.iter().enumerate() {
                if *b == b'\n' {
                    lines.push((i + 1, &bytes[start..i]));
                    start = i + 1;
                }
            }
            let mut it = lines.iter();
            if let Some((header_end, header)) = it.next() {
                let idx_header = parse_index_header(header)
                    .map_err(|e| format!("{}: bad index header: {e}", idx_path.display()))?;
                if idx_header.manifest_hash != hash::digest64(manifest.as_bytes()) {
                    return Err(format!(
                        "{}: index manifest hash {} does not match segment manifest `{}`",
                        idx_path.display(),
                        idx_header.manifest_hash,
                        manifest
                    ));
                }
                if idx_header.cells != cells {
                    return Err(format!(
                        "{}: index declares {} cells but segments declare {}",
                        idx_path.display(),
                        idx_header.cells,
                        cells
                    ));
                }
                segment_records = idx_header.segment_records;
                idx_valid_len = *header_end as u64;
                let mut block: Vec<Entry> = Vec::new();
                for (end, line) in it {
                    match parse_index_line(line) {
                        Ok(IndexLine::Cell(entry)) => {
                            let in_segment = match &entry.loc {
                                Loc::Seek { segment, .. } => *segment,
                                Loc::Inline(_) => unreachable!("index lines carry seek locs"),
                            };
                            if in_segment != committed.len() as u64 {
                                // A cell line for the wrong segment:
                                // treat as a torn tail and fall back to
                                // scanning from here on.
                                break;
                            }
                            block.push(entry);
                        }
                        Ok(IndexLine::Commit {
                            segment,
                            records,
                            bytes,
                        }) => {
                            if segment != committed.len() as u64 || records != block.len() {
                                break;
                            }
                            entries.append(&mut block);
                            committed.push(CommittedSegment { bytes });
                            idx_valid_len = *end as u64;
                        }
                        Err(_) => break,
                    }
                }
            }
        }
    }
    let indexed = entries.len();

    // Committed blocks promise immutable, fully-sealed segment files:
    // verify each file's size exactly. Any disagreement is corruption —
    // erroring beats silently re-running (or worse, dropping) cells.
    for (s, c) in committed.iter().enumerate() {
        let path = dir.join(segment_file(s as u64));
        let meta = std::fs::metadata(&path).map_err(|e| {
            format!(
                "index/segment disagreement: committed segment {s} is missing ({}: {e})",
                path.display()
            )
        })?;
        if meta.len() != c.bytes {
            return Err(format!(
                "index/segment disagreement: segment {s} is {} bytes on disk but the \
                 index committed {} — refusing to resume from a corrupt journal",
                meta.len(),
                c.bytes
            ));
        }
    }

    // Scan everything past the last committed block: normally just the
    // active segment, plus any segment whose seal was torn away.
    let first_unindexed = committed.len() as u64;
    let mut last_existing = None;
    let mut probe = first_unindexed;
    while dir.join(segment_file(probe)).exists() {
        last_existing = Some(probe);
        probe += 1;
    }
    let mut scanned = 0usize;
    let mut dropped_partial = false;
    let mut active_valid_len = None;
    let mut active_records = 0usize;
    let active_segment = match last_existing {
        // Every segment on disk is sealed and committed: appends resume
        // into a fresh next segment.
        None => first_unindexed,
        Some(last) => {
            for s in first_unindexed..=last {
                let is_last = s == last;
                let scan = scan_segment(dir, s, &manifest, cells, is_last)?;
                scanned += scan.entries.len();
                if is_last {
                    dropped_partial = scan.dropped_partial;
                    active_valid_len = Some(scan.valid_len);
                    active_records = scan.entries.len();
                }
                entries.extend(scan.entries);
            }
            last
        }
    };

    Ok(Loaded {
        manifest,
        cells,
        entries,
        dropped_partial,
        indexed,
        scanned,
        dir: dir.to_path_buf(),
        resume: Resume::Segmented {
            active_segment,
            active_valid_len,
            active_records,
            idx_valid_len,
            segment_records,
        },
        reader: Mutex::new(None),
    })
}

/// A scanned segment's contents.
struct ScannedSegment {
    entries: Vec<Entry>,
    valid_len: u64,
    dropped_partial: bool,
}

/// Linearly scans one segment file. Only the final (active) segment may
/// carry a truncated tail; a sealed-but-unindexed segment rolled before
/// the kill, so corruption inside it is an error.
fn scan_segment(
    dir: &Path,
    segment: u64,
    manifest: &str,
    cells: u64,
    tolerate_tail: bool,
) -> Result<ScannedSegment, String> {
    let path = dir.join(segment_file(segment));
    let bytes = std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut lines: Vec<(usize, &[u8])> = Vec::new();
    let mut start = 0usize;
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            lines.push((i + 1, &bytes[start..i]));
            start = i + 1;
        }
    }
    let unterminated = start < bytes.len();

    let mut it = lines.iter();
    let Some((header_end, header)) = it.next() else {
        return Err(format!("{}: missing segment header", path.display()));
    };
    let (seg_manifest, seg_cells, seg_num) = parse_segment_header(header)
        .map_err(|e| format!("{}: bad segment header: {e}", path.display()))?;
    if seg_manifest != manifest || seg_cells != cells || seg_num != segment {
        return Err(format!(
            "{}: segment header disagrees with the campaign \
             (manifest/cells/segment {seg_num})",
            path.display()
        ));
    }

    let mut entries = Vec::new();
    let mut valid_len = *header_end as u64;
    let mut dropped_partial = unterminated;
    let total = lines.len();
    for (n, (end, line)) in it.enumerate() {
        match parse_record(line) {
            Ok(record) => {
                entries.push(Entry {
                    cell: record.cell,
                    key: record.key,
                    elapsed_secs: record.elapsed_secs,
                    loc: Loc::Seek {
                        segment,
                        offset: valid_len,
                        len: (*end as u64) - valid_len,
                    },
                });
                valid_len = *end as u64;
            }
            // `n` counts record lines (header excluded); the last
            // terminated line is record index total - 2.
            Err(e) if tolerate_tail && n + 2 == total && !unterminated => {
                // A malformed final line: the writer was killed after
                // the '\n' of the previous record but the filesystem
                // still surfaced garbage (or a partial write that
                // happened to include a newline). Drop it.
                let _ = e;
                dropped_partial = true;
                break;
            }
            Err(e) => {
                return Err(format!(
                    "{}: corrupt journal record on line {}: {e}",
                    path.display(),
                    n + 2
                ));
            }
        }
    }
    if unterminated && !tolerate_tail {
        return Err(format!(
            "{}: sealed segment ends mid-record",
            path.display()
        ));
    }
    Ok(ScannedSegment {
        entries,
        valid_len,
        dropped_partial,
    })
}

/// Loads a legacy single-file journal (`journal.jsonl`), the
/// pre-segmented format: one linear scan, payloads held inline.
fn load_legacy(dir: &Path) -> Result<Option<Loaded>, String> {
    let path = dir.join(JOURNAL_FILE);
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    // Split into lines, keeping track of each line's end offset so a
    // valid prefix length can be reported. A well-formed journal ends
    // with '\n'; anything after the last '\n' is a partial record by
    // construction.
    let mut lines: Vec<(usize, &[u8])> = Vec::new();
    let mut start = 0usize;
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'\n' {
            lines.push((i + 1, &bytes[start..i]));
            start = i + 1;
        }
    }
    let unterminated = start < bytes.len();

    let mut it = lines.iter();
    let Some((header_end, header)) = it.next() else {
        return Err(format!("{}: missing journal header", path.display()));
    };
    let (manifest, cells) = parse_legacy_header(header)
        .map_err(|e| format!("{}: bad journal header: {e}", path.display()))?;

    let mut entries = Vec::new();
    let mut valid_len = *header_end as u64;
    let mut dropped_partial = unterminated;
    let total = lines.len();
    for (n, (end, line)) in it.enumerate() {
        match parse_record(line) {
            Ok(record) => {
                entries.push(Entry {
                    cell: record.cell,
                    key: record.key,
                    elapsed_secs: record.elapsed_secs,
                    loc: Loc::Inline(record.payload),
                });
                valid_len = *end as u64;
            }
            Err(e) if n + 2 == total && !unterminated => {
                let _ = e;
                dropped_partial = true;
                break;
            }
            Err(e) => {
                return Err(format!(
                    "{}: corrupt journal record on line {}: {e}",
                    path.display(),
                    n + 2
                ));
            }
        }
    }
    let scanned = entries.len();
    Ok(Some(Loaded {
        manifest,
        cells,
        entries,
        dropped_partial,
        indexed: 0,
        scanned,
        dir: dir.to_path_buf(),
        resume: Resume::Legacy { valid_len },
        reader: Mutex::new(None),
    }))
}

fn parse_legacy_header(line: &[u8]) -> Result<(String, u64), String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("campaign")?;
    let manifest = p.string()?;
    p.expect(',')?;
    p.expect_key("cells")?;
    let cells = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect('}')?;
    p.end()?;
    Ok((manifest, cells))
}

fn parse_segment_header(line: &[u8]) -> Result<(String, u64, u64), String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("campaign")?;
    let manifest = p.string()?;
    p.expect(',')?;
    p.expect_key("cells")?;
    let cells = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("segment")?;
    let segment = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect('}')?;
    p.end()?;
    Ok((manifest, cells, segment))
}

struct IndexHeader {
    manifest_hash: String,
    cells: u64,
    segment_records: usize,
}

fn parse_index_header(line: &[u8]) -> Result<IndexHeader, String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("index")?;
    let version = p.string()?;
    if version != "rbr-journal-v1" {
        return Err(format!("unknown index version {version:?}"));
    }
    p.expect(',')?;
    p.expect_key("manifest_hash")?;
    let manifest_hash = p.string()?;
    p.expect(',')?;
    p.expect_key("cells")?;
    let cells = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("segment_records")?;
    let segment_records = p.number()?.parse::<usize>().map_err(|e| e.to_string())?;
    p.expect('}')?;
    p.end()?;
    Ok(IndexHeader {
        manifest_hash,
        cells,
        segment_records: segment_records.max(1),
    })
}

enum IndexLine {
    Cell(Entry),
    Commit {
        segment: u64,
        records: usize,
        bytes: u64,
    },
}

fn parse_index_line(line: &[u8]) -> Result<IndexLine, String> {
    if line.starts_with(b"{\"segment\":") {
        let mut p = Scanner::new(line)?;
        p.expect('{')?;
        p.expect_key("segment")?;
        let segment = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
        p.expect(',')?;
        p.expect_key("records")?;
        let records = p.number()?.parse::<usize>().map_err(|e| e.to_string())?;
        p.expect(',')?;
        p.expect_key("bytes")?;
        let bytes = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
        p.expect('}')?;
        p.end()?;
        return Ok(IndexLine::Commit {
            segment,
            records,
            bytes,
        });
    }
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("cell")?;
    let cell = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("key")?;
    let key = p.string()?;
    p.expect(',')?;
    p.expect_key("elapsed_secs")?;
    let elapsed_secs = p.number()?.parse::<f64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("segment")?;
    let segment = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("offset")?;
    let offset = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("len")?;
    let len = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect('}')?;
    p.end()?;
    Ok(IndexLine::Cell(Entry {
        cell,
        key,
        elapsed_secs,
        loc: Loc::Seek {
            segment,
            offset,
            len,
        },
    }))
}

pub(crate) fn parse_record(line: &[u8]) -> Result<Record, String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("cell")?;
    let cell = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("key")?;
    let key = p.string()?;
    p.expect(',')?;
    p.expect_key("elapsed_secs")?;
    let elapsed_secs = p.number()?.parse::<f64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("payload")?;
    let payload = p.string()?;
    p.expect('}')?;
    p.end()?;
    Ok(Record {
        cell,
        key,
        elapsed_secs,
        payload,
    })
}

/// Appends `s` as a JSON string literal.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A strict scanner for the journal's fixed record shapes. It is not a
/// general JSON parser: keys must appear in writing order, which is
/// exactly what lets a half-written record be detected as such.
pub(crate) struct Scanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    pub(crate) fn new(line: &'a [u8]) -> Result<Self, String> {
        let src = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
        Ok(Scanner { src, pos: 0 })
    }

    pub(crate) fn expect(&mut self, c: char) -> Result<(), String> {
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    pub(crate) fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let want = format!("\"{key}\":");
        if self.src[self.pos..].starts_with(&want) {
            self.pos += want.len();
            Ok(())
        } else {
            Err(format!("expected key {key:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self
            .src
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        let _ = bytes;
        Ok(&self.src[start..self.pos])
    }

    pub(crate) fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let bytes = self.src.as_bytes();
        loop {
            match bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let end = self.pos + 4;
                            let hex = self
                                .src
                                .get(self.pos..end)
                                .ok_or("truncated unicode escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid unicode escape".to_string())?;
                            self.pos = end;
                            // Surrogate pairs do not occur: the writer
                            // only \u-escapes control characters.
                            out.push(
                                char::from_u32(code).ok_or("invalid unicode escape".to_string())?,
                            );
                        }
                        _ => return Err("invalid escape".to_string()),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .src
                        .as_bytes()
                        .get(self.pos)
                        .is_some_and(|b| *b != b'"' && *b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(&self.src[start..self.pos]);
                }
            }
        }
    }

    pub(crate) fn end(&mut self) -> Result<(), String> {
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbr-exec-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(i: u64) -> Record {
        Record {
            cell: i,
            key: format!("exp{i}"),
            elapsed_secs: 0.5 + i as f64,
            payload: format!("{{\"meta\":\"exp{i}\",\"line\":\"a\\nb · π\"}}"),
        }
    }

    fn payloads(loaded: &Loaded) -> Vec<Record> {
        loaded
            .entries
            .iter()
            .map(|e| Record {
                cell: e.cell,
                key: e.key.clone(),
                elapsed_secs: e.elapsed_secs,
                payload: loaded.read_payload(e).unwrap(),
            })
            .collect()
    }

    #[test]
    fn round_trips_records() {
        let dir = tmp_dir("roundtrip");
        let mut j =
            Journal::create(&dir, "scale=smoke seed=7", 3, DEFAULT_SEGMENT_RECORDS).unwrap();
        for i in 0..3 {
            j.append(&sample(i)).unwrap();
        }
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.manifest, "scale=smoke seed=7");
        assert_eq!(loaded.cells, 3);
        assert!(!loaded.dropped_partial);
        assert_eq!(payloads(&loaded), (0..3).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_none() {
        assert!(Journal::load(&tmp_dir("missing")).unwrap().is_none());
    }

    #[test]
    fn rolls_segments_and_loads_sealed_cells_from_the_index() {
        let dir = tmp_dir("roll");
        let mut j = Journal::create(&dir, "m", 10, 3).unwrap();
        for i in 0..10 {
            j.append(&sample(i)).unwrap();
        }
        // 10 records at 3 per segment: segments 0..2 sealed, segment 3
        // active with one record.
        assert!(dir.join(segment_file(3)).exists());
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.indexed, 9, "three sealed segments via the index");
        assert_eq!(loaded.scanned, 1, "only the active segment is scanned");
        assert_eq!(payloads(&loaded), (0..10).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn finish_seals_the_partial_segment_for_index_only_replay() {
        let dir = tmp_dir("finish");
        let mut j = Journal::create(&dir, "m", 5, 3).unwrap();
        for i in 0..5 {
            j.append(&sample(i)).unwrap();
        }
        j.finish().unwrap();
        assert!(
            j.append(&sample(9)).is_err(),
            "finished journals reject appends"
        );
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.indexed, 5, "every cell loads via the index");
        assert_eq!(loaded.scanned, 0);
        assert_eq!(payloads(&loaded), (0..5).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tolerates_truncated_trailing_record() {
        let dir = tmp_dir("truncated");
        let mut j = Journal::create(&dir, "m", 4, DEFAULT_SEGMENT_RECORDS).unwrap();
        j.append(&sample(0)).unwrap();
        j.append(&sample(1)).unwrap();
        drop(j);
        let path = dir.join(segment_file(0));
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-way through the final record.
        std::fs::write(&path, &full[..full.len() - 17]).unwrap();
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert!(loaded.dropped_partial);
        assert_eq!(payloads(&loaded), vec![sample(0)]);
        // Reopening truncates the garbage so appends stay well-formed.
        let mut j = Journal::reopen(&dir, &loaded).unwrap();
        j.append(&sample(1)).unwrap();
        j.append(&sample(2)).unwrap();
        let reloaded = Journal::load(&dir).unwrap().unwrap();
        assert!(!reloaded.dropped_partial);
        assert_eq!(payloads(&reloaded), (0..3).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_across_a_roll_keeps_sealing_later_segments() {
        let dir = tmp_dir("resume-roll");
        let mut j = Journal::create(&dir, "m", 8, 2).unwrap();
        for i in 0..3 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!((loaded.indexed, loaded.scanned), (2, 1));
        let mut j = Journal::reopen(&dir, &loaded).unwrap();
        for i in 3..8 {
            j.append(&sample(i)).unwrap();
        }
        j.finish().unwrap();
        let reloaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(reloaded.indexed, 8, "resumed appends keep sealing blocks");
        assert_eq!(payloads(&reloaded), (0..8).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_index_falls_back_to_a_full_scan() {
        let dir = tmp_dir("noindex");
        let mut j = Journal::create(&dir, "m", 7, 2).unwrap();
        for i in 0..7 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.indexed, 0);
        assert_eq!(loaded.scanned, 7, "every segment recovered by scan");
        assert_eq!(payloads(&loaded), (0..7).map(sample).collect::<Vec<_>>());
        // And the journal still resumes (the index is recreated).
        let mut j = Journal::reopen(&dir, &loaded).unwrap();
        j.append(&sample(7)).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_index_tail_is_ignored_and_recovered_by_scan() {
        let dir = tmp_dir("torn-idx");
        let mut j = Journal::create(&dir, "m", 6, 2).unwrap();
        for i in 0..6 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        // Tear the last committed block's commit line off the index, as
        // a kill mid-seal would.
        let idx = dir.join(INDEX_FILE);
        let text = std::fs::read_to_string(&idx).unwrap();
        let cut = text.rfind("{\"segment\":1,").unwrap();
        std::fs::write(&idx, &text[..cut]).unwrap();
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.indexed, 2, "only the first committed block survives");
        assert_eq!(loaded.scanned, 4, "the torn block's segments re-scan");
        assert_eq!(payloads(&loaded), (0..6).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_sealed_segment_is_an_error_not_a_silent_drop() {
        let dir = tmp_dir("bad-seal");
        let mut j = Journal::create(&dir, "m", 6, 2).unwrap();
        for i in 0..6 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        // Corrupt a *sealed* segment behind the index's back.
        let seg = dir.join(segment_file(1));
        let bytes = std::fs::read(&seg).unwrap();
        std::fs::write(&seg, &bytes[..bytes.len() - 10]).unwrap();
        let err = Journal::load(&dir).unwrap_err();
        assert!(err.contains("index/segment disagreement"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_sealed_segment_is_an_error() {
        let dir = tmp_dir("gone-seal");
        let mut j = Journal::create(&dir, "m", 6, 2).unwrap();
        for i in 0..6 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        std::fs::remove_file(dir.join(segment_file(0))).unwrap();
        let err = Journal::load(&dir).unwrap_err();
        assert!(err.contains("segment"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_corruption_before_the_tail() {
        let dir = tmp_dir("corrupt");
        let mut j = Journal::create(&dir, "m", 3, DEFAULT_SEGMENT_RECORDS).unwrap();
        for i in 0..3 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        let path = dir.join(segment_file(0));
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"cell\":1", "\"cell\":oops")).unwrap();
        let err = Journal::load(&dir).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_missing_header() {
        let dir = tmp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(segment_file(0)), "").unwrap();
        assert!(Journal::load(&dir).unwrap_err().contains("header"));
        std::fs::write(dir.join(segment_file(0)), "{\"nope\":1}\n").unwrap();
        assert!(Journal::load(&dir).unwrap_err().contains("header"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn loads_legacy_single_file_journals() {
        let dir = tmp_dir("legacy");
        std::fs::create_dir_all(&dir).unwrap();
        // Hand-write the pre-segmented format.
        let mut text = String::from("{\"campaign\":\"scale=smoke seed=1\",\"cells\":3}\n");
        for i in 0..2u64 {
            let r = sample(i);
            text.push_str(&format!("{{\"cell\":{},\"key\":", r.cell));
            write_json_string(&mut text, &r.key);
            text.push_str(&format!(",\"elapsed_secs\":{}", r.elapsed_secs));
            text.push_str(",\"payload\":");
            write_json_string(&mut text, &r.payload);
            text.push_str("}\n");
        }
        std::fs::write(dir.join(JOURNAL_FILE), &text).unwrap();
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.manifest, "scale=smoke seed=1");
        assert_eq!(loaded.indexed, 0);
        assert_eq!(loaded.scanned, 2);
        assert_eq!(payloads(&loaded), (0..2).map(sample).collect::<Vec<_>>());
        // Legacy journals stay appendable in place.
        let mut j = Journal::reopen(&dir, &loaded).unwrap();
        j.append(&sample(2)).unwrap();
        let reloaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(payloads(&reloaded), (0..3).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_create_removes_stale_segments() {
        let dir = tmp_dir("stale");
        let mut j = Journal::create(&dir, "m", 9, 2).unwrap();
        for i in 0..9 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        // A shorter fresh campaign in the same dir must not resurrect
        // cells from the old run's higher segments.
        let mut j = Journal::create(&dir, "m2", 2, 2).unwrap();
        j.append(&sample(0)).unwrap();
        drop(j);
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.manifest, "m2");
        assert_eq!(loaded.entries.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escapes_survive_payload_round_trip() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\te\u{1}π");
        let mut p = Scanner::new(out.as_bytes()).unwrap();
        assert_eq!(p.string().unwrap(), "a\"b\\c\nd\te\u{1}π");
        p.end().unwrap();
    }
}
