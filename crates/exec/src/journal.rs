//! The crash-safe campaign journal.
//!
//! A campaign directory holds `journal.jsonl`: a header line describing
//! the campaign, then one JSON record per *completed* cell, appended (and
//! flushed) the moment the cell finishes. A campaign killed mid-flight
//! therefore leaves a journal whose records are exactly the finished
//! cells — except possibly a truncated final line if the kill landed
//! mid-write. [`Journal::load`] tolerates that one partial trailing
//! record (the resumed campaign re-runs that cell); corruption anywhere
//! else is reported as an error, because it means the journal is not the
//! append-only file this module writes.
//!
//! The format is deliberately minimal — objects with string and number
//! fields only — so this crate needs no JSON dependency and the records
//! stay greppable:
//!
//! ```text
//! {"campaign":"scale=smoke seed=default reps=- format=json","cells":16}
//! {"cell":0,"key":"fig1","elapsed_secs":0.41,"payload":"{\"meta\":..."}
//! ```

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// File name of the journal inside a campaign directory.
pub const JOURNAL_FILE: &str = "journal.jsonl";

/// One completed cell, as recorded in the journal.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Cell index within the campaign (its merge position).
    pub cell: u64,
    /// Stable cell key (the experiment's registry name).
    pub key: String,
    /// Wall-clock seconds the cell took when it originally ran.
    pub elapsed_secs: f64,
    /// The cell's rendered output, replayed verbatim on resume.
    pub payload: String,
}

/// A parsed journal: header plus the valid record prefix.
#[derive(Debug)]
pub struct Loaded {
    /// The campaign manifest the journal was recorded under.
    pub manifest: String,
    /// Total cells the campaign declared.
    pub cells: u64,
    /// Valid records, in append order.
    pub records: Vec<Record>,
    /// Byte length of the valid prefix; anything past this is a
    /// truncated trailing record and must be cut before appending.
    pub valid_len: u64,
    /// True when a partial trailing line was dropped.
    pub dropped_partial: bool,
}

/// An append handle on a campaign journal.
pub struct Journal {
    file: File,
    path: PathBuf,
}

impl Journal {
    /// Starts a fresh journal (truncating any previous one) with a
    /// header declaring the manifest and cell count.
    pub fn create(dir: &Path, manifest: &str, cells: u64) -> Result<Journal, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create campaign dir {}: {e}", dir.display()))?;
        let path = dir.join(JOURNAL_FILE);
        let mut file =
            File::create(&path).map_err(|e| format!("cannot create {}: {e}", path.display()))?;
        let mut header = String::from("{\"campaign\":");
        write_json_string(&mut header, manifest);
        header.push_str(&format!(",\"cells\":{cells}}}\n"));
        file.write_all(header.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(Journal { file, path })
    }

    /// Reopens an existing journal for appending, first truncating it to
    /// `valid_len` (cutting a partial trailing record, if any).
    pub fn reopen(dir: &Path, valid_len: u64) -> Result<Journal, String> {
        let path = dir.join(JOURNAL_FILE);
        let file = OpenOptions::new()
            .write(true)
            .open(&path)
            .map_err(|e| format!("cannot open {}: {e}", path.display()))?;
        file.set_len(valid_len)
            .map_err(|e| format!("cannot truncate {}: {e}", path.display()))?;
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("cannot reopen {}: {e}", path.display()))?;
        Ok(Journal { file, path })
    }

    /// Appends one completed cell and flushes, so the record survives a
    /// kill immediately after.
    pub fn append(&mut self, record: &Record) -> Result<(), String> {
        let mut line = format!("{{\"cell\":{},\"key\":", record.cell);
        write_json_string(&mut line, &record.key);
        line.push_str(&format!(",\"elapsed_secs\":{}", record.elapsed_secs));
        line.push_str(",\"payload\":");
        write_json_string(&mut line, &record.payload);
        line.push_str("}\n");
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("cannot append to {}: {e}", self.path.display()))
    }

    /// Loads and validates `dir/journal.jsonl`.
    ///
    /// Returns `Ok(None)` when the file does not exist. A malformed or
    /// incomplete *final* line is tolerated (dropped from the records and
    /// excluded from [`Loaded::valid_len`]); malformed earlier lines are
    /// errors.
    pub fn load(dir: &Path) -> Result<Option<Loaded>, String> {
        let path = dir.join(JOURNAL_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        // Split into lines, keeping track of each line's end offset so a
        // valid prefix length can be reported. A well-formed journal
        // ends with '\n'; anything after the last '\n' is a partial
        // record by construction.
        let mut lines: Vec<(usize, &[u8])> = Vec::new();
        let mut start = 0usize;
        for (i, b) in bytes.iter().enumerate() {
            if *b == b'\n' {
                lines.push((i + 1, &bytes[start..i]));
                start = i + 1;
            }
        }
        let unterminated = start < bytes.len();

        let mut it = lines.iter();
        let Some((header_end, header)) = it.next() else {
            // Empty or header-less file: treat everything as truncated.
            return Err(format!("{}: missing journal header", path.display()));
        };
        let (manifest, cells) = parse_header(header)
            .map_err(|e| format!("{}: bad journal header: {e}", path.display()))?;

        let mut records = Vec::new();
        let mut valid_len = *header_end as u64;
        let mut dropped_partial = unterminated;
        let total = lines.len();
        for (n, (end, line)) in it.enumerate() {
            match parse_record(line) {
                Ok(record) => {
                    records.push(record);
                    valid_len = *end as u64;
                }
                // `n` counts record lines (header excluded); the last
                // terminated line is record index total - 2.
                Err(e) if n + 2 == total && !unterminated => {
                    // A malformed final line: the writer was killed after
                    // the '\n' of the previous record but the filesystem
                    // still surfaced garbage (or a partial write that
                    // happened to include a newline). Drop it.
                    let _ = e;
                    dropped_partial = true;
                    break;
                }
                Err(e) => {
                    return Err(format!(
                        "{}: corrupt journal record on line {}: {e}",
                        path.display(),
                        n + 2
                    ));
                }
            }
        }
        Ok(Some(Loaded {
            manifest,
            cells,
            records,
            valid_len,
            dropped_partial,
        }))
    }
}

fn parse_header(line: &[u8]) -> Result<(String, u64), String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("campaign")?;
    let manifest = p.string()?;
    p.expect(',')?;
    p.expect_key("cells")?;
    let cells = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect('}')?;
    p.end()?;
    Ok((manifest, cells))
}

fn parse_record(line: &[u8]) -> Result<Record, String> {
    let mut p = Scanner::new(line)?;
    p.expect('{')?;
    p.expect_key("cell")?;
    let cell = p.number()?.parse::<u64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("key")?;
    let key = p.string()?;
    p.expect(',')?;
    p.expect_key("elapsed_secs")?;
    let elapsed_secs = p.number()?.parse::<f64>().map_err(|e| e.to_string())?;
    p.expect(',')?;
    p.expect_key("payload")?;
    let payload = p.string()?;
    p.expect('}')?;
    p.end()?;
    Ok(Record {
        cell,
        key,
        elapsed_secs,
        payload,
    })
}

/// Appends `s` as a JSON string literal.
pub(crate) fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A strict scanner for the journal's fixed record shape. It is not a
/// general JSON parser: keys must appear in writing order, which is
/// exactly what lets a half-written record be detected as such.
struct Scanner<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(line: &'a [u8]) -> Result<Self, String> {
        let src = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
        Ok(Scanner { src, pos: 0 })
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.src[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(format!("expected {c:?} at byte {}", self.pos))
        }
    }

    fn expect_key(&mut self, key: &str) -> Result<(), String> {
        let want = format!("\"{key}\":");
        if self.src[self.pos..].starts_with(&want) {
            self.pos += want.len();
            Ok(())
        } else {
            Err(format!("expected key {key:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<&'a str, String> {
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self
            .src
            .as_bytes()
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        let _ = bytes;
        Ok(&self.src[start..self.pos])
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        let bytes = self.src.as_bytes();
        loop {
            match bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let end = self.pos + 4;
                            let hex = self
                                .src
                                .get(self.pos..end)
                                .ok_or("truncated unicode escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid unicode escape".to_string())?;
                            self.pos = end;
                            // Surrogate pairs do not occur: the writer
                            // only \u-escapes control characters.
                            out.push(
                                char::from_u32(code).ok_or("invalid unicode escape".to_string())?,
                            );
                        }
                        _ => return Err("invalid escape".to_string()),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .src
                        .as_bytes()
                        .get(self.pos)
                        .is_some_and(|b| *b != b'"' && *b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(&self.src[start..self.pos]);
                }
            }
        }
    }

    fn end(&mut self) -> Result<(), String> {
        if self.pos == self.src.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbr-exec-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(i: u64) -> Record {
        Record {
            cell: i,
            key: format!("exp{i}"),
            elapsed_secs: 0.5 + i as f64,
            payload: format!("{{\"meta\":\"exp{i}\",\"line\":\"a\\nb · π\"}}"),
        }
    }

    #[test]
    fn round_trips_records() {
        let dir = tmp_dir("roundtrip");
        let mut j = Journal::create(&dir, "scale=smoke seed=7", 3).unwrap();
        for i in 0..3 {
            j.append(&sample(i)).unwrap();
        }
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert_eq!(loaded.manifest, "scale=smoke seed=7");
        assert_eq!(loaded.cells, 3);
        assert!(!loaded.dropped_partial);
        assert_eq!(loaded.records, (0..3).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_none() {
        assert!(Journal::load(&tmp_dir("missing")).unwrap().is_none());
    }

    #[test]
    fn tolerates_truncated_trailing_record() {
        let dir = tmp_dir("truncated");
        let mut j = Journal::create(&dir, "m", 4).unwrap();
        j.append(&sample(0)).unwrap();
        j.append(&sample(1)).unwrap();
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let full = std::fs::read(&path).unwrap();
        // Chop the file mid-way through the final record.
        std::fs::write(&path, &full[..full.len() - 17]).unwrap();
        let loaded = Journal::load(&dir).unwrap().unwrap();
        assert!(loaded.dropped_partial);
        assert_eq!(loaded.records, vec![sample(0)]);
        // Reopening truncates the garbage so appends stay well-formed.
        let mut j = Journal::reopen(&dir, loaded.valid_len).unwrap();
        j.append(&sample(1)).unwrap();
        j.append(&sample(2)).unwrap();
        let reloaded = Journal::load(&dir).unwrap().unwrap();
        assert!(!reloaded.dropped_partial);
        assert_eq!(reloaded.records, (0..3).map(sample).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_corruption_before_the_tail() {
        let dir = tmp_dir("corrupt");
        let mut j = Journal::create(&dir, "m", 3).unwrap();
        for i in 0..3 {
            j.append(&sample(i)).unwrap();
        }
        drop(j);
        let path = dir.join(JOURNAL_FILE);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, text.replace("\"cell\":1", "\"cell\":oops")).unwrap();
        let err = Journal::load(&dir).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rejects_missing_header() {
        let dir = tmp_dir("header");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(JOURNAL_FILE), "").unwrap();
        assert!(Journal::load(&dir).unwrap_err().contains("header"));
        std::fs::write(dir.join(JOURNAL_FILE), "{\"nope\":1}\n").unwrap();
        assert!(Journal::load(&dir).unwrap_err().contains("header"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn escapes_survive_payload_round_trip() {
        let mut out = String::new();
        write_json_string(&mut out, "a\"b\\c\nd\te\u{1}π");
        let mut p = Scanner::new(out.as_bytes()).unwrap();
        assert_eq!(p.string().unwrap(), "a\"b\\c\nd\te\u{1}π");
        p.end().unwrap();
    }
}
