//! `rbr-exec` — the deterministic parallel campaign engine.
//!
//! Every figure and table in the paper is a sweep: replications × cluster
//! counts × schemes × load points. This crate turns those sweeps into
//! *cells* — independent units of work, each a pure function of a seed
//! derived from the master seed through the splittable
//! [`rbr_simcore`](rbr_simcore::rng::SeedSequence) RNG hierarchy — and
//! executes them on a work-stealing thread pool, merging results in cell
//! order so the output is **bit-identical to the serial run for any job
//! count**.
//!
//! The three layers:
//!
//! * [`pool`] — the work-stealing pool. Per-worker deques with a global
//!   injector; the submitting thread participates while it waits, so one
//!   lane degenerates to a plain serial loop and nested fan-outs (an
//!   experiment's replications inside a campaign's experiments) cannot
//!   deadlock. [`pool::map`] / [`pool::map_cells`] are the entry points;
//!   [`pool::with_pool`] pins a scope to a specific pool, and
//!   [`pool::configure`] sizes the process-global one (`--jobs`).
//! * [`journal`] — the crash-safe campaign journal: a JSONL file under
//!   the campaign directory, one flushed record per completed cell, with
//!   a truncated trailing record (a kill mid-write) tolerated on load.
//! * [`campaign`] — orchestration: [`campaign::run`] evaluates a cell
//!   list on the current pool, appends each completion to the journal,
//!   replays already-journalled cells on `--resume`, and streams
//!   [`campaign::Progress`] events (done/total, cells/sec, ETA).
//!
//! Determinism contract: callers must derive every cell's randomness from
//! the cell index (`SeedSequence::child`/`path`), never from execution
//! order, shared mutable state, or wall-clock time. In return the engine
//! guarantees order-stable merges, so `--jobs 1` and `--jobs 64` produce
//! byte-identical reports and a resumed campaign matches an uninterrupted
//! one exactly.

pub mod campaign;
pub mod journal;
pub mod pool;

pub use campaign::{run, CampaignOptions, CampaignResult, CellOutcome, CellSpec, Progress};
pub use journal::{Journal, Record};
pub use pool::{configure, map, map_cells, with_pool, Pool, PoolMetrics};
