//! `rbr-exec` — the deterministic parallel campaign engine.
//!
//! Every figure and table in the paper is a sweep: replications × cluster
//! counts × schemes × load points. This crate turns those sweeps into
//! *cells* — independent units of work, each a pure function of a seed
//! derived from the master seed through the splittable
//! [`rbr_simcore`](rbr_simcore::rng::SeedSequence) RNG hierarchy — and
//! executes them on a work-stealing thread pool, merging results in cell
//! order so the output is **bit-identical to the serial run for any job
//! count**.
//!
//! The layers:
//!
//! * [`pool`] — the work-stealing pool. Per-worker deques with a global
//!   injector; the submitting thread participates while it waits, so one
//!   lane degenerates to a plain serial loop and nested fan-outs (an
//!   experiment's replications inside a campaign's experiments) cannot
//!   deadlock. [`pool::map`] / [`pool::map_cells`] collect;
//!   [`pool::map_fold`] / [`pool::fold_cells`] instead deliver each
//!   result to an in-order sink through a bounded reorder window, so
//!   arbitrarily wide fan-outs hold O(window) results in flight.
//!   [`pool::with_pool`] pins a scope to a specific pool, and
//!   [`pool::configure`] sizes the process-global one (`--jobs`).
//! * [`journal`] — the crash-safe, *segmented* campaign journal:
//!   fixed-size JSONL segments (`seg-00000.jsonl`, …) plus an appendable
//!   footer index (`journal.idx`) mapping each sealed cell to its byte
//!   range, so resuming a wide campaign seeks straight to payloads
//!   instead of rescanning everything. A truncated trailing record (a
//!   kill mid-write) is tolerated; a torn index tail degrades to a
//!   scan; a corrupted *sealed* segment is a hard error. Legacy
//!   single-file `journal.jsonl` journals still load.
//! * [`cache`] — the content-keyed cross-campaign cell cache
//!   (`--cache DIR`): an entry per `(manifest, cell key)` digest, each
//!   hit identity-verified before replaying the stored bytes.
//! * [`campaign`] — orchestration: [`campaign::run_streaming`]
//!   evaluates a cell list on the current pool, appends each completion
//!   to the journal, replays journalled cells on `--resume` (and
//!   identical cells from the cache), streams [`campaign::Progress`]
//!   events (done/total, cells/sec, ETA — replays excluded from the
//!   rate), and hands every [`campaign::CellOutcome`] to a
//!   [`campaign::CellSink`] in cell order as it lands, keeping campaign
//!   memory O(reorder window + accumulators) regardless of cell count.
//!   [`campaign::run`] is the collecting wrapper.
//!
//! Determinism contract: callers must derive every cell's randomness from
//! the cell index (`SeedSequence::child`/`path`), never from execution
//! order, shared mutable state, or wall-clock time. In return the engine
//! guarantees order-stable merges, so `--jobs 1` and `--jobs 64` produce
//! byte-identical reports and a resumed campaign matches an uninterrupted
//! one exactly.

pub mod cache;
pub mod campaign;
pub mod hash;
pub mod journal;
pub mod pool;

pub use campaign::{
    run, run_streaming, CampaignOptions, CampaignResult, CampaignStats, CellOutcome, CellSpec,
    Progress,
};
pub use journal::{Journal, Record};
pub use pool::{configure, fold_cells, map, map_cells, map_fold, with_pool, Pool, PoolMetrics};
