//! Campaign orchestration: stream a list of cells through the pool,
//! journal each completion, replay finished cells on `--resume`, and
//! reuse identical cells across campaigns via the content-keyed cache.
//!
//! A *campaign* is an ordered list of [`CellSpec`]s, each evaluated by a
//! caller-supplied pure function of its index (experiments derive all
//! randomness from hierarchical seeds, so a cell's payload depends only
//! on the campaign manifest and the cell's key — never on which thread
//! ran it or when). That purity is what makes the journal *and* the
//! cache sound: a replayed payload is byte-identical to what
//! re-execution would produce, so a resumed (or cache-hitting) campaign
//! merges exactly like an uninterrupted, uncached run.
//!
//! The engine is a streaming fold, not a collect-then-merge:
//! [`run_streaming`] pushes each [`CellOutcome`] to a caller-supplied
//! [`CellSink`] *in cell-index order as cells land* (the pool's bounded
//! reorder window provides the ordering), so campaign memory is
//! O(reorder window + accumulators) regardless of cell count.
//! [`run`] is the compatibility wrapper whose sink collects into a
//! `Vec` for callers that still want the materialized result.

use std::collections::HashMap;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::cache::CellCache;
use crate::journal::{Journal, Record, DEFAULT_SEGMENT_RECORDS};
use crate::pool;

/// One schedulable unit of a campaign.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Stable identity of the cell (e.g. the experiment's registry
    /// name). Checked against the journal on resume, and combined with
    /// the manifest to form the cell's cache key.
    pub key: String,
}

impl CellSpec {
    /// A cell with the given key.
    pub fn new(key: impl Into<String>) -> CellSpec {
        CellSpec { key: key.into() }
    }
}

/// How a campaign runs.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Campaign directory holding the journal. `None` disables
    /// journalling (the campaign is still parallel, just not resumable).
    pub dir: Option<std::path::PathBuf>,
    /// Replay completed cells from an existing journal instead of
    /// starting fresh.
    pub resume: bool,
    /// Stop submitting new cells after this many have been *executed*
    /// (replays are free). Used by tests to interrupt a campaign at a
    /// deterministic point; `None` means run to completion.
    pub cell_budget: Option<usize>,
    /// Identity of the campaign (scale, seed, reps, format). A journal
    /// recorded under one manifest refuses to resume under another.
    pub manifest: String,
    /// Shared cell-cache directory (`--cache DIR`). Cells already
    /// computed by *any* campaign with the same manifest + key replay
    /// from the cache instead of executing.
    pub cache: Option<std::path::PathBuf>,
    /// Journal segment roll threshold override (records per segment);
    /// `None` uses [`DEFAULT_SEGMENT_RECORDS`].
    pub segment_records: Option<usize>,
}

/// A finished cell, in campaign order.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's index in the campaign.
    pub cell: u64,
    /// The cell's key.
    pub key: String,
    /// The cell's rendered output.
    pub payload: String,
    /// Wall-clock seconds the cell took (when it originally ran, for
    /// replayed or cached cells).
    pub elapsed_secs: f64,
    /// True when the payload came from this campaign's journal rather
    /// than a fresh execution.
    pub replayed: bool,
    /// True when the payload came from the cross-campaign cell cache.
    pub cached: bool,
}

/// Receives each [`CellOutcome`] in cell-index order as the campaign
/// streams. Any `FnMut(CellOutcome) -> Result<(), String>` is a sink.
///
/// The sink runs inside the fold's delivery path: it must not submit
/// work to the pool, and an `Err` aborts delivery (remaining cells
/// still finish executing, but are dropped).
pub trait CellSink {
    /// Accepts the next cell, in index order.
    fn deliver(&mut self, outcome: CellOutcome) -> Result<(), String>;
}

impl<F> CellSink for F
where
    F: FnMut(CellOutcome) -> Result<(), String>,
{
    fn deliver(&mut self, outcome: CellOutcome) -> Result<(), String> {
        self(outcome)
    }
}

/// What [`run_streaming`] returns: completion counters (the outcomes
/// themselves went to the sink).
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Cells in the campaign.
    pub total: usize,
    /// Cells delivered to the sink (everything except budget skips).
    pub delivered: usize,
    /// True when every cell completed.
    pub complete: bool,
    /// Cells replayed from this campaign's journal.
    pub replayed: usize,
    /// Cells executed this run (including cache hits).
    pub executed: usize,
    /// Of the executed cells, how many were cross-campaign cache hits.
    pub cache_hits: usize,
    /// Replayed cells located via the journal's footer index (no scan).
    pub replay_indexed: usize,
    /// Replayed cells recovered by linearly scanning journal segments.
    pub replay_scanned: usize,
}

/// What [`run`] returns: the completed cells (in order) and whether the
/// campaign finished.
#[derive(Debug)]
pub struct CampaignResult {
    /// Outcomes of every completed cell, in cell order. Misses cells
    /// skipped by an exhausted [`CampaignOptions::cell_budget`].
    pub outcomes: Vec<CellOutcome>,
    /// True when every cell completed.
    pub complete: bool,
    /// Cells replayed from the journal.
    pub replayed: usize,
    /// Cells executed this run (including cache hits).
    pub executed: usize,
    /// Of the executed cells, how many were cell-cache hits.
    pub cache_hits: usize,
}

/// A progress event, fired once per completed cell.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Index of the cell that just finished.
    pub cell: u64,
    /// Its key.
    pub key: String,
    /// Cells finished so far (replayed + executed).
    pub done: usize,
    /// Cells in the campaign.
    pub total: usize,
    /// Seconds this cell took (0 for replays).
    pub cell_secs: f64,
    /// Seconds since the campaign started.
    pub campaign_secs: f64,
    /// *Execution* rate: freshly-evaluated cells per second. Journal
    /// replays are excluded — they are free, and counting them made
    /// post-resume ETAs wildly optimistic.
    pub cells_per_sec: f64,
    /// Estimated seconds to completion at the current execution rate
    /// (0 until the first cell has been executed).
    pub eta_secs: f64,
    /// True when the cell was replayed from the journal.
    pub replayed: bool,
    /// True when the cell was served by the cross-campaign cell cache.
    pub cached: bool,
}

/// Per-cell completion result flowing through the pool fold. Payloads
/// for journal replays stay on disk until delivery time, so the fold's
/// in-flight state is small even when most cells replay.
enum CellState {
    /// Replayed from the journal: the entry at this index in the loaded
    /// journal's entry list (payload read lazily at delivery).
    Replayed(usize),
    /// Skipped by an exhausted cell budget.
    Skipped,
    /// Freshly evaluated (or served by the cell cache).
    Done {
        payload: String,
        elapsed_secs: f64,
        cached: bool,
    },
    /// The cell's bookkeeping (journal/cache IO) failed.
    Failed(String),
}

/// Throughput/ETA bookkeeping shared by every progress event.
struct Meter {
    started: Instant,
    done: AtomicUsize,
    executed: AtomicUsize,
    total: usize,
    /// Cells that actually need execution this run (total minus journal
    /// replays) — the honest denominator for ETA.
    total_executable: usize,
}

impl Meter {
    /// Fires one progress event; `cell_secs` is 0 for replays.
    fn report(
        &self,
        progress: &(dyn Fn(&Progress) + Sync),
        cell: u64,
        key: &str,
        cell_secs: f64,
        replayed: bool,
        cached: bool,
    ) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let executed = if replayed {
            self.executed.load(Ordering::Relaxed)
        } else {
            self.executed.fetch_add(1, Ordering::Relaxed) + 1
        };
        let campaign_secs = self.started.elapsed().as_secs_f64();
        let cells_per_sec = if executed > 0 && campaign_secs > 0.0 {
            executed as f64 / campaign_secs
        } else {
            0.0
        };
        let eta_secs = if cells_per_sec > 0.0 {
            self.total_executable.saturating_sub(executed) as f64 / cells_per_sec
        } else {
            0.0
        };
        progress(&Progress {
            cell,
            key: key.to_string(),
            done,
            total: self.total,
            cell_secs,
            campaign_secs,
            cells_per_sec,
            eta_secs,
            replayed,
            cached,
        });
    }
}

/// Streams a campaign: executes (or replays) every cell on the current
/// pool and delivers each [`CellOutcome`] to `sink` in cell-index order
/// as it lands, journalling completions under `options.dir`. Memory
/// stays O(reorder window), independent of campaign size.
///
/// `execute` must be a pure function of the cell index: the campaign
/// may evaluate cells in any order, on any thread, replay journalled
/// payloads verbatim, and substitute cache hits.
pub fn run_streaming<F, S>(
    cells: &[CellSpec],
    options: &CampaignOptions,
    execute: F,
    sink: S,
    progress: &(dyn Fn(&Progress) + Sync),
) -> Result<CampaignStats, String>
where
    F: Fn(usize, &CellSpec) -> String + Sync,
    S: CellSink + Send,
{
    let total = cells.len();

    // Load the journal (resume) and validate it against this campaign.
    let mut loaded = None;
    if options.dir.is_some() && options.resume {
        loaded = Journal::load(options.dir.as_deref().unwrap())?;
    }
    let mut replay: HashMap<u64, usize> = HashMap::new();
    if let Some(loaded) = &loaded {
        let dir = options.dir.as_deref().unwrap();
        if loaded.manifest != options.manifest {
            return Err(format!(
                "campaign mismatch: journal in {} was recorded for `{}` but this \
                 invocation is `{}` — pick a fresh directory or rerun with the \
                 original arguments",
                dir.display(),
                loaded.manifest,
                options.manifest
            ));
        }
        if loaded.cells != total as u64 {
            return Err(format!(
                "campaign mismatch: journal in {} declares {} cells but this \
                 invocation has {}",
                dir.display(),
                loaded.cells,
                total
            ));
        }
        for (idx, entry) in loaded.entries.iter().enumerate() {
            let spec = cells
                .get(entry.cell as usize)
                .ok_or_else(|| format!("journal record for out-of-range cell {}", entry.cell))?;
            if spec.key != entry.key {
                return Err(format!(
                    "journal cell {} is keyed `{}` but the campaign expects `{}`",
                    entry.cell, entry.key, spec.key
                ));
            }
            replay.insert(entry.cell, idx);
        }
    }
    let journal: Option<Mutex<Journal>> = match &options.dir {
        None => None,
        Some(dir) => Some(Mutex::new(match &loaded {
            Some(loaded) => Journal::reopen(dir, loaded)?,
            None => Journal::create(
                dir,
                &options.manifest,
                total as u64,
                options.segment_records.unwrap_or(DEFAULT_SEGMENT_RECORDS),
            )?,
        })),
    };
    let cache = match &options.cache {
        None => None,
        Some(dir) => Some(CellCache::open(dir)?),
    };

    let meter = Meter {
        started: Instant::now(),
        done: AtomicUsize::new(0),
        executed: AtomicUsize::new(0),
        total,
        total_executable: total - replay.len(),
    };
    // One token per executable cell; claiming below zero means the
    // budget is spent and the cell is skipped (left for a future resume).
    let budget = AtomicIsize::new(match options.cell_budget {
        Some(b) => isize::try_from(b).unwrap_or(isize::MAX),
        None => isize::MAX,
    });

    let replay = &replay;
    let loaded_ref = loaded.as_ref();
    let journal_ref = journal.as_ref();
    let cache_ref = cache.as_ref();
    let meter_ref = &meter;

    // Delivery-side state, owned by the fold's in-order sink.
    let trace_on = rbr_obs::trace::enabled();
    let mut fold_secs = 0.0f64;
    /// Accumulates elapsed wall time into `acc` on scope exit (also on
    /// the sink's early returns).
    struct PhaseGuard<'a> {
        acc: &'a mut f64,
        t0: Instant,
    }
    impl Drop for PhaseGuard<'_> {
        fn drop(&mut self) {
            *self.acc += self.t0.elapsed().as_secs_f64();
        }
    }
    let mut sink = sink;
    let mut error: Option<String> = None;
    let mut stats = CampaignStats {
        total,
        replay_indexed: loaded_ref.map_or(0, |l| l.indexed),
        replay_scanned: loaded_ref.map_or(0, |l| l.scanned),
        ..CampaignStats::default()
    };

    pool::map_fold(
        cells.iter().collect(),
        |i, spec: &CellSpec| -> CellState {
            if let Some(&entry_idx) = replay.get(&(i as u64)) {
                meter_ref.report(progress, i as u64, &spec.key, 0.0, true, false);
                return CellState::Replayed(entry_idx);
            }
            if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                return CellState::Skipped;
            }
            // The cross-campaign cache: a verified hit replays the
            // stored payload byte-for-byte; the journal still records
            // the cell so a later --resume needs neither cache nor
            // recomputation.
            if let Some(hit) = cache_ref.and_then(|c| c.lookup(&options.manifest, &spec.key)) {
                let record = Record {
                    cell: i as u64,
                    key: spec.key.clone(),
                    elapsed_secs: hit.elapsed_secs,
                    payload: hit.payload,
                };
                if let Some(journal) = journal_ref {
                    if let Err(e) = journal.lock().unwrap().append(&record) {
                        return CellState::Failed(e);
                    }
                }
                meter_ref.report(progress, i as u64, &spec.key, 0.0, false, true);
                return CellState::Done {
                    payload: record.payload,
                    elapsed_secs: record.elapsed_secs,
                    cached: true,
                };
            }
            let cell_started = Instant::now();
            let payload = execute(i, spec);
            let elapsed_secs = cell_started.elapsed().as_secs_f64();
            let record = Record {
                cell: i as u64,
                key: spec.key.clone(),
                elapsed_secs,
                payload,
            };
            if let Some(journal) = journal_ref {
                if let Err(e) = journal.lock().unwrap().append(&record) {
                    return CellState::Failed(e);
                }
            }
            if let Some(cache) = cache_ref {
                if let Err(e) = cache.store(&options.manifest, &record) {
                    return CellState::Failed(e);
                }
            }
            meter_ref.report(progress, i as u64, &spec.key, elapsed_secs, false, false);
            CellState::Done {
                payload: record.payload,
                elapsed_secs,
                cached: false,
            }
        },
        |i, state: CellState| {
            let _fold_t = trace_on.then(|| PhaseGuard {
                acc: &mut fold_secs,
                t0: Instant::now(),
            });
            if error.is_some() {
                return;
            }
            let outcome = match state {
                CellState::Skipped => return,
                CellState::Failed(e) => {
                    error = Some(e);
                    return;
                }
                CellState::Replayed(entry_idx) => {
                    let loaded = loaded_ref.expect("replayed cell without a loaded journal");
                    let entry = &loaded.entries[entry_idx];
                    match loaded.read_payload(entry) {
                        Ok(payload) => {
                            stats.replayed += 1;
                            CellOutcome {
                                cell: i as u64,
                                key: entry.key.clone(),
                                payload,
                                elapsed_secs: entry.elapsed_secs,
                                replayed: true,
                                cached: false,
                            }
                        }
                        Err(e) => {
                            error = Some(e);
                            return;
                        }
                    }
                }
                CellState::Done {
                    payload,
                    elapsed_secs,
                    cached,
                } => {
                    stats.executed += 1;
                    if cached {
                        stats.cache_hits += 1;
                    }
                    CellOutcome {
                        cell: i as u64,
                        key: cells[i].key.clone(),
                        payload,
                        elapsed_secs,
                        replayed: false,
                        cached,
                    }
                }
            };
            stats.delivered += 1;
            if let Err(e) = sink.deliver(outcome) {
                error = Some(e);
            }
        },
    );

    if trace_on {
        rbr_obs::trace::phase("exec.campaign", "fold", fold_secs);
    }
    if let Some(e) = error {
        return Err(e);
    }
    stats.complete = stats.delivered == total;
    if rbr_obs::metrics::enabled() {
        rbr_obs::metrics::counter("exec.campaign.cells_executed").add(stats.executed as u64);
        rbr_obs::metrics::counter("exec.campaign.cells_replayed").add(stats.replayed as u64);
        rbr_obs::metrics::counter("exec.campaign.cells_delivered").add(stats.delivered as u64);
    }
    if stats.complete {
        if let Some(journal) = &journal {
            // Seal the final partial segment so a future --resume
            // replays by pure index seeks.
            journal.lock().unwrap().finish()?;
        }
    }
    Ok(stats)
}

/// Runs a campaign and materializes the outcomes: a [`run_streaming`]
/// whose sink collects into a `Vec`, for callers that want the whole
/// result set (small campaigns, tests). Large sweeps should stream.
pub fn run<F>(
    cells: &[CellSpec],
    options: &CampaignOptions,
    execute: F,
    progress: &(dyn Fn(&Progress) + Sync),
) -> Result<CampaignResult, String>
where
    F: Fn(usize, &CellSpec) -> String + Sync,
{
    let mut outcomes = Vec::new();
    let stats = run_streaming(
        cells,
        options,
        execute,
        |outcome: CellOutcome| {
            outcomes.push(outcome);
            Ok(())
        },
        progress,
    )?;
    Ok(CampaignResult {
        outcomes,
        complete: stats.complete,
        replayed: stats.replayed,
        executed: stats.executed,
        cache_hits: stats.cache_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::segment_file;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbr-exec-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn specs(n: usize) -> Vec<CellSpec> {
        (0..n).map(|i| CellSpec::new(format!("cell{i}"))).collect()
    }

    fn payload(i: usize) -> String {
        format!("payload-{i}:{}", i * i)
    }

    #[test]
    fn runs_all_cells_in_order_without_a_journal() {
        let cells = specs(7);
        let result = run(
            &cells,
            &CampaignOptions::default(),
            |i, spec| {
                assert_eq!(spec.key, format!("cell{i}"));
                payload(i)
            },
            &|_| {},
        )
        .unwrap();
        assert!(result.complete);
        assert_eq!(result.executed, 7);
        assert_eq!(result.replayed, 0);
        let payloads: Vec<String> = result.outcomes.iter().map(|o| o.payload.clone()).collect();
        assert_eq!(payloads, (0..7).map(payload).collect::<Vec<_>>());
    }

    #[test]
    fn streaming_sink_sees_cells_in_index_order_in_parallel() {
        let cells = specs(64);
        let pool = crate::pool::Pool::new(4);
        let order = crate::pool::with_pool(&pool, || {
            let mut order = Vec::new();
            run_streaming(
                &cells,
                &CampaignOptions::default(),
                |i, _| payload(i),
                |o: CellOutcome| {
                    order.push(o.cell);
                    Ok(())
                },
                &|_| {},
            )
            .unwrap();
            order
        });
        assert_eq!(order, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn progress_counts_every_cell_and_reaches_total() {
        let cells = specs(5);
        let seen = Mutex::new(Vec::new());
        run(
            &cells,
            &CampaignOptions::default(),
            |i, _| payload(i),
            &|p| seen.lock().unwrap().push((p.done, p.total, p.cell)),
        )
        .unwrap();
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last().unwrap().0, 5);
        assert!(seen.iter().all(|(_, total, _)| *total == 5));
    }

    #[test]
    fn budget_interrupt_then_resume_matches_uninterrupted_run() {
        let cells = specs(6);
        let uninterrupted = run(
            &cells,
            &CampaignOptions::default(),
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();

        let dir = tmp_dir("resume");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            resume: false,
            cell_budget: Some(3),
            manifest: "scale=smoke".into(),
            ..CampaignOptions::default()
        };
        // Serial pool so exactly cells 0..3 land in the journal, making
        // the truncation below hit a known record.
        let serial = crate::pool::Pool::new(1);
        let partial = crate::pool::with_pool(&serial, || {
            run(&cells, &options, |i, _| payload(i), &|_| {})
        })
        .unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 3);

        // Simulate a kill mid-append: truncate the trailing record of
        // the active segment.
        let path = dir.join(segment_file(0));
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let resumed = run(
            &cells,
            &CampaignOptions {
                resume: true,
                cell_budget: None,
                ..options
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.replayed, 2, "third record was truncated away");
        assert_eq!(resumed.executed, 4);
        let a: Vec<&str> = uninterrupted
            .outcomes
            .iter()
            .map(|o| o.payload.as_str())
            .collect();
        let b: Vec<&str> = resumed
            .outcomes
            .iter()
            .map(|o| o.payload.as_str())
            .collect();
        assert_eq!(a, b, "resumed campaign must merge bit-identically");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_replays_without_re_executing() {
        let cells = specs(4);
        let dir = tmp_dir("replay");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            manifest: "m".into(),
            ..CampaignOptions::default()
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        let resumed = run(
            &cells,
            &CampaignOptions {
                resume: true,
                ..options
            },
            |_, _| panic!("a fully-journalled campaign must not re-execute"),
            &|_| {},
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.replayed, 4);
        assert_eq!(resumed.executed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn completed_campaigns_resume_via_the_footer_index() {
        let cells = specs(9);
        let dir = tmp_dir("indexed-resume");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            manifest: "m".into(),
            segment_records: Some(2),
            ..CampaignOptions::default()
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        let stats = run_streaming(
            &cells,
            &CampaignOptions {
                resume: true,
                ..options
            },
            |_, _| panic!("must not re-execute"),
            |_| Ok(()),
            &|_| {},
        )
        .unwrap();
        assert_eq!(stats.replayed, 9);
        assert_eq!(
            stats.replay_indexed, 9,
            "a finished campaign replays by index seeks, not a scan"
        );
        assert_eq!(stats.replay_scanned, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replays_are_excluded_from_throughput_and_eta() {
        let cells = specs(5);
        let dir = tmp_dir("eta");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            manifest: "m".into(),
            ..CampaignOptions::default()
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        // A full-replay resume executes nothing: its rate and ETA must
        // both be zero rather than the inflated replay rate.
        let events = Mutex::new(Vec::new());
        run(
            &cells,
            &CampaignOptions {
                resume: true,
                ..options
            },
            |_, _| unreachable!(),
            &|p| {
                events
                    .lock()
                    .unwrap()
                    .push((p.cells_per_sec, p.eta_secs, p.replayed))
            },
        )
        .unwrap();
        let events = events.lock().unwrap();
        assert_eq!(events.len(), 5);
        for (rate, eta, replayed) in events.iter() {
            assert!(*replayed);
            assert_eq!(*rate, 0.0, "replays must not count toward throughput");
            assert_eq!(*eta, 0.0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_to_resume_under_a_different_manifest() {
        let cells = specs(3);
        let dir = tmp_dir("manifest");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            manifest: "scale=smoke seed=1".into(),
            ..CampaignOptions::default()
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        let err = run(
            &cells,
            &CampaignOptions {
                resume: true,
                manifest: "scale=full seed=1".into(),
                ..options.clone()
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap_err();
        assert!(err.contains("campaign mismatch"), "{err}");

        let err = run(
            &specs(2),
            &CampaignOptions {
                resume: true,
                ..options
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap_err();
        assert!(err.contains("2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_run_truncates_a_stale_journal() {
        let cells = specs(3);
        let dir = tmp_dir("fresh");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            manifest: "m".into(),
            ..CampaignOptions::default()
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        // Without --resume the journal restarts from scratch, so every
        // cell executes again.
        let second = run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        assert_eq!(second.executed, 3);
        assert_eq!(second.replayed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_serves_identical_cells_across_campaigns() {
        let cells = specs(6);
        let cache_dir = tmp_dir("cache-shared");
        let first = run(
            &cells,
            &CampaignOptions {
                manifest: "m".into(),
                cache: Some(cache_dir.clone()),
                ..CampaignOptions::default()
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.executed, 6);

        // A different campaign (different dir, overlapping cells, same
        // manifest) reuses every overlapping cell byte-for-byte.
        let subset = specs(4);
        let second = run(
            &subset,
            &CampaignOptions {
                manifest: "m".into(),
                cache: Some(cache_dir.clone()),
                ..CampaignOptions::default()
            },
            |_, _| panic!("every cell is cached"),
            &|_| {},
        )
        .unwrap();
        assert!(second.complete);
        assert_eq!(second.cache_hits, 4);
        assert_eq!(second.executed, 4, "cache hits count as executed cells");
        for (o, want) in second.outcomes.iter().zip(first.outcomes.iter()) {
            assert!(o.cached);
            assert_eq!(o.payload, want.payload, "cache hits replay exact bytes");
        }

        // A different manifest shares no cells with the cache.
        let third = run(
            &subset,
            &CampaignOptions {
                manifest: "m2".into(),
                cache: Some(cache_dir.clone()),
                ..CampaignOptions::default()
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();
        assert_eq!(third.cache_hits, 0);
        std::fs::remove_dir_all(&cache_dir).unwrap();
    }

    #[test]
    fn cache_hits_are_journalled_for_cacheless_resume() {
        let cells = specs(3);
        let cache_dir = tmp_dir("cache-journal-cache");
        let dir_a = tmp_dir("cache-journal-a");
        let dir_b = tmp_dir("cache-journal-b");
        let base = CampaignOptions {
            manifest: "m".into(),
            cache: Some(cache_dir.clone()),
            ..CampaignOptions::default()
        };
        run(
            &cells,
            &CampaignOptions {
                dir: Some(dir_a.clone()),
                ..base.clone()
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();
        let hits = run(
            &cells,
            &CampaignOptions {
                dir: Some(dir_b.clone()),
                ..base.clone()
            },
            |_, _| panic!("cached"),
            &|_| {},
        )
        .unwrap();
        assert_eq!(hits.cache_hits, 3);
        // The second campaign's journal is complete: resuming it without
        // the cache replays everything.
        let resumed = run(
            &cells,
            &CampaignOptions {
                dir: Some(dir_b.clone()),
                resume: true,
                manifest: "m".into(),
                ..CampaignOptions::default()
            },
            |_, _| panic!("journalled"),
            &|_| {},
        )
        .unwrap();
        assert_eq!(resumed.replayed, 3);
        for d in [cache_dir, dir_a, dir_b] {
            std::fs::remove_dir_all(&d).unwrap();
        }
    }
}
