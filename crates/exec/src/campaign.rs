//! Campaign orchestration: run a list of cells on the pool, journal each
//! completion, and replay finished cells on `--resume`.
//!
//! A *campaign* is an ordered list of [`CellSpec`]s, each evaluated by a
//! caller-supplied pure function of its index (experiments derive all
//! randomness from hierarchical seeds, so a cell's payload depends only
//! on its index and the campaign manifest — never on which thread ran it
//! or when). That purity is what makes the journal sound: a replayed
//! payload is byte-identical to what re-execution would produce, so a
//! resumed campaign's merged output matches an uninterrupted run exactly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::journal::{Journal, Record};
use crate::pool;

/// One schedulable unit of a campaign.
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Stable identity of the cell (e.g. the experiment's registry
    /// name). Checked against the journal on resume.
    pub key: String,
}

impl CellSpec {
    /// A cell with the given key.
    pub fn new(key: impl Into<String>) -> CellSpec {
        CellSpec { key: key.into() }
    }
}

/// How a campaign runs.
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Campaign directory holding the journal. `None` disables
    /// journalling (the campaign is still parallel, just not resumable).
    pub dir: Option<std::path::PathBuf>,
    /// Replay completed cells from an existing journal instead of
    /// starting fresh.
    pub resume: bool,
    /// Stop submitting new cells after this many have been *executed*
    /// (replays are free). Used by tests to interrupt a campaign at a
    /// deterministic point; `None` means run to completion.
    pub cell_budget: Option<usize>,
    /// Identity of the campaign (scale, seed, reps, format). A journal
    /// recorded under one manifest refuses to resume under another.
    pub manifest: String,
}

/// A finished cell, in campaign order.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The cell's index in the campaign.
    pub cell: u64,
    /// The cell's key.
    pub key: String,
    /// The cell's rendered output.
    pub payload: String,
    /// Wall-clock seconds the cell took (when it originally ran, for
    /// replayed cells).
    pub elapsed_secs: f64,
    /// True when the payload came from the journal rather than a fresh
    /// execution.
    pub replayed: bool,
}

/// What [`run`] returns: the completed cells (in order) and whether the
/// campaign finished.
#[derive(Debug)]
pub struct CampaignResult {
    /// Outcomes of every completed cell, in cell order. Misses cells
    /// skipped by an exhausted [`CampaignOptions::cell_budget`].
    pub outcomes: Vec<CellOutcome>,
    /// True when every cell completed.
    pub complete: bool,
    /// Cells replayed from the journal.
    pub replayed: usize,
    /// Cells executed this run.
    pub executed: usize,
}

/// A progress event, fired once per completed cell.
#[derive(Clone, Debug)]
pub struct Progress {
    /// Index of the cell that just finished.
    pub cell: u64,
    /// Its key.
    pub key: String,
    /// Cells finished so far (replayed + executed).
    pub done: usize,
    /// Cells in the campaign.
    pub total: usize,
    /// Seconds this cell took (0 for replays).
    pub cell_secs: f64,
    /// Seconds since the campaign started.
    pub campaign_secs: f64,
    /// Completion rate over the campaign so far.
    pub cells_per_sec: f64,
    /// Estimated seconds to completion at the current rate.
    pub eta_secs: f64,
    /// True when the cell was replayed from the journal.
    pub replayed: bool,
}

/// Runs a campaign: executes (or replays) every cell on the current
/// pool, journalling completions under `options.dir`, and returns the
/// outcomes in cell order.
///
/// `execute` must be a pure function of the cell index: the campaign may
/// evaluate cells in any order, on any thread, and replay journalled
/// payloads verbatim.
pub fn run<F>(
    cells: &[CellSpec],
    options: &CampaignOptions,
    execute: F,
    progress: &(dyn Fn(&Progress) + Sync),
) -> Result<CampaignResult, String>
where
    F: Fn(usize, &CellSpec) -> String + Sync,
{
    let total = cells.len();
    let mut replayed: HashMap<u64, Record> = HashMap::new();
    let journal: Option<Mutex<Journal>> = match &options.dir {
        None => None,
        Some(dir) => {
            let existing = if options.resume {
                Journal::load(dir)?
            } else {
                None
            };
            let journal = match existing {
                Some(loaded) => {
                    if loaded.manifest != options.manifest {
                        return Err(format!(
                            "campaign mismatch: journal in {} was recorded for \
                             `{}` but this invocation is `{}` — pick a fresh \
                             directory or rerun with the original arguments",
                            dir.display(),
                            loaded.manifest,
                            options.manifest
                        ));
                    }
                    if loaded.cells != total as u64 {
                        return Err(format!(
                            "campaign mismatch: journal in {} declares {} cells \
                             but this invocation has {}",
                            dir.display(),
                            loaded.cells,
                            total
                        ));
                    }
                    for record in loaded.records {
                        let spec = cells.get(record.cell as usize).ok_or_else(|| {
                            format!("journal record for out-of-range cell {}", record.cell)
                        })?;
                        if spec.key != record.key {
                            return Err(format!(
                                "journal cell {} is keyed `{}` but the campaign \
                                 expects `{}`",
                                record.cell, record.key, spec.key
                            ));
                        }
                        replayed.insert(record.cell, record);
                    }
                    Journal::reopen(dir, loaded.valid_len)?
                }
                None => Journal::create(dir, &options.manifest, total as u64)?,
            };
            Some(Mutex::new(journal))
        }
    };

    let started = Instant::now();
    let done = AtomicUsize::new(0);
    // One token per executable cell; claiming below zero means the
    // budget is spent and the cell is skipped (left for a future resume).
    let budget = AtomicIsize::new(match options.cell_budget {
        Some(b) => isize::try_from(b).unwrap_or(isize::MAX),
        None => isize::MAX,
    });
    let replayed = &replayed;
    let journal = journal.as_ref();

    let slots: Vec<Result<Option<CellOutcome>, String>> =
        pool::map(cells.iter().enumerate().collect(), |_, (i, spec)| {
            if let Some(record) = replayed.get(&(i as u64)) {
                let outcome = CellOutcome {
                    cell: i as u64,
                    key: record.key.clone(),
                    payload: record.payload.clone(),
                    elapsed_secs: record.elapsed_secs,
                    replayed: true,
                };
                report(progress, &done, total, started, &outcome);
                return Ok(Some(outcome));
            }
            if budget.fetch_sub(1, Ordering::Relaxed) <= 0 {
                return Ok(None);
            }
            let cell_started = Instant::now();
            let payload = execute(i, spec);
            let outcome = CellOutcome {
                cell: i as u64,
                key: spec.key.clone(),
                payload,
                elapsed_secs: cell_started.elapsed().as_secs_f64(),
                replayed: false,
            };
            if let Some(journal) = journal {
                journal.lock().unwrap().append(&Record {
                    cell: outcome.cell,
                    key: outcome.key.clone(),
                    elapsed_secs: outcome.elapsed_secs,
                    payload: outcome.payload.clone(),
                })?;
            }
            report(progress, &done, total, started, &outcome);
            Ok(Some(outcome))
        });

    let mut outcomes = Vec::with_capacity(total);
    for slot in slots {
        if let Some(outcome) = slot? {
            outcomes.push(outcome);
        }
    }
    let replayed_count = outcomes.iter().filter(|o| o.replayed).count();
    let executed = outcomes.len() - replayed_count;
    Ok(CampaignResult {
        complete: outcomes.len() == total,
        replayed: replayed_count,
        executed,
        outcomes,
    })
}

fn report(
    progress: &(dyn Fn(&Progress) + Sync),
    done: &AtomicUsize,
    total: usize,
    started: Instant,
    outcome: &CellOutcome,
) {
    let done = done.fetch_add(1, Ordering::Relaxed) + 1;
    let campaign_secs = started.elapsed().as_secs_f64();
    let cells_per_sec = if campaign_secs > 0.0 {
        done as f64 / campaign_secs
    } else {
        f64::INFINITY
    };
    let eta_secs = if cells_per_sec > 0.0 && cells_per_sec.is_finite() {
        (total - done) as f64 / cells_per_sec
    } else {
        0.0
    };
    progress(&Progress {
        cell: outcome.cell,
        key: outcome.key.clone(),
        done,
        total,
        cell_secs: if outcome.replayed {
            0.0
        } else {
            outcome.elapsed_secs
        },
        campaign_secs,
        cells_per_sec,
        eta_secs,
        replayed: outcome.replayed,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JOURNAL_FILE;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rbr-exec-campaign-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn specs(n: usize) -> Vec<CellSpec> {
        (0..n).map(|i| CellSpec::new(format!("cell{i}"))).collect()
    }

    fn payload(i: usize) -> String {
        format!("payload-{i}:{}", i * i)
    }

    #[test]
    fn runs_all_cells_in_order_without_a_journal() {
        let cells = specs(7);
        let result = run(
            &cells,
            &CampaignOptions::default(),
            |i, spec| {
                assert_eq!(spec.key, format!("cell{i}"));
                payload(i)
            },
            &|_| {},
        )
        .unwrap();
        assert!(result.complete);
        assert_eq!(result.executed, 7);
        assert_eq!(result.replayed, 0);
        let payloads: Vec<String> = result.outcomes.iter().map(|o| o.payload.clone()).collect();
        assert_eq!(payloads, (0..7).map(payload).collect::<Vec<_>>());
    }

    #[test]
    fn progress_counts_every_cell_and_reaches_total() {
        let cells = specs(5);
        let seen = Mutex::new(Vec::new());
        run(
            &cells,
            &CampaignOptions::default(),
            |i, _| payload(i),
            &|p| seen.lock().unwrap().push((p.done, p.total, p.cell)),
        )
        .unwrap();
        let mut seen = seen.lock().unwrap().clone();
        seen.sort_unstable();
        assert_eq!(seen.len(), 5);
        assert_eq!(seen.last().unwrap().0, 5);
        assert!(seen.iter().all(|(_, total, _)| *total == 5));
    }

    #[test]
    fn budget_interrupt_then_resume_matches_uninterrupted_run() {
        let cells = specs(6);
        let uninterrupted = run(
            &cells,
            &CampaignOptions::default(),
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();

        let dir = tmp_dir("resume");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            resume: false,
            cell_budget: Some(3),
            manifest: "scale=smoke".into(),
        };
        // Serial pool so exactly cells 0..3 land in the journal, making
        // the truncation below hit a known record.
        let serial = crate::pool::Pool::new(1);
        let partial = crate::pool::with_pool(&serial, || {
            run(&cells, &options, |i, _| payload(i), &|_| {})
        })
        .unwrap();
        assert!(!partial.complete);
        assert_eq!(partial.executed, 3);

        // Simulate a kill mid-append: truncate the trailing record.
        let path = dir.join(JOURNAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();

        let resumed = run(
            &cells,
            &CampaignOptions {
                resume: true,
                cell_budget: None,
                ..options
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.replayed, 2, "third record was truncated away");
        assert_eq!(resumed.executed, 4);
        let a: Vec<&str> = uninterrupted
            .outcomes
            .iter()
            .map(|o| o.payload.as_str())
            .collect();
        let b: Vec<&str> = resumed
            .outcomes
            .iter()
            .map(|o| o.payload.as_str())
            .collect();
        assert_eq!(a, b, "resumed campaign must merge bit-identically");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn resume_replays_without_re_executing() {
        let cells = specs(4);
        let dir = tmp_dir("replay");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            resume: false,
            cell_budget: None,
            manifest: "m".into(),
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        let resumed = run(
            &cells,
            &CampaignOptions {
                resume: true,
                ..options
            },
            |_, _| panic!("a fully-journalled campaign must not re-execute"),
            &|_| {},
        )
        .unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.replayed, 4);
        assert_eq!(resumed.executed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn refuses_to_resume_under_a_different_manifest() {
        let cells = specs(3);
        let dir = tmp_dir("manifest");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            resume: false,
            cell_budget: None,
            manifest: "scale=smoke seed=1".into(),
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        let err = run(
            &cells,
            &CampaignOptions {
                resume: true,
                manifest: "scale=full seed=1".into(),
                ..options.clone()
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap_err();
        assert!(err.contains("campaign mismatch"), "{err}");

        let err = run(
            &specs(2),
            &CampaignOptions {
                resume: true,
                ..options
            },
            |i, _| payload(i),
            &|_| {},
        )
        .unwrap_err();
        assert!(err.contains("2"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fresh_run_truncates_a_stale_journal() {
        let cells = specs(3);
        let dir = tmp_dir("fresh");
        let options = CampaignOptions {
            dir: Some(dir.clone()),
            resume: false,
            cell_budget: None,
            manifest: "m".into(),
        };
        run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        // Without --resume the journal restarts from scratch, so every
        // cell executes again.
        let second = run(&cells, &options, |i, _| payload(i), &|_| {}).unwrap();
        assert_eq!(second.executed, 3);
        assert_eq!(second.replayed, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
