//! The work-stealing cell pool.
//!
//! Campaign cells are heterogeneous — a CBF replication costs ~30× an
//! EASY one — so static chunking (split the cell list into one contiguous
//! block per thread) head-of-line-blocks: whichever thread drew the CBF
//! block runs long after the rest go idle. The pool therefore *steals*:
//!
//! * every worker owns a deque; it pops its own work from the back
//!   (LIFO, cache-warm) and steals from the *front* of siblings' deques
//!   when it runs dry;
//! * a global injector queue receives work submitted from threads that
//!   are not pool workers (the CLI main thread, test threads);
//! * a submitting thread is itself a participant: [`Pool::map`] blocks
//!   until its batch completes, and while blocked it executes cells
//!   instead of sleeping, so `jobs = 1` (a pool with zero workers) is an
//!   ordinary serial loop and nested submissions can never deadlock —
//!   every un-started cell of a batch is always claimable by the thread
//!   waiting on that batch.
//!
//! Determinism: a cell's inputs come only from its index (experiments
//! derive per-cell seeds hierarchically), and every completed cell is
//! routed through a bounded reorder window that releases results in
//! index order ([`Pool::map_fold`], the primitive [`Pool::map`] is built
//! on). Results therefore stream to the caller in submission order,
//! bit-identical to the serial evaluation, for any worker count and any
//! steal interleaving — and a fold over a campaign of N cells holds at
//! most one reorder window of results, not N.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A unit of queued work: one cell of some batch, with its lifetime
/// erased (see the safety comment in [`Shared::map_impl`]).
struct Task {
    batch: Arc<Batch>,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// Completion state of one [`Pool::map`] call.
struct Batch {
    /// Cells completed so far (executed or panicked).
    done: Mutex<usize>,
    /// Cells in the batch.
    total: usize,
    /// First panic payload raised by a cell, re-raised on the submitting
    /// thread once the batch has fully drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Signals the submitter when `done == total`.
    complete: Condvar,
}

impl Batch {
    fn new(total: usize) -> Self {
        Batch {
            done: Mutex::new(0),
            total,
            panic: Mutex::new(None),
            complete: Condvar::new(),
        }
    }

    fn is_done(&self) -> bool {
        *self.done.lock().unwrap() == self.total
    }
}

/// State shared by the pool handle, its workers, and thread-local
/// context references.
struct Shared {
    /// Work submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; the owner pushes/pops at the back, thieves
    /// steal from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Nanoseconds each worker spent executing cells.
    busy_ns: Vec<AtomicU64>,
    /// Cells each worker executed.
    executed: Vec<AtomicU64>,
    /// Cells each worker claimed from a *sibling's* deque (true steals;
    /// own-deque pops and injector claims are not steals).
    stolen: Vec<AtomicU64>,
    created: Instant,
}

impl Shared {
    fn new(workers: usize) -> Self {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            stolen: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            created: Instant::now(),
        }
    }

    fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Wakes every parked worker (called after any push).
    fn notify(&self) {
        let _guard = self.idle.lock().unwrap();
        self.wake.notify_all();
    }

    /// True when any queue holds a task.
    fn any_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.locals.iter().any(|l| !l.lock().unwrap().is_empty())
    }

    /// Worker claim order: own deque (back), injector (front), then
    /// steal from siblings (front), scanning from the neighbour upward
    /// so thieves spread over victims.
    fn find_task(&self, w: usize) -> Option<Task> {
        if let Some(t) = self.locals[w].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.workers();
        for step in 1..n {
            let victim = (w + step) % n;
            if let Some(t) = self.locals[victim].lock().unwrap().pop_front() {
                self.stolen[w].fetch_add(1, Ordering::Relaxed);
                return Some(t);
            }
        }
        None
    }

    /// Runs one task, crediting `worker`'s busy counters and recording
    /// completion (and any panic) in the task's batch.
    fn execute(&self, task: Task, worker: Option<usize>) {
        let batch = task.batch;
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(task.run));
        if let Some(w) = worker {
            let ns = started.elapsed().as_nanos() as u64;
            self.busy_ns[w].fetch_add(ns, Ordering::Relaxed);
            self.executed[w].fetch_add(1, Ordering::Relaxed);
        }
        if let Err(payload) = outcome {
            let mut slot = batch.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = batch.done.lock().unwrap();
        *done += 1;
        if *done == batch.total {
            batch.complete.notify_all();
        }
    }

    /// Blocks until `batch` drains, executing claimable work meanwhile.
    ///
    /// `claim` must only return tasks that are safe for this thread to
    /// run re-entrantly: the batch's own cells, or (on a worker thread)
    /// cells this thread itself pushed. Once `claim` runs dry every
    /// remaining cell of the batch is in flight on some other thread, so
    /// sleeping on the completion condvar cannot deadlock.
    fn participate(
        &self,
        batch: &Arc<Batch>,
        worker: Option<usize>,
        claim: impl Fn() -> Option<Task>,
    ) {
        loop {
            if batch.is_done() {
                break;
            }
            if let Some(task) = claim() {
                self.execute(task, worker);
                continue;
            }
            let mut done = batch.done.lock().unwrap();
            while *done < batch.total {
                done = batch.complete.wait(done).unwrap();
            }
            break;
        }
        if let Some(payload) = batch.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
    }

    /// The streaming fold under both [`Pool::map`] and the campaign
    /// engine: evaluates `f` over every item on the pool and delivers
    /// each result to `sink` in input order, as it lands, through a
    /// bounded reorder window.
    ///
    /// The window is what keeps memory flat: at most `window` cells are
    /// in flight or buffered at once (`FOLD_WINDOW_PER_LANE` per lane),
    /// and a new cell is only submitted once the delivery head has
    /// advanced close enough behind it. Delivery order is the input
    /// order regardless of job count or steal interleaving, so a fold is
    /// bit-identical to the serial loop. `sink` runs under the fold's
    /// internal lock and must not submit pool work of its own.
    fn map_fold_impl<T, R, F, S>(self: &Arc<Self>, items: Vec<T>, f: F, mut sink: S)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        S: FnMut(usize, R) + Send,
    {
        let n = items.len();
        // Serial fast path: nothing to fan out, or nobody to fan out to.
        if n <= 1 || self.workers() == 0 {
            for (i, item) in items.into_iter().enumerate() {
                sink(i, f(i, item));
            }
            return;
        }

        let window = ((self.workers() + 1) * FOLD_WINDOW_PER_LANE).min(n);
        let batch = Arc::new(Batch::new(n));
        let worker = worker_index_on(self);
        let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
        let state = Mutex::new(FoldState {
            ring: (0..window).map(|_| None).collect(),
            head: 0,
            submitted: window,
            sink,
        });
        {
            let ctx = FoldCtx {
                shared: self,
                batch: &batch,
                items: &items,
                f: &f,
                state: &state,
                n,
                window,
            };
            // Prime one window of cells; completions submit the rest as
            // the delivery head advances (see `FoldCtx::complete`).
            let primed: Vec<Task> = (0..window).map(|i| ctx.make_task(i)).collect();
            match worker {
                Some(w) => {
                    self.locals[w].lock().unwrap().extend(primed);
                    self.notify();
                    // A worker's own deque only ever contains work pushed
                    // by frames on its own stack, so claiming any of it
                    // re-entrantly is safe and keeps the subtree moving.
                    self.participate(&batch, worker, || self.locals[w].lock().unwrap().pop_back());
                }
                None => {
                    self.injector.lock().unwrap().extend(primed);
                    self.notify();
                    // External threads claim only their own batch's cells
                    // so they never get stuck executing an unrelated
                    // long-running cell while their batch is finished.
                    self.participate(&batch, None, || {
                        let mut q = self.injector.lock().unwrap();
                        let pos = q.iter().position(|t| Arc::ptr_eq(&t.batch, &batch));
                        pos.and_then(|p| q.remove(p))
                    });
                }
            }
        }
    }

    /// [`Pool::map`]'s body: a fold whose sink appends to a vector.
    /// Delivery order is input order, so a plain push reconstructs the
    /// serial result.
    fn map_collect<T, R, F>(self: &Arc<Self>, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let mut out = Vec::with_capacity(items.len());
        self.map_fold_impl(items, f, |_, r| out.push(r));
        out
    }
}

/// In-flight + buffered cells per execution lane in a [`Pool::map_fold`]
/// reorder window: enough slack that a lane never idles waiting on the
/// delivery head, small enough that a stalled head (one slow cell at the
/// front) bounds buffered results to a constant.
const FOLD_WINDOW_PER_LANE: usize = 32;

/// Reorder state of one fold: a ring of completed-but-undelivered
/// results plus the submission cursor, all advanced under one lock by
/// whichever thread completes a cell.
struct FoldState<R, S> {
    /// Slot `i % window` holds cell `i`'s completion between landing and
    /// delivery: `None` = not finished (or not submitted), `Some(None)`
    /// = panicked (a placeholder so the head can advance past it),
    /// `Some(Some(r))` = ready to deliver.
    ring: Vec<Option<Option<R>>>,
    /// Next cell index to deliver to the sink.
    head: usize,
    /// Cells submitted to the queues so far. Invariant: `submitted <=
    /// head + window`, which bounds in-flight work and the ring alike.
    submitted: usize,
    sink: S,
}

/// Everything a fold cell needs, borrowed from the [`map_fold_impl`]
/// frame (lifetimes erased on the queue; see the SAFETY note in
/// [`FoldCtx::make_task`]).
struct FoldCtx<'a, T, R, F, S> {
    shared: &'a Arc<Shared>,
    batch: &'a Arc<Batch>,
    items: &'a [Mutex<Option<T>>],
    f: &'a F,
    state: &'a Mutex<FoldState<R, S>>,
    n: usize,
    window: usize,
}

impl<T, R, F, S> Clone for FoldCtx<'_, T, R, F, S> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T, R, F, S> Copy for FoldCtx<'_, T, R, F, S> {}

impl<T, R, F, S> FoldCtx<'_, T, R, F, S>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    S: FnMut(usize, R) + Send,
{
    fn make_task(&self, i: usize) -> Task {
        let ctx = *self;
        let run: Box<dyn FnOnce() + Send + '_> = Box::new(move || ctx.run_cell(i));
        // SAFETY: the closure borrows the fold's items, state, and `f`
        // from the `map_fold_impl` stack frame. `participate` there
        // returns (or unwinds) only after every task of the batch has
        // finished executing — completions are counted after the closure
        // returns or panics — so no task can observe those borrows after
        // that frame ends. Queued-but-never-run tasks cannot exist
        // either: the pool only drops tasks by executing them, every
        // submitted cell is eventually executed (the completion guard
        // below keeps submissions flowing even across panics), and the
        // participating submitter can always claim its own batch's
        // unstarted cells.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
        Task {
            batch: Arc::clone(self.batch),
            run,
        }
    }

    fn run_cell(self, i: usize) {
        /// Records the cell's completion even when `f` panics: the
        /// reorder head must advance past a panicked cell (via a `None`
        /// placeholder) or submission would stall and the batch would
        /// never drain. The panic itself still propagates to the batch
        /// through the pool's `catch_unwind`.
        struct Complete<'a, T, R, F, S>
        where
            T: Send,
            R: Send,
            F: Fn(usize, T) -> R + Sync,
            S: FnMut(usize, R) + Send,
        {
            ctx: FoldCtx<'a, T, R, F, S>,
            i: usize,
            value: Option<R>,
        }
        impl<T, R, F, S> Drop for Complete<'_, T, R, F, S>
        where
            T: Send,
            R: Send,
            F: Fn(usize, T) -> R + Sync,
            S: FnMut(usize, R) + Send,
        {
            fn drop(&mut self) {
                self.ctx.complete(self.i, self.value.take());
            }
        }
        let mut guard = Complete {
            ctx: self,
            i,
            value: None,
        };
        let item = self.items[i]
            .lock()
            .unwrap()
            .take()
            .expect("each fold cell claims its item exactly once");
        guard.value = Some((self.f)(i, item));
    }

    /// Lands cell `i`'s result (or a panic placeholder), delivers every
    /// now-contiguous result to the sink in index order, and submits new
    /// cells up to the window past the advanced head.
    fn complete(self, i: usize, value: Option<R>) {
        let (spawn_from, spawn_to) = {
            let mut st = self.state.lock().unwrap();
            let slot = i % self.window;
            debug_assert!(st.ring[slot].is_none(), "fold slot collided");
            st.ring[slot] = Some(value);
            while st.head < self.n {
                let head_slot = st.head % self.window;
                match st.ring[head_slot].take() {
                    Some(entry) => {
                        let head = st.head;
                        if let Some(v) = entry {
                            (st.sink)(head, v);
                        }
                        st.head = head + 1;
                    }
                    None => break,
                }
            }
            let from = st.submitted;
            let to = (st.head + self.window).min(self.n).max(from);
            st.submitted = to;
            (from, to)
        };
        if spawn_to > spawn_from {
            let tasks: Vec<Task> = (spawn_from..spawn_to).map(|j| self.make_task(j)).collect();
            match worker_index_on(self.shared) {
                Some(w) => self.shared.locals[w].lock().unwrap().extend(tasks),
                None => self.shared.injector.lock().unwrap().extend(tasks),
            }
            self.shared.notify();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, w: usize) {
    WORKER.with(|cell| *cell.borrow_mut() = Some((Arc::clone(&shared), w)));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.find_task(w) {
            Some(task) => shared.execute(task, Some(w)),
            None => {
                let guard = shared.idle.lock().unwrap();
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !shared.any_queued() {
                    // The timeout is belt-and-braces only; pushes notify
                    // under the `idle` lock, so wakeups cannot be lost.
                    let _ = shared
                        .wake
                        .wait_timeout(guard, Duration::from_millis(100))
                        .unwrap();
                }
            }
        }
    }
}

thread_local! {
    /// `(pool, index)` on pool worker threads.
    static WORKER: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Stack of [`with_pool`] overrides on this thread.
    static CONTEXT: std::cell::RefCell<Vec<Arc<Shared>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The worker index of the current thread, if it is a worker of `shared`.
fn worker_index_on(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|cell| match cell.borrow().as_ref() {
        Some((pool, w)) if Arc::ptr_eq(pool, shared) => Some(*w),
        _ => None,
    })
}

/// A work-stealing pool of `jobs` execution lanes: `jobs - 1` worker
/// threads plus the submitting thread, which participates while it waits
/// on a batch. `Pool::new(1)` spawns no threads at all and evaluates
/// every [`Pool::map`] serially on the caller.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `jobs` lanes (`jobs` is clamped to ≥ 1).
    pub fn new(jobs: usize) -> Pool {
        let workers = jobs.max(1) - 1;
        let shared = Arc::new(Shared::new(workers));
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rbr-exec-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Total execution lanes (workers + the participating submitter).
    pub fn jobs(&self) -> usize {
        self.shared.workers() + 1
    }

    /// Maps `f` over `items` on the pool, returning results in input
    /// order. Equivalent to the serial loop for any job count. Built on
    /// [`Pool::map_fold`]; use the fold directly when the result set is
    /// too large to materialize.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.shared.map_collect(items, f)
    }

    /// Streams `f` over `items`: each result is delivered to `sink` in
    /// input order, as it lands, through a bounded reorder window — so a
    /// fold over N cells holds O(window) results, not O(N). Delivery is
    /// bit-identical to the serial loop for any job count. `sink` runs
    /// under the fold's internal lock and must not submit pool work.
    pub fn map_fold<T, R, F, S>(&self, items: Vec<T>, f: F, sink: S)
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
        S: FnMut(usize, R) + Send,
    {
        self.shared.map_fold_impl(items, f, sink)
    }

    /// A snapshot of the pool's per-worker counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs: self.jobs(),
            elapsed_secs: self.shared.created.elapsed().as_secs_f64(),
            busy_secs: self
                .shared
                .busy_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed) as f64 * 1e-9)
                .collect(),
            cells_executed: self
                .shared
                .executed
                .iter()
                .map(|e| e.load(Ordering::Relaxed))
                .collect(),
            cells_stolen: self
                .shared
                .stolen
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Point-in-time view of the pool's worker counters. Subtract two
/// snapshots (see [`PoolMetrics::since`]) to meter one campaign.
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    /// Execution lanes (workers + submitter).
    pub jobs: usize,
    /// Seconds since the pool was created.
    pub elapsed_secs: f64,
    /// Seconds each worker spent executing cells (excludes the
    /// submitting thread's share).
    pub busy_secs: Vec<f64>,
    /// Cells each worker executed.
    pub cells_executed: Vec<u64>,
    /// Cells each worker claimed from a sibling's deque.
    pub cells_stolen: Vec<u64>,
}

impl PoolMetrics {
    /// The per-worker busy fractions over the interval since `earlier`.
    pub fn since(&self, earlier: &PoolMetrics) -> Vec<f64> {
        let window = (self.elapsed_secs - earlier.elapsed_secs).max(1e-9);
        self.busy_secs
            .iter()
            .zip(&earlier.busy_secs)
            .map(|(now, then)| ((now - then) / window).clamp(0.0, 1.0))
            .collect()
    }

    /// Publishes this snapshot into the observability registry
    /// (per-worker busy seconds / cells / steals as gauges — a snapshot
    /// replaces the previous one). No-op while metrics are disabled.
    pub fn publish(&self) {
        if !rbr_obs::metrics::enabled() {
            return;
        }
        rbr_obs::metrics::gauge("exec.pool.jobs").set(self.jobs as f64);
        rbr_obs::metrics::gauge("exec.pool.elapsed_secs").set(self.elapsed_secs);
        for (w, busy) in self.busy_secs.iter().enumerate() {
            rbr_obs::metrics::gauge(&format!("exec.pool.worker{w}.busy_secs")).set(*busy);
        }
        for (w, cells) in self.cells_executed.iter().enumerate() {
            rbr_obs::metrics::gauge(&format!("exec.pool.worker{w}.cells")).set(*cells as f64);
        }
        for (w, stolen) in self.cells_stolen.iter().enumerate() {
            rbr_obs::metrics::gauge(&format!("exec.pool.worker{w}.stolen")).set(*stolen as f64);
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Sets the global pool's lane count. Returns `false` (and changes
/// nothing) if the global pool was already built — call this before the
/// first [`map`]/[`map_cells`] that falls through to the global pool.
pub fn configure(jobs: usize) -> bool {
    let mut applied = false;
    GLOBAL.get_or_init(|| {
        applied = true;
        Pool::new(jobs)
    });
    applied
}

/// The process-wide pool, built on first use with `RBR_JOBS` lanes (or
/// the machine's available parallelism when unset).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_jobs()))
}

fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("RBR_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `f` with `pool` installed as this thread's current pool, so that
/// [`map`] calls inside `f` (e.g. the experiment framework's replication
/// fan-out) use it instead of the global pool.
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CONTEXT.with(|c| c.borrow_mut().push(Arc::clone(&pool.shared)));
    let _guard = Guard;
    f()
}

/// The pool [`map`] uses on this thread: the innermost [`with_pool`]
/// override, else the pool whose worker is running this thread, else the
/// global pool.
fn current_shared() -> Arc<Shared> {
    if let Some(shared) = CONTEXT.with(|c| c.borrow().last().cloned()) {
        return shared;
    }
    if let Some(shared) = WORKER.with(|cell| cell.borrow().as_ref().map(|(p, _)| Arc::clone(p))) {
        return shared;
    }
    Arc::clone(&global().shared)
}

/// Maps `f` over `items` on the current pool (see [`with_pool`]),
/// returning results in input order.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    current_shared().map_collect(items, f)
}

/// Streams `f` over `items` on the current pool, delivering each result
/// to `sink` in input order as it lands (see [`Pool::map_fold`]).
pub fn map_fold<T, R, F, S>(items: Vec<T>, f: F, sink: S)
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
    S: FnMut(usize, R) + Send,
{
    current_shared().map_fold_impl(items, f, sink)
}

/// Maps `f` over the cell indices `0..n` on the current pool — the shape
/// replication fan-outs take.
pub fn map_cells<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map((0..n).collect(), |_, i| f(i))
}

/// Streams `f` over the cell indices `0..n` on the current pool,
/// folding each result into `sink` in index order as it lands — the
/// memory-flat sibling of [`map_cells`] for folds that never need the
/// full result vector.
pub fn fold_cells<R, F, S>(n: usize, f: F, sink: S)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: FnMut(usize, R) + Send,
{
    map_fold((0..n).collect(), |_, i| f(i), sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn map_matches_serial_for_every_job_count() {
        let expect: Vec<u64> = (0..97u64).map(|x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8] {
            let pool = Pool::new(jobs);
            let got = pool.map((0..97u64).collect(), |_, x| x * x + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_maps_run_inline() {
        let pool = Pool::new(4);
        let none: Vec<u32> = pool.map(Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        let caller = std::thread::current().id();
        let one = pool.map(vec![5u32], |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn cells_really_run_on_more_than_one_thread() {
        // Two cells rendezvous on a barrier: that can only succeed if
        // they run concurrently on distinct threads. Pool::new(3) has
        // two workers plus the participating submitter, so some second
        // thread is always free to claim the second cell.
        let pool = Pool::new(3);
        let barrier = Barrier::new(2);
        let ids = pool.map(vec![0, 1], |_, _| {
            barrier.wait();
            std::thread::current().id()
        });
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn submitter_participates_when_pool_is_saturated() {
        // One worker is parked on a barrier; the submitting thread must
        // pick up the remaining cells itself for the batch to finish.
        let pool = Pool::new(2);
        let gate = Barrier::new(2);
        let out = pool.map(vec![0usize, 1, 2, 3], |_, i| {
            if i == 0 {
                gate.wait();
            }
            if i == 3 {
                gate.wait();
            }
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn nested_maps_complete_and_preserve_order() {
        let pool = Pool::new(3);
        let got = pool.map((0..6usize).collect(), |_, i| {
            let inner = map_cells(4, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        // Nested map_cells on worker threads must resolve to this pool.
        let expect: Vec<usize> = (0..6).map(|i| 4 * i * 10 + 6).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn with_pool_overrides_the_global_pool() {
        let pool = Pool::new(1);
        let here = std::thread::current().id();
        with_pool(&pool, || {
            let ids = map_cells(8, |_| std::thread::current().id());
            assert!(ids.iter().all(|id| *id == here), "jobs=1 must stay serial");
        });
    }

    #[test]
    fn cell_panic_propagates_after_the_batch_drains() {
        let pool = Pool::new(3);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16usize).collect(), |_, i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(result.is_err());
        let payload = *result.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(payload, "cell 5 exploded");
        // Every non-panicking cell still ran (the batch fully drained
        // before the panic resurfaced), so the pool is reusable.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
        let again = pool.map(vec![1u8, 2, 3], |_, x| x * 2);
        assert_eq!(again, vec![2, 4, 6]);
    }

    #[test]
    fn metrics_account_worker_cells() {
        let pool = Pool::new(4);
        let before = pool.metrics();
        assert_eq!(before.jobs, 4);
        let gate = Barrier::new(2);
        // The first two cells rendezvous, so at least one runs on a
        // worker (the submitter cannot satisfy both sides).
        let _ = pool.map((0..64usize).collect(), |_, i| {
            if i < 2 {
                gate.wait();
            }
            i
        });
        let after = pool.metrics();
        let worker_cells: u64 = after.cells_executed.iter().sum();
        assert!(worker_cells >= 1, "workers executed nothing");
        assert_eq!(after.busy_secs.len(), 3);
        let busy = after.since(&before);
        assert!(busy.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn map_fold_delivers_in_index_order_for_every_job_count() {
        let expect: Vec<u64> = (0..257u64).map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8] {
            let pool = Pool::new(jobs);
            let mut seen = Vec::new();
            pool.map_fold(
                (0..257u64).collect(),
                |_, x| x * 3 + 1,
                |i, v| {
                    seen.push((i, v));
                },
            );
            assert_eq!(seen.len(), 257, "jobs = {jobs}");
            for (k, (i, v)) in seen.iter().enumerate() {
                assert_eq!(*i, k, "jobs = {jobs}: delivery out of order");
                assert_eq!(*v, expect[k], "jobs = {jobs}");
            }
        }
    }

    #[test]
    fn fold_window_bounds_in_flight_cells() {
        // Cell 0 stalls until every other cell of the first window has
        // completed. While it stalls the delivery head is stuck at 0, so
        // no cell at or beyond the window may even *start* — that is the
        // boundedness guarantee that keeps fold memory flat.
        let jobs = 4;
        let pool = Pool::new(jobs);
        let window = jobs * FOLD_WINDOW_PER_LANE;
        let n = window * 4;
        let started_max = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let mut delivered = 0usize;
        pool.map_fold(
            (0..n).collect(),
            |i, _| {
                started_max.fetch_max(i, Ordering::SeqCst);
                if i == 0 {
                    while completed.load(Ordering::SeqCst) < window - 1 {
                        std::thread::yield_now();
                    }
                    let max = started_max.load(Ordering::SeqCst);
                    assert!(max < window, "cell {max} started past the window");
                }
                completed.fetch_add(1, Ordering::SeqCst);
                i
            },
            |i, v| {
                assert_eq!(i, delivered);
                assert_eq!(v, delivered);
                delivered += 1;
            },
        );
        assert_eq!(delivered, n);
    }

    #[test]
    fn fold_cell_panic_propagates_after_the_batch_drains() {
        let pool = Pool::new(3);
        let completed = AtomicUsize::new(0);
        let delivered = Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map_fold(
                (0..16usize).collect(),
                |_, i| {
                    if i == 5 {
                        panic!("fold cell 5 exploded");
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                    i
                },
                |i, _| delivered.lock().unwrap().push(i),
            )
        }));
        assert!(result.is_err());
        let payload = *result.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(payload, "fold cell 5 exploded");
        // Every non-panicking cell ran and was delivered in order (the
        // placeholder lets the head advance past the panicked cell).
        assert_eq!(completed.load(Ordering::Relaxed), 15);
        let delivered = delivered.lock().unwrap().clone();
        let expect: Vec<usize> = (0..16).filter(|i| *i != 5).collect();
        assert_eq!(delivered, expect);
        let again = pool.map(vec![1u8, 2, 3], |_, x| x * 2);
        assert_eq!(again, vec![2, 4, 6]);
    }

    #[test]
    fn fold_cells_matches_map_cells_on_the_current_pool() {
        let pool = Pool::new(3);
        with_pool(&pool, || {
            let mapped = map_cells(97, |i| i * i + 7);
            let mut folded = Vec::new();
            fold_cells(97, |i| i * i + 7, |_, v| folded.push(v));
            assert_eq!(folded, mapped);
        });
    }

    #[test]
    fn configure_applies_only_before_first_global_use() {
        // The global pool may or may not exist depending on test order;
        // all we can assert deterministically is idempotence.
        let first = configure(1);
        let second = configure(7);
        assert!(!second || first, "second configure cannot win");
        assert!(global().jobs() >= 1);
    }
}
