//! The work-stealing cell pool.
//!
//! Campaign cells are heterogeneous — a CBF replication costs ~30× an
//! EASY one — so static chunking (split the cell list into one contiguous
//! block per thread) head-of-line-blocks: whichever thread drew the CBF
//! block runs long after the rest go idle. The pool therefore *steals*:
//!
//! * every worker owns a deque; it pops its own work from the back
//!   (LIFO, cache-warm) and steals from the *front* of siblings' deques
//!   when it runs dry;
//! * a global injector queue receives work submitted from threads that
//!   are not pool workers (the CLI main thread, test threads);
//! * a submitting thread is itself a participant: [`Pool::map`] blocks
//!   until its batch completes, and while blocked it executes cells
//!   instead of sleeping, so `jobs = 1` (a pool with zero workers) is an
//!   ordinary serial loop and nested submissions can never deadlock —
//!   every un-started cell of a batch is always claimable by the thread
//!   waiting on that batch.
//!
//! Determinism: a cell's inputs come only from its index (experiments
//! derive per-cell seeds hierarchically), and every cell writes its
//! output into the slot of its index. [`Pool::map`] therefore returns
//! results in submission order, bit-identical to the serial evaluation,
//! for any worker count and any steal interleaving.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// A unit of queued work: one cell of some batch, with its lifetime
/// erased (see the safety comment in [`Shared::map_impl`]).
struct Task {
    batch: Arc<Batch>,
    run: Box<dyn FnOnce() + Send + 'static>,
}

/// Completion state of one [`Pool::map`] call.
struct Batch {
    /// Cells completed so far (executed or panicked).
    done: Mutex<usize>,
    /// Cells in the batch.
    total: usize,
    /// First panic payload raised by a cell, re-raised on the submitting
    /// thread once the batch has fully drained.
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
    /// Signals the submitter when `done == total`.
    complete: Condvar,
}

impl Batch {
    fn new(total: usize) -> Self {
        Batch {
            done: Mutex::new(0),
            total,
            panic: Mutex::new(None),
            complete: Condvar::new(),
        }
    }

    fn is_done(&self) -> bool {
        *self.done.lock().unwrap() == self.total
    }
}

/// State shared by the pool handle, its workers, and thread-local
/// context references.
struct Shared {
    /// Work submitted from non-worker threads.
    injector: Mutex<VecDeque<Task>>,
    /// One deque per worker; the owner pushes/pops at the back, thieves
    /// steal from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Parking lot for idle workers.
    idle: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    /// Nanoseconds each worker spent executing cells.
    busy_ns: Vec<AtomicU64>,
    /// Cells each worker executed.
    executed: Vec<AtomicU64>,
    created: Instant,
}

impl Shared {
    fn new(workers: usize) -> Self {
        Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            executed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            created: Instant::now(),
        }
    }

    fn workers(&self) -> usize {
        self.locals.len()
    }

    /// Wakes every parked worker (called after any push).
    fn notify(&self) {
        let _guard = self.idle.lock().unwrap();
        self.wake.notify_all();
    }

    /// True when any queue holds a task.
    fn any_queued(&self) -> bool {
        if !self.injector.lock().unwrap().is_empty() {
            return true;
        }
        self.locals.iter().any(|l| !l.lock().unwrap().is_empty())
    }

    /// Worker claim order: own deque (back), injector (front), then
    /// steal from siblings (front), scanning from the neighbour upward
    /// so thieves spread over victims.
    fn find_task(&self, w: usize) -> Option<Task> {
        if let Some(t) = self.locals[w].lock().unwrap().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().unwrap().pop_front() {
            return Some(t);
        }
        let n = self.workers();
        for step in 1..n {
            let victim = (w + step) % n;
            if let Some(t) = self.locals[victim].lock().unwrap().pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Runs one task, crediting `worker`'s busy counters and recording
    /// completion (and any panic) in the task's batch.
    fn execute(&self, task: Task, worker: Option<usize>) {
        let batch = task.batch;
        let started = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(task.run));
        if let Some(w) = worker {
            let ns = started.elapsed().as_nanos() as u64;
            self.busy_ns[w].fetch_add(ns, Ordering::Relaxed);
            self.executed[w].fetch_add(1, Ordering::Relaxed);
        }
        if let Err(payload) = outcome {
            let mut slot = batch.panic.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut done = batch.done.lock().unwrap();
        *done += 1;
        if *done == batch.total {
            batch.complete.notify_all();
        }
    }

    /// Blocks until `batch` drains, executing claimable work meanwhile.
    ///
    /// `claim` must only return tasks that are safe for this thread to
    /// run re-entrantly: the batch's own cells, or (on a worker thread)
    /// cells this thread itself pushed. Once `claim` runs dry every
    /// remaining cell of the batch is in flight on some other thread, so
    /// sleeping on the completion condvar cannot deadlock.
    fn participate(
        &self,
        batch: &Arc<Batch>,
        worker: Option<usize>,
        claim: impl Fn() -> Option<Task>,
    ) {
        loop {
            if batch.is_done() {
                break;
            }
            if let Some(task) = claim() {
                self.execute(task, worker);
                continue;
            }
            let mut done = batch.done.lock().unwrap();
            while *done < batch.total {
                done = batch.complete.wait(done).unwrap();
            }
            break;
        }
        if let Some(payload) = batch.panic.lock().unwrap().take() {
            resume_unwind(payload);
        }
    }

    fn map_impl<T, R, F>(self: &Arc<Self>, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        // Serial fast path: nothing to fan out, or nobody to fan out to.
        if n <= 1 || self.workers() == 0 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, x)| f(i, x))
                .collect();
        }

        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let batch = Arc::new(Batch::new(n));
        let worker = worker_index_on(self);
        {
            let f = &f;
            let slots = &slots;
            let mut tasks = Vec::with_capacity(n);
            for (i, item) in items.into_iter().enumerate() {
                let run: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    let value = f(i, item);
                    *slots[i].lock().unwrap() = Some(value);
                });
                // SAFETY: the closure borrows `f` and `slots` from this
                // stack frame. `participate` below returns (or unwinds)
                // only after every task of the batch has finished
                // executing — completions are counted after the closure
                // returns or panics — so no task can observe those
                // borrows after this frame ends. Queued-but-never-run
                // tasks cannot exist either: the pool only drops tasks
                // by executing them, and the participating submitter can
                // always claim its own batch's unstarted cells.
                let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(run) };
                tasks.push(Task {
                    batch: Arc::clone(&batch),
                    run,
                });
            }
            match worker {
                Some(w) => {
                    self.locals[w].lock().unwrap().extend(tasks);
                    self.notify();
                    // A worker's own deque only ever contains work pushed
                    // by frames on its own stack, so claiming any of it
                    // re-entrantly is safe and keeps the subtree moving.
                    self.participate(&batch, worker, || self.locals[w].lock().unwrap().pop_back());
                }
                None => {
                    self.injector.lock().unwrap().extend(tasks);
                    self.notify();
                    // External threads claim only their own batch's cells
                    // so they never get stuck executing an unrelated
                    // long-running cell while their batch is finished.
                    self.participate(&batch, None, || {
                        let mut q = self.injector.lock().unwrap();
                        let pos = q.iter().position(|t| Arc::ptr_eq(&t.batch, &batch));
                        pos.and_then(|p| q.remove(p))
                    });
                }
            }
        }
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap()
                    .expect("every cell of a drained batch has written its slot")
            })
            .collect()
    }
}

fn worker_loop(shared: Arc<Shared>, w: usize) {
    WORKER.with(|cell| *cell.borrow_mut() = Some((Arc::clone(&shared), w)));
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        match shared.find_task(w) {
            Some(task) => shared.execute(task, Some(w)),
            None => {
                let guard = shared.idle.lock().unwrap();
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if !shared.any_queued() {
                    // The timeout is belt-and-braces only; pushes notify
                    // under the `idle` lock, so wakeups cannot be lost.
                    let _ = shared
                        .wake
                        .wait_timeout(guard, Duration::from_millis(100))
                        .unwrap();
                }
            }
        }
    }
}

thread_local! {
    /// `(pool, index)` on pool worker threads.
    static WORKER: std::cell::RefCell<Option<(Arc<Shared>, usize)>> =
        const { std::cell::RefCell::new(None) };
    /// Stack of [`with_pool`] overrides on this thread.
    static CONTEXT: std::cell::RefCell<Vec<Arc<Shared>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The worker index of the current thread, if it is a worker of `shared`.
fn worker_index_on(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|cell| match cell.borrow().as_ref() {
        Some((pool, w)) if Arc::ptr_eq(pool, shared) => Some(*w),
        _ => None,
    })
}

/// A work-stealing pool of `jobs` execution lanes: `jobs - 1` worker
/// threads plus the submitting thread, which participates while it waits
/// on a batch. `Pool::new(1)` spawns no threads at all and evaluates
/// every [`Pool::map`] serially on the caller.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool with `jobs` lanes (`jobs` is clamped to ≥ 1).
    pub fn new(jobs: usize) -> Pool {
        let workers = jobs.max(1) - 1;
        let shared = Arc::new(Shared::new(workers));
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rbr-exec-{w}"))
                    .spawn(move || worker_loop(shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Total execution lanes (workers + the participating submitter).
    pub fn jobs(&self) -> usize {
        self.shared.workers() + 1
    }

    /// Maps `f` over `items` on the pool, returning results in input
    /// order. Equivalent to the serial loop for any job count.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        self.shared.map_impl(items, f)
    }

    /// A snapshot of the pool's per-worker counters.
    pub fn metrics(&self) -> PoolMetrics {
        PoolMetrics {
            jobs: self.jobs(),
            elapsed_secs: self.shared.created.elapsed().as_secs_f64(),
            busy_secs: self
                .shared
                .busy_ns
                .iter()
                .map(|b| b.load(Ordering::Relaxed) as f64 * 1e-9)
                .collect(),
            cells_executed: self
                .shared
                .executed
                .iter()
                .map(|e| e.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Point-in-time view of the pool's worker counters. Subtract two
/// snapshots (see [`PoolMetrics::since`]) to meter one campaign.
#[derive(Clone, Debug)]
pub struct PoolMetrics {
    /// Execution lanes (workers + submitter).
    pub jobs: usize,
    /// Seconds since the pool was created.
    pub elapsed_secs: f64,
    /// Seconds each worker spent executing cells (excludes the
    /// submitting thread's share).
    pub busy_secs: Vec<f64>,
    /// Cells each worker executed.
    pub cells_executed: Vec<u64>,
}

impl PoolMetrics {
    /// The per-worker busy fractions over the interval since `earlier`.
    pub fn since(&self, earlier: &PoolMetrics) -> Vec<f64> {
        let window = (self.elapsed_secs - earlier.elapsed_secs).max(1e-9);
        self.busy_secs
            .iter()
            .zip(&earlier.busy_secs)
            .map(|(now, then)| ((now - then) / window).clamp(0.0, 1.0))
            .collect()
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// Sets the global pool's lane count. Returns `false` (and changes
/// nothing) if the global pool was already built — call this before the
/// first [`map`]/[`map_cells`] that falls through to the global pool.
pub fn configure(jobs: usize) -> bool {
    let mut applied = false;
    GLOBAL.get_or_init(|| {
        applied = true;
        Pool::new(jobs)
    });
    applied
}

/// The process-wide pool, built on first use with `RBR_JOBS` lanes (or
/// the machine's available parallelism when unset).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_jobs()))
}

fn default_jobs() -> usize {
    if let Ok(v) = std::env::var("RBR_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `f` with `pool` installed as this thread's current pool, so that
/// [`map`] calls inside `f` (e.g. the experiment framework's replication
/// fan-out) use it instead of the global pool.
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            CONTEXT.with(|c| {
                c.borrow_mut().pop();
            });
        }
    }
    CONTEXT.with(|c| c.borrow_mut().push(Arc::clone(&pool.shared)));
    let _guard = Guard;
    f()
}

/// The pool [`map`] uses on this thread: the innermost [`with_pool`]
/// override, else the pool whose worker is running this thread, else the
/// global pool.
fn current_shared() -> Arc<Shared> {
    if let Some(shared) = CONTEXT.with(|c| c.borrow().last().cloned()) {
        return shared;
    }
    if let Some(shared) = WORKER.with(|cell| cell.borrow().as_ref().map(|(p, _)| Arc::clone(p))) {
        return shared;
    }
    Arc::clone(&global().shared)
}

/// Maps `f` over `items` on the current pool (see [`with_pool`]),
/// returning results in input order.
pub fn map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    current_shared().map_impl(items, f)
}

/// Maps `f` over the cell indices `0..n` on the current pool — the shape
/// replication fan-outs take.
pub fn map_cells<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    map((0..n).collect(), |_, i| f(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn map_matches_serial_for_every_job_count() {
        let expect: Vec<u64> = (0..97u64).map(|x| x * x + 1).collect();
        for jobs in [1, 2, 3, 8] {
            let pool = Pool::new(jobs);
            let got = pool.map((0..97u64).collect(), |_, x| x * x + 1);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_item_maps_run_inline() {
        let pool = Pool::new(4);
        let none: Vec<u32> = pool.map(Vec::<u32>::new(), |_, x| x);
        assert!(none.is_empty());
        let caller = std::thread::current().id();
        let one = pool.map(vec![5u32], |_, x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn cells_really_run_on_more_than_one_thread() {
        // Two cells rendezvous on a barrier: that can only succeed if
        // they run concurrently on distinct threads. Pool::new(3) has
        // two workers plus the participating submitter, so some second
        // thread is always free to claim the second cell.
        let pool = Pool::new(3);
        let barrier = Barrier::new(2);
        let ids = pool.map(vec![0, 1], |_, _| {
            barrier.wait();
            std::thread::current().id()
        });
        assert_ne!(ids[0], ids[1]);
    }

    #[test]
    fn submitter_participates_when_pool_is_saturated() {
        // One worker is parked on a barrier; the submitting thread must
        // pick up the remaining cells itself for the batch to finish.
        let pool = Pool::new(2);
        let gate = Barrier::new(2);
        let out = pool.map(vec![0usize, 1, 2, 3], |_, i| {
            if i == 0 {
                gate.wait();
            }
            if i == 3 {
                gate.wait();
            }
            i * 10
        });
        assert_eq!(out, vec![0, 10, 20, 30]);
    }

    #[test]
    fn nested_maps_complete_and_preserve_order() {
        let pool = Pool::new(3);
        let got = pool.map((0..6usize).collect(), |_, i| {
            let inner = map_cells(4, |j| i * 10 + j);
            inner.iter().sum::<usize>()
        });
        // Nested map_cells on worker threads must resolve to this pool.
        let expect: Vec<usize> = (0..6).map(|i| 4 * i * 10 + 6).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn with_pool_overrides_the_global_pool() {
        let pool = Pool::new(1);
        let here = std::thread::current().id();
        with_pool(&pool, || {
            let ids = map_cells(8, |_| std::thread::current().id());
            assert!(ids.iter().all(|id| *id == here), "jobs=1 must stay serial");
        });
    }

    #[test]
    fn cell_panic_propagates_after_the_batch_drains() {
        let pool = Pool::new(3);
        let completed = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16usize).collect(), |_, i| {
                if i == 5 {
                    panic!("cell 5 exploded");
                }
                completed.fetch_add(1, Ordering::Relaxed);
                i
            })
        }));
        assert!(result.is_err());
        let payload = *result.unwrap_err().downcast::<&str>().unwrap();
        assert_eq!(payload, "cell 5 exploded");
        // Every non-panicking cell still ran (the batch fully drained
        // before the panic resurfaced), so the pool is reusable.
        assert_eq!(completed.load(Ordering::Relaxed), 15);
        let again = pool.map(vec![1u8, 2, 3], |_, x| x * 2);
        assert_eq!(again, vec![2, 4, 6]);
    }

    #[test]
    fn metrics_account_worker_cells() {
        let pool = Pool::new(4);
        let before = pool.metrics();
        assert_eq!(before.jobs, 4);
        let gate = Barrier::new(2);
        // The first two cells rendezvous, so at least one runs on a
        // worker (the submitter cannot satisfy both sides).
        let _ = pool.map((0..64usize).collect(), |_, i| {
            if i < 2 {
                gate.wait();
            }
            i
        });
        let after = pool.metrics();
        let worker_cells: u64 = after.cells_executed.iter().sum();
        assert!(worker_cells >= 1, "workers executed nothing");
        assert_eq!(after.busy_secs.len(), 3);
        let busy = after.since(&before);
        assert!(busy.iter().all(|b| (0.0..=1.0).contains(b)));
    }

    #[test]
    fn configure_applies_only_before_first_global_use() {
        // The global pool may or may not exist depending on test order;
        // all we can assert deterministically is idempotence.
        let first = configure(1);
        let second = configure(7);
        assert!(!second || first, "second configure cannot win");
        assert!(global().jobs() >= 1);
    }
}
