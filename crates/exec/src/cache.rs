//! The content-keyed cross-campaign cell cache (`rbr run --cache DIR`).
//!
//! A campaign cell is a pure function of its identity: the campaign
//! manifest (experiment set, scale, seed, reps, format — everything that
//! feeds the seed hierarchy) plus the cell's stable key. Two campaigns
//! that share a cell therefore compute byte-identical payloads, so the
//! payload can be stored once under a content key and replayed anywhere:
//!
//! ```text
//! <cache-dir>/ab/abcdef...32-hex...0123.json
//! ```
//!
//! The key is [`hash::digest128`] of `manifest ++ "\n" ++ cell key`
//! (FNV-1a under two bases). FNV is not collision-resistant, so every
//! cache file records the full identity next to the payload and
//! [`CellCache::lookup`] verifies it on hit — a colliding or corrupt
//! entry degrades to a miss, never a wrong payload. Writes go through a
//! temp file + rename so concurrent campaigns sharing one cache dir
//! never observe a torn entry.
//!
//! Each entry is two JSONL lines in the journal's hand-rolled dialect:
//! an identity header, then the cell's [`Record`] verbatim (including
//! the original `elapsed_secs`, so a cache-hit replay journals exactly
//! what the original run journalled).

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use crate::hash;
use crate::journal::{write_json_string, Record};

/// Registry handles for cache traffic (registered once each; per-call
/// cost is a relaxed load while metrics are off).
fn cache_counter(which: &'static str) -> &'static rbr_obs::Counter {
    static HITS: OnceLock<rbr_obs::Counter> = OnceLock::new();
    static MISSES: OnceLock<rbr_obs::Counter> = OnceLock::new();
    static STORES: OnceLock<rbr_obs::Counter> = OnceLock::new();
    let (slot, name) = match which {
        "hits" => (&HITS, "exec.cache.hits"),
        "misses" => (&MISSES, "exec.cache.misses"),
        _ => (&STORES, "exec.cache.stores"),
    };
    slot.get_or_init(|| rbr_obs::metrics::counter(name))
}

/// A handle on a shared cell-cache directory.
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Opens (creating if needed) the cache rooted at `dir`.
    pub fn open(dir: &Path) -> Result<CellCache, String> {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
        Ok(CellCache {
            dir: dir.to_path_buf(),
        })
    }

    /// The stable content key of `(manifest, key)`.
    pub fn content_key(manifest: &str, key: &str) -> String {
        let mut bytes = Vec::with_capacity(manifest.len() + 1 + key.len());
        bytes.extend_from_slice(manifest.as_bytes());
        bytes.push(b'\n');
        bytes.extend_from_slice(key.as_bytes());
        hash::digest128(&bytes)
    }

    fn entry_path(&self, content_key: &str) -> PathBuf {
        self.dir
            .join(&content_key[..2])
            .join(format!("{content_key}.json"))
    }

    /// Looks up the cell `(manifest, key)`. Returns the stored record on
    /// a verified hit; any mismatch, corruption, or absence is a miss.
    pub fn lookup(&self, manifest: &str, key: &str) -> Option<Record> {
        let found = self.lookup_inner(manifest, key);
        cache_counter(if found.is_some() { "hits" } else { "misses" }).inc();
        found
    }

    fn lookup_inner(&self, manifest: &str, key: &str) -> Option<Record> {
        let path = self.entry_path(&Self::content_key(manifest, key));
        let bytes = std::fs::read(&path).ok()?;
        let mut lines = bytes.split(|b| *b == b'\n');
        let (stored_manifest, stored_key) = parse_identity(lines.next()?).ok()?;
        if stored_manifest != manifest || stored_key != key {
            return None;
        }
        let record = crate::journal::parse_record(lines.next()?).ok()?;
        if record.key != key {
            return None;
        }
        Some(record)
    }

    /// Stores a completed cell. Atomic (temp file + rename), so a
    /// concurrent reader sees either nothing or the whole entry; two
    /// concurrent writers of the same cell write identical bytes.
    pub fn store(&self, manifest: &str, record: &Record) -> Result<(), String> {
        let content_key = Self::content_key(manifest, &record.key);
        let path = self.entry_path(&content_key);
        let parent = path.parent().unwrap();
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;

        let mut text = String::from("{\"cache\":\"rbr-cell-v1\",\"campaign\":");
        write_json_string(&mut text, manifest);
        text.push_str(",\"key\":");
        write_json_string(&mut text, &record.key);
        text.push_str("}\n");
        text.push_str(&format!("{{\"cell\":{},\"key\":", record.cell));
        write_json_string(&mut text, &record.key);
        text.push_str(&format!(",\"elapsed_secs\":{}", record.elapsed_secs));
        text.push_str(",\"payload\":");
        write_json_string(&mut text, &record.payload);
        text.push_str("}\n");

        let tmp = parent.join(format!(".{content_key}.{}.tmp", std::process::id()));
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
        file.write_all(text.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
        drop(file);
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cannot publish {}: {e}", path.display()))?;
        cache_counter("stores").inc();
        Ok(())
    }
}

fn parse_identity(line: &[u8]) -> Result<(String, String), String> {
    let src = std::str::from_utf8(line).map_err(|e| format!("not UTF-8: {e}"))?;
    let rest = src
        .strip_prefix("{\"cache\":\"rbr-cell-v1\",\"campaign\":")
        .ok_or("bad cache header")?;
    // The two identity strings are written by `write_json_string`, so a
    // tiny dedicated split suffices: find the `,"key":` separator at the
    // top level by re-scanning through the first string.
    let mut p = crate::journal::Scanner::new(rest.as_bytes())?;
    let manifest = p.string()?;
    p.expect(',')?;
    p.expect_key("key")?;
    let key = p.string()?;
    p.expect('}')?;
    p.end()?;
    Ok((manifest, key))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rbr-exec-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn record() -> Record {
        Record {
            cell: 4,
            key: "fig1 scale=smoke".to_string(),
            elapsed_secs: 1.25,
            payload: "{\"meta\":\"fig1\",\"text\":\"a\\nπ\"}".to_string(),
        }
    }

    #[test]
    fn round_trips_and_misses_on_other_manifests() {
        let dir = tmp_dir("roundtrip");
        let cache = CellCache::open(&dir).unwrap();
        assert!(cache.lookup("m1", "fig1 scale=smoke").is_none());
        cache.store("m1", &record()).unwrap();
        let hit = cache.lookup("m1", "fig1 scale=smoke").unwrap();
        assert_eq!(hit, record());
        // A different manifest is a different cell, even with one key.
        assert!(cache.lookup("m2", "fig1 scale=smoke").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entries_degrade_to_misses() {
        let dir = tmp_dir("corrupt");
        let cache = CellCache::open(&dir).unwrap();
        cache.store("m1", &record()).unwrap();
        let path = cache.entry_path(&CellCache::content_key("m1", "fig1 scale=smoke"));
        std::fs::write(&path, "garbage\n").unwrap();
        assert!(cache.lookup("m1", "fig1 scale=smoke").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verifies_identity_against_hash_collisions() {
        let dir = tmp_dir("collide");
        let cache = CellCache::open(&dir).unwrap();
        cache.store("m1", &record()).unwrap();
        // Forge a colliding file: same path, different recorded identity.
        let path = cache.entry_path(&CellCache::content_key("m1", "fig1 scale=smoke"));
        let text = std::fs::read_to_string(&path)
            .unwrap()
            .replace("\"campaign\":\"m1\"", "\"campaign\":\"mX\"");
        std::fs::write(&path, text).unwrap();
        assert!(cache.lookup("m1", "fig1 scale=smoke").is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn content_keys_are_stable_and_distinct() {
        let k = CellCache::content_key("m", "fig1");
        assert_eq!(k, CellCache::content_key("m", "fig1"));
        assert_eq!(k.len(), 32);
        assert_ne!(k, CellCache::content_key("m", "fig2"));
        // The separator keeps (manifest, key) unambiguous.
        assert_ne!(
            CellCache::content_key("ab", "c"),
            CellCache::content_key("a", "bc")
        );
    }
}
