//! Stable content hashing (64-bit FNV-1a) for the journal's footer
//! index (manifest fingerprint) and the cell cache's content keys.
//!
//! FNV-1a is deliberate: it is tiny, dependency-free, byte-order
//! independent, and stable across platforms and compiler versions —
//! unlike `std::hash`, whose output is explicitly unspecified. It is
//! *not* collision-resistant, which is why every consumer that maps a
//! hash back to content (the cell cache) also records the full identity
//! next to the payload and verifies it on every hit.

/// The FNV-1a 64-bit offset basis.
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// A second, unrelated basis so two independent 64-bit digests of the
/// same bytes can be concatenated into a 128-bit cache key.
pub const FNV_BASIS_ALT: u64 = 0x6c62_272e_07bb_0142;

/// Folds `bytes` into the running FNV-1a state `h`.
pub fn fnv1a64(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The 16-hex-digit FNV-1a digest of `bytes` (used as the index's
/// manifest fingerprint).
pub fn digest64(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(FNV_BASIS, bytes))
}

/// A 32-hex-digit content key: two independent FNV-1a digests of the
/// same bytes. Collisions are astronomically unlikely at campaign scale,
/// and the cache verifies full identity on hit regardless.
pub fn digest128(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a64(FNV_BASIS, bytes),
        fnv1a64(FNV_BASIS_ALT, bytes)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_are_stable() {
        // Pinned values: the on-disk index and cache formats depend on
        // these digests never changing.
        assert_eq!(fnv1a64(FNV_BASIS, b""), FNV_BASIS);
        assert_eq!(
            digest64(b"scale=smoke seed=default"),
            digest64(b"scale=smoke seed=default")
        );
        assert_ne!(digest64(b"a"), digest64(b"b"));
        let d = digest128(b"fig1");
        assert_eq!(d.len(), 32);
        assert_ne!(&d[..16], &d[16..]);
    }
}
