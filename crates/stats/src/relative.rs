//! Paired relative metrics.
//!
//! Every quantitative result in the paper is reported *relative to the
//! no-redundancy scheme on the same random job streams*: for each of the
//! 50 replications, the simulator runs scheme X and scheme NONE on
//! identical streams, forms the per-replication ratio
//! `metric(X) / metric(NONE)`, and averages the ratios. Values below 1
//! mean the scheme improved on the baseline.

use crate::summary::Summary;

/// Mean of element-wise ratios `treatment[i] / baseline[i]`.
///
/// # Panics
/// Panics if the slices have different lengths, are empty, or any
/// baseline entry is zero / non-finite — each of those is an experiment
/// harness bug, not a statistical outcome.
pub fn mean_relative(treatment: &[f64], baseline: &[f64]) -> f64 {
    relative_series(treatment, baseline).summary().mean()
}

/// Builds the per-replication ratio series for a treatment/baseline pair.
///
/// # Panics
/// See [`mean_relative`].
pub fn relative_series(treatment: &[f64], baseline: &[f64]) -> RelativeSeries {
    assert_eq!(
        treatment.len(),
        baseline.len(),
        "paired samples must have equal length"
    );
    assert!(!treatment.is_empty(), "paired samples must be non-empty");
    let ratios = treatment
        .iter()
        .zip(baseline)
        .map(|(&t, &b)| {
            assert!(
                b.is_finite() && b != 0.0,
                "baseline metric must be finite and nonzero, got {b}"
            );
            assert!(t.is_finite(), "treatment metric must be finite, got {t}");
            t / b
        })
        .collect();
    RelativeSeries { ratios }
}

/// The per-replication ratios of a paired comparison.
#[derive(Clone, Debug)]
pub struct RelativeSeries {
    ratios: Vec<f64>,
}

impl RelativeSeries {
    /// Builds from raw per-replication ratios.
    pub fn from_ratios(ratios: Vec<f64>) -> Self {
        RelativeSeries { ratios }
    }

    /// The individual per-replication ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Summary statistics over the ratios (the paper reports the mean, and
    /// quotes the across-replication CV in Section 3.3).
    pub fn summary(&self) -> Summary {
        Summary::of(&self.ratios)
    }

    /// Fraction of replications in which the treatment strictly improved
    /// (ratio < 1); the paper reports e.g. ">95 % of the experiments for
    /// N = 20".
    pub fn win_fraction(&self) -> f64 {
        if self.ratios.is_empty() {
            return 0.0;
        }
        self.ratios.iter().filter(|&&r| r < 1.0).count() as f64 / self.ratios.len() as f64
    }

    /// The worst (largest) ratio across replications; the paper reports
    /// "worse by at most 0.4 %" style figures from this.
    pub fn worst(&self) -> f64 {
        self.ratios
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The best (smallest) ratio across replications.
    pub fn best(&self) -> f64 {
        self.ratios.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_relative_of_known_pairs() {
        let t = [8.0, 9.0, 10.0];
        let b = [10.0, 10.0, 10.0];
        assert!((mean_relative(&t, &b) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn win_fraction_counts_strict_improvements() {
        let s = relative_series(&[0.5, 1.0, 2.0, 0.9], &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(s.win_fraction(), 0.5);
        assert_eq!(s.worst(), 2.0);
        assert_eq!(s.best(), 0.5);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_rejected() {
        let _ = mean_relative(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_baseline_rejected() {
        let _ = mean_relative(&[1.0], &[0.0]);
    }

    #[test]
    fn ratio_summary_exposes_spread() {
        let s = relative_series(&[0.8, 1.2], &[1.0, 1.0]).summary();
        assert!((s.mean() - 1.0).abs() < 1e-12);
        assert!(s.sd() > 0.0);
    }
}
