//! Exact order statistics over a retained sample.

/// A retained sample supporting exact quantile queries.
///
/// The study's job populations are at most a few hundred thousand records
/// per run, so retaining the sample and sorting on demand is simpler and
/// more accurate than a sketch.
#[derive(Clone, Debug, Default)]
pub struct Percentiles {
    values: Vec<f64>,
    sorted: bool,
}

impl Percentiles {
    /// An empty sample.
    pub fn new() -> Self {
        Percentiles::default()
    }

    /// Builds from an existing vector of observations.
    ///
    /// # Panics
    /// Panics if any value is NaN.
    pub fn from_vec(values: Vec<f64>) -> Self {
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "NaN observation in Percentiles sample"
        );
        Percentiles {
            values,
            sorted: false,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation pushed into Percentiles");
        self.values.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.values
                .sort_by(|a, b| a.partial_cmp(b).expect("NaN excluded on insert"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`) with linear interpolation between
    /// order statistics. Returns `None` on an empty sample.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.values.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let n = self.values.len();
        if n == 1 {
            return Some(self.values[0]);
        }
        let pos = q * (n - 1) as f64;
        let idx = pos.floor() as usize;
        let frac = pos - idx as f64;
        let lo = self.values[idx];
        let hi = self.values[(idx + 1).min(n - 1)];
        Some(lo + (hi - lo) * frac)
    }

    /// The median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Largest observation.
    pub fn max(&mut self) -> Option<f64> {
        self.quantile(1.0)
    }

    /// Smallest observation.
    pub fn min(&mut self) -> Option<f64> {
        self.quantile(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quartiles_of_known_sample() {
        let mut p = Percentiles::from_vec(vec![15.0, 20.0, 35.0, 40.0, 50.0]);
        assert_eq!(p.quantile(0.0), Some(15.0));
        assert_eq!(p.quantile(1.0), Some(50.0));
        assert_eq!(p.median(), Some(35.0));
        // Linear interpolation: 0.25 * 4 = position 1.0 exactly.
        assert_eq!(p.quantile(0.25), Some(20.0));
        // 0.75 * 4 = 3.0 exactly.
        assert_eq!(p.quantile(0.75), Some(40.0));
    }

    #[test]
    fn interpolation_between_points() {
        let mut p = Percentiles::from_vec(vec![0.0, 10.0]);
        assert_eq!(p.quantile(0.5), Some(5.0));
        assert_eq!(p.quantile(0.1), Some(1.0));
    }

    #[test]
    fn empty_and_singleton() {
        let mut e = Percentiles::new();
        assert_eq!(e.median(), None);
        let mut s = Percentiles::from_vec(vec![3.0]);
        assert_eq!(s.quantile(0.99), Some(3.0));
    }

    #[test]
    fn push_invalidates_sort() {
        let mut p = Percentiles::from_vec(vec![5.0, 1.0]);
        assert_eq!(p.min(), Some(1.0));
        p.push(0.5);
        assert_eq!(p.min(), Some(0.5));
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_rejected() {
        let mut p = Percentiles::from_vec(vec![1.0]);
        let _ = p.quantile(1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Percentiles::from_vec(vec![1.0, f64::NAN]);
    }
}
