//! Streaming summary statistics via Welford's online algorithm.

use std::fmt;

/// Count, mean, variance, min and max of a stream of observations.
///
/// Uses Welford's numerically stable online update; two summaries can be
/// [merged](Summary::merge) (Chan et al.'s parallel variant), which is how
/// per-replication results computed as parallel `rbr-exec` cells are
/// combined.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Summarizes a slice in one pass.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Summary::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Adds one observation.
    ///
    /// # Panics
    /// Panics on NaN — a NaN observation always indicates an upstream bug
    /// and would silently poison every downstream metric.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation pushed into Summary");
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// True if no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (denominator `n`).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (denominator `n − 1`, 0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation — standard deviation divided by mean.
    ///
    /// This is the paper's fairness metric for job stretches (reported
    /// there as a percentage; this returns the raw ratio). Returns 0 when
    /// the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.sd() / self.mean.abs()
        }
    }

    /// Smallest observation (∞ for an empty summary).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ for an empty summary).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean (0 when `n < 2`).
    pub fn se(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95 % confidence interval on
    /// the mean.
    pub fn ci95_halfwidth(&self) -> f64 {
        1.96 * self.se()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} cv={:.1}% min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.sd(),
            self.cv() * 100.0,
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.sd() - 2.0).abs() < 1e-12);
        assert!((s.cv() - 0.4).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 20.0)
            .collect();
        let seq = Summary::of(&all);
        let mut a = Summary::of(&all[..317]);
        let b = Summary::of(&all[317..]);
        a.merge(&b);
        assert_eq!(a.n(), seq.n());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.variance() - seq.variance()).abs() < 1e-9);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::of(&[1.0, 2.0, 3.0]);
        let before = s;
        s.merge(&Summary::new());
        assert_eq!(s, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = Summary::new();
        s.push(f64::NAN);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.se(), 0.0);
    }

    #[test]
    fn numerical_stability_with_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let s = Summary::of(&[base + 4.0, base + 7.0, base + 13.0, base + 16.0]);
        assert!((s.mean() - (base + 10.0)).abs() < 1e-3);
        assert!((s.variance() - 22.5).abs() < 1e-3, "var {}", s.variance());
    }
}
