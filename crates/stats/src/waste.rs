//! Wasted-work accounting for faulty-middleware runs.
//!
//! Under perfect middleware no copy of a job ever executes twice, so
//! every consumed node-second is useful. Unreliable middleware breaks
//! that: zombie copies run to completion, outages kill partial runs.
//! [`WasteAccount`] accumulates useful and wasted node-seconds — per run
//! or merged across replications — and reduces them to the overhead
//! ratios the fault experiments report.

/// Accumulator of useful vs wasted node-seconds.
///
/// Mergeable like [`Summary`](crate::Summary), so parallel replications
/// can be combined: `fraction` of the merged account is the
/// work-weighted mean of the per-run fractions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WasteAccount {
    useful: f64,
    wasted: f64,
}

impl WasteAccount {
    /// An empty account.
    pub fn new() -> Self {
        WasteAccount::default()
    }

    /// Records one run's useful and wasted node-seconds.
    ///
    /// # Panics
    /// Panics on negative or non-finite inputs.
    pub fn add(&mut self, useful_node_secs: f64, wasted_node_secs: f64) {
        assert!(
            useful_node_secs >= 0.0 && useful_node_secs.is_finite(),
            "useful work must be finite and non-negative, got {useful_node_secs}"
        );
        assert!(
            wasted_node_secs >= 0.0 && wasted_node_secs.is_finite(),
            "wasted work must be finite and non-negative, got {wasted_node_secs}"
        );
        self.useful += useful_node_secs;
        self.wasted += wasted_node_secs;
    }

    /// Folds another account into this one.
    pub fn merge(&mut self, other: &WasteAccount) {
        self.useful += other.useful;
        self.wasted += other.wasted;
    }

    /// Total useful node-seconds recorded.
    pub fn useful(&self) -> f64 {
        self.useful
    }

    /// Total wasted node-seconds recorded.
    pub fn wasted(&self) -> f64 {
        self.wasted
    }

    /// Wasted work as a fraction of useful work (0 when nothing useful
    /// ran — an empty platform wastes nothing).
    pub fn fraction(&self) -> f64 {
        if self.useful > 0.0 {
            self.wasted / self.useful
        } else {
            0.0
        }
    }

    /// Total consumed over useful node-seconds (`1 + fraction()`): how
    /// much bigger the platform bill is than the work delivered.
    pub fn overhead(&self) -> f64 {
        1.0 + self.fraction()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_account_wastes_nothing() {
        let w = WasteAccount::new();
        assert_eq!(w.fraction(), 0.0);
        assert_eq!(w.overhead(), 1.0);
        assert_eq!(w.useful(), 0.0);
        assert_eq!(w.wasted(), 0.0);
    }

    #[test]
    fn fraction_is_wasted_over_useful() {
        let mut w = WasteAccount::new();
        w.add(100.0, 25.0);
        assert!((w.fraction() - 0.25).abs() < 1e-12);
        assert!((w.overhead() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn merge_matches_sequential_adds() {
        let mut a = WasteAccount::new();
        a.add(10.0, 1.0);
        let mut b = WasteAccount::new();
        b.add(30.0, 9.0);
        let mut merged = a;
        merged.merge(&b);
        let mut seq = WasteAccount::new();
        seq.add(10.0, 1.0);
        seq.add(30.0, 9.0);
        assert_eq!(merged, seq);
        assert!((merged.fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_waste_rejected() {
        WasteAccount::new().add(1.0, -0.5);
    }
}
