//! Least-squares trend over a sampled time series — the instability
//! detector behind the `stability` experiment's λ* bisection.
//!
//! A queue is classified as *growing* when the fitted slope of its
//! windowed queue-length samples exceeds a threshold expressed in jobs
//! per second. For a stable queue the samples fluctuate around a finite
//! mean and the fitted slope hovers near zero; past the stability edge
//! the backlog grows linearly at rate λ − (served rate), so a slope
//! threshold scaled to a small fraction of λ separates the phases
//! crisply once the sample window outlives the transient.

/// Least-squares slope of `y` over `x` for `(x, y)` samples, in units of
/// `y` per unit `x`. Returns `0.0` for degenerate inputs (fewer than two
/// samples, or all `x` equal) — a series that cannot exhibit a trend is
/// treated as flat.
pub fn linear_slope(samples: &[(f64, f64)]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean_x = samples.iter().map(|&(x, _)| x).sum::<f64>() / n;
    let mean_y = samples.iter().map(|&(_, y)| y).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(x, y) in samples {
        let dx = x - mean_x;
        sxx += dx * dx;
        sxy += dx * (y - mean_y);
    }
    if sxx <= 0.0 {
        return 0.0;
    }
    sxy / sxx
}

/// Whether a sampled queue-length series is growing: its fitted slope
/// exceeds `threshold` (jobs per second; pass a small fraction of the
/// offered λ so the verdict scales with the workload).
pub fn is_growing(samples: &[(f64, f64)], threshold: f64) -> bool {
    linear_slope(samples) > threshold
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovers_its_slope() {
        let samples: Vec<(f64, f64)> = (0..100)
            .map(|i| (i as f64, 3.0 + 0.25 * i as f64))
            .collect();
        assert!((linear_slope(&samples) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degenerate_series_are_flat() {
        assert_eq!(linear_slope(&[]), 0.0);
        assert_eq!(linear_slope(&[(1.0, 5.0)]), 0.0);
        assert_eq!(linear_slope(&[(2.0, 1.0), (2.0, 9.0)]), 0.0);
    }

    #[test]
    fn classifies_stable_vs_growing_queue_traces() {
        // A stable queue: bounded oscillation around a mean of ~3 jobs.
        let stable: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let t = i as f64 * 10.0;
                (t, 3.0 + 2.0 * (i as f64 * 0.7).sin())
            })
            .collect();
        // An unstable queue at λ = 0.1/s with 20% excess arrival rate:
        // backlog grows at 0.02 jobs/s plus the same oscillation.
        let growing: Vec<(f64, f64)> = (0..200)
            .map(|i| {
                let t = i as f64 * 10.0;
                (t, 3.0 + 0.02 * t + 2.0 * (i as f64 * 0.7).sin())
            })
            .collect();
        let threshold = 0.05 * 0.1; // slope_frac · λ
        assert!(!is_growing(&stable, threshold));
        assert!(is_growing(&growing, threshold));
    }

    #[test]
    fn negative_trends_are_not_growth() {
        let draining: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, 100.0 - 2.0 * i as f64))
            .collect();
        assert!(!is_growing(&draining, 0.001));
        assert!(linear_slope(&draining) < 0.0);
    }
}
