//! # rbr-stats
//!
//! Statistics used to evaluate schedule quality in the study:
//!
//! * [`Summary`] — streaming count/mean/variance/min/max (Welford), with
//!   the **coefficient of variation** the paper uses as its fairness
//!   metric, and mergeable so parallel replications can be combined.
//! * [`Percentiles`] — exact order statistics over a retained sample.
//! * [`relative`] — paired relative metrics: every figure and table in the
//!   paper reports a redundant-request scheme *relative to* the
//!   no-redundancy scheme on the same random job streams.
//! * [`Histogram`] — fixed-bin histogram for distributional sanity checks.
//! * [`WasteAccount`] — useful vs wasted node-seconds under faulty
//!   middleware, mergeable across replications.
//! * [`jain_index`] — Jain's fairness index over per-cluster loads.
//! * [`trend`] — least-squares slope over windowed samples, the
//!   queue-growth instability detector behind the λ* bisection.

pub mod fairness;
pub mod histogram;
pub mod percentile;
pub mod relative;
pub mod summary;
pub mod trend;
pub mod waste;

pub use fairness::jain_index;
pub use histogram::Histogram;
pub use percentile::Percentiles;
pub use relative::{mean_relative, RelativeSeries};
pub use summary::Summary;
pub use trend::{is_growing, linear_slope};
pub use waste::WasteAccount;
