//! Fairness indices over per-entity allocations.

/// Jain's fairness index `(Σx)² / (n · Σx²)` over non-negative values:
/// 1 when all values are equal, `1/n` when a single entity holds
/// everything. An empty or all-zero input is perfectly fair (1).
pub fn jain_index(values: &[f64]) -> f64 {
    let sum: f64 = values.iter().sum();
    let sum_sq: f64 = values.iter().map(|v| v * v).sum();
    if sum_sq > 0.0 {
        sum * sum / (values.len() as f64 * sum_sq)
    } else {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_values_are_perfectly_fair() {
        assert!((jain_index(&[0.5, 0.5, 0.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_holder_scores_one_over_n() {
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn known_two_value_case() {
        // (1.5)² / (2 × 1.25) = 0.9.
        assert!((jain_index(&[1.0, 0.5]) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_are_fair() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }
}
