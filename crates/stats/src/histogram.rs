//! Fixed-bin histogram for distributional sanity checks.

/// A histogram with uniform-width bins over `[lo, hi)` plus underflow and
/// overflow counters.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics unless `lo < hi` and `bins > 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty: [{lo}, {hi})");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN observation pushed into Histogram");
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((value - self.lo) / width) as usize;
            // Guard the edge case where floating rounding maps `hi - ε`
            // to `bins`.
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(lo, hi)` bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + width * i as f64, self.lo + width * (i + 1) as f64)
    }

    /// Fraction of in-range mass in bin `i` (0 if nothing recorded).
    pub fn fraction(&self, i: usize) -> f64 {
        let in_range: u64 = self.counts.iter().sum();
        if in_range == 0 {
            0.0
        } else {
            self.counts[i] as f64 / in_range as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.5);
        h.push(9.99);
        h.push(5.0);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.counts()[5], 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn out_of_range_tracked() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bounds_and_fractions() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_bounds(2), (2.0, 3.0));
        h.push(0.1);
        h.push(0.2);
        h.push(2.5);
        assert!((h.fraction(0) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }
}
