//! Property tests for the statistics substrate.

use proptest::prelude::*;
use rbr_stats::{Percentiles, Summary};

fn finite_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

proptest! {
    /// Merging partial summaries equals summarizing the whole stream.
    #[test]
    fn merge_equals_sequential(values in finite_values(400), split in 0usize..400) {
        let split = split.min(values.len());
        let whole = Summary::of(&values);
        let mut left = Summary::of(&values[..split]);
        let right = Summary::of(&values[split..]);
        left.merge(&right);
        prop_assert_eq!(left.n(), whole.n());
        prop_assert!((left.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((left.variance() - whole.variance()).abs()
            <= 1e-5 * (1.0 + whole.variance().abs()));
        prop_assert_eq!(left.min(), whole.min());
        prop_assert_eq!(left.max(), whole.max());
    }

    /// The streaming-campaign fold — one single-observation summary per
    /// cell, merged in index order — equals the one-shot summary. This
    /// is the exact shape of the incremental Welford accumulation the
    /// experiment folds use, so its equivalence is what licenses
    /// replacing buffered per-rep vectors with streaming summaries.
    #[test]
    fn incremental_fold_equals_one_shot(values in finite_values(300)) {
        let whole = Summary::of(&values);
        let mut folded = Summary::new();
        for &v in &values {
            let mut cell = Summary::new();
            cell.push(v);
            folded.merge(&cell);
        }
        prop_assert_eq!(folded.n(), whole.n());
        prop_assert!((folded.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((folded.variance() - whole.variance()).abs()
            <= 1e-5 * (1.0 + whole.variance().abs()));
        prop_assert_eq!(folded.min(), whole.min());
        prop_assert_eq!(folded.max(), whole.max());
    }

    /// The mean always lies between min and max; the variance is
    /// non-negative; the CV is finite for nonzero means.
    #[test]
    fn summary_bounds(values in finite_values(200)) {
        let s = Summary::of(&values);
        prop_assert!(s.min() <= s.mean() + 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
        prop_assert!(s.variance() >= -1e-9);
        if s.mean() != 0.0 {
            prop_assert!(s.cv().is_finite());
        }
    }

    /// Quantiles are monotone in q and bounded by the extremes.
    #[test]
    fn quantiles_are_monotone(values in finite_values(200), qs in prop::collection::vec(0.0f64..=1.0, 1..10)) {
        let mut p = Percentiles::from_vec(values.clone());
        let mut sorted_qs = qs.clone();
        sorted_qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = f64::NEG_INFINITY;
        for q in sorted_qs {
            let v = p.quantile(q).unwrap();
            prop_assert!(v >= last - 1e-9, "quantile not monotone at {q}");
            let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            last = v;
        }
    }

    /// The median of a sample and its reverse agree (order invariance).
    #[test]
    fn percentiles_are_order_invariant(values in finite_values(100)) {
        let mut fwd = Percentiles::from_vec(values.clone());
        let mut rev_values = values.clone();
        rev_values.reverse();
        let mut rev = Percentiles::from_vec(rev_values);
        prop_assert_eq!(fwd.median(), rev.median());
        prop_assert_eq!(fwd.quantile(0.9), rev.quantile(0.9));
    }

    /// Relative series: ratios of a sequence against itself are all 1.
    #[test]
    fn self_ratio_is_unity(values in prop::collection::vec(0.1f64..1e6, 1..100)) {
        let r = rbr_stats::mean_relative(&values, &values);
        prop_assert!((r - 1.0).abs() < 1e-12);
    }
}
