//! Regenerates Figure 2 (relative coefficient of variation of stretches —
//! the fairness metric — vs number of clusters). The sweep is shared
//! with Figure 1; this target renders the CV series and times the metric
//! pipeline on a completed run.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::record::JobClass;
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    // `fig2` is an alias of the fig1 entry, whose report carries both
    // the Figure 1 and Figure 2 tables.
    regenerate("fig2");

    // Kernel: computing the stretch summary + CV over a finished run.
    let mut cfg = GridConfig::homogeneous(4, Scheme::Half);
    cfg.window = Duration::from_secs(1_800.0);
    let run = GridSim::execute(cfg, SeedSequence::new(2));
    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);
    group.bench_function("stretch_cv_metric", |b| {
        b.iter(|| {
            let s = run.stretch(JobClass::All);
            (s.mean(), s.cv())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
