//! Regenerates Figure 4 (stretch of r-jobs vs n-r jobs vs the fraction
//! of jobs using redundancy) and times a mixed-population run.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("fig4");

    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(5, Scheme::All);
    cfg.redundant_fraction = 0.4;
    cfg.window = Duration::from_secs(1_800.0);
    group.bench_function("grid_n5_all_p40_30min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(4)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
