//! Regenerates Figure 3 (relative average stretch vs job interarrival
//! time) and times workload generation across the arrival-rate sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::sim::{Duration, SeedSequence};
use rbr::workload::{EstimateModel, LublinConfig, LublinModel};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("fig3");

    let mut group = c.benchmark_group("fig3");
    group.sample_size(20);
    for alpha in [4.0, 10.23, 20.0] {
        let model = LublinModel::new(LublinConfig::paper_2006().with_interarrival_shape(alpha));
        group.bench_function(format!("lublin_generate_1h_alpha{alpha}"), |b| {
            b.iter(|| {
                model.generate(
                    &mut SeedSequence::new(3).rng(),
                    Duration::from_hours(1),
                    &EstimateModel::Exact,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
