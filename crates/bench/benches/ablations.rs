//! Regenerates the beyond-the-paper ablations: load regime, CBF
//! scheduling cycle, target-selection policy, and remote-request
//! inflation (§3.1.2).

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::ablation;
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::{bench_scale, print_artifact};

fn bench(c: &mut Criterion) {
    let scale = bench_scale();
    print_artifact(
        "Ablation — offered-load regime (relative stretch of ALL)",
        &ablation::render(
            "load",
            &ablation::load_sweep(scale, Scheme::All, &[0.9, 1.0, 1.1, 1.2]),
        ),
    );
    print_artifact(
        "Ablation — CBF scheduling cycle vs textbook compression",
        &ablation::render("cycle", &ablation::cbf_cycle_sweep(scale, &[0.0, 30.0, 300.0])),
    );
    print_artifact(
        "Ablation — target-selection policy (R2)",
        &ablation::render("policy", &ablation::selection_sweep(scale, Scheme::R(2))),
    );
    print_artifact(
        "Ablation — §3.1.2 remote-request inflation (HALF)",
        &ablation::render("inflation", &ablation::inflation_sweep(scale, Scheme::Half)),
    );

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(5, Scheme::Half);
    cfg.remote_inflation = 0.5;
    cfg.window = Duration::from_secs(900.0);
    group.bench_function("grid_n5_half_inflated_15min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(12)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
