//! Regenerates the beyond-the-paper ablations: load regime, CBF
//! scheduling cycle, target-selection policy, and remote-request
//! inflation (§3.1.2).

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("ablations");

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(5, Scheme::Half);
    cfg.remote_inflation = 0.5;
    cfg.window = Duration::from_secs(900.0);
    group.bench_function("grid_n5_half_inflated_15min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(12)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
