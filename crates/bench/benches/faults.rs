//! Regenerates the faulty-middleware sweep (lost/delayed cancellations
//! vs the perfect-middleware baseline) and times the simulation kernel
//! with the fault model engaged, so the cost of the message-level
//! protocol shows up next to the perfect-middleware kernel numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{Delay, GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("faults");

    let mut group = c.benchmark_group("faults");
    group.sample_size(10);
    for (label, loss) in [("perfect", 0.0), ("lossy_cancels", 0.5)] {
        let mut cfg = GridConfig::homogeneous(5, Scheme::All);
        cfg.window = Duration::from_secs(1_800.0);
        if loss > 0.0 {
            cfg.faults.cancel_loss = loss;
            cfg.faults.cancel_delay = Delay::Fixed(Duration::from_secs(10.0));
        }
        group.bench_function(format!("grid_30min_5c_all_{label}"), |b| {
            b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(57)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
