//! The campaign engine's perf trajectory: times a registry campaign
//! serially and on a multi-lane pool, times a *wide* synthetic campaign
//! (10⁴–10⁵ cells) streaming vs materializing with peak-RSS deltas,
//! writes the comparison to `BENCH_exec.json` at the repository root
//! (so later changes can track the speedup), and lets criterion time
//! the pool's map kernels.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::campaign::{run, Plan, RunOptions};
use rbr::experiments::Registry;
use rbr::report::Format;
use rbr_bench::{bench_scale, print_artifact};
use rbr_exec::{with_pool, CampaignOptions, CellOutcome, CellSpec, Pool};

/// Runs the campaign once on `pool`, returning (wall seconds, cells).
fn time_campaign(pool: &Pool, plan: &Plan<'_>) -> (f64, usize) {
    let started = Instant::now();
    let result = with_pool(pool, || run(plan, &RunOptions::default(), &|_| {}))
        .expect("unjournalled campaign cannot fail");
    assert!(result.complete);
    (started.elapsed().as_secs_f64(), result.outcomes.len())
}

/// Peak resident set (VmHWM, kB) of this process, from
/// `/proc/self/status`. `None` off Linux. Monotone over the process
/// lifetime, so the wide-campaign phases below run lightest-first and
/// the materializing phase — the only one whose footprint grows with
/// cell count — runs last.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// A wide cell's payload: ~500 deterministic bytes, a pure function of
/// the cell index (an LCG stream), so journal replays and cache hits
/// can be checksum-verified against fresh execution.
fn wide_payload(i: usize) -> String {
    let mut body = format!("{{\"cell\":{i},\"stream\":[");
    let mut x = (i as u64).wrapping_mul(2).wrapping_add(1);
    for k in 0..24 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if k > 0 {
            body.push(',');
        }
        body.push_str(&x.to_string());
    }
    body.push_str("]}");
    body
}

/// FNV-1a over a payload, folded into `hash` — the streaming sink's
/// whole accumulator state, demonstrating fold-as-you-go.
fn fold_payload(hash: &mut u64, payload: &str) {
    for &b in payload.as_bytes() {
        *hash = (*hash ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
}

/// Times a wide synthetic campaign (10⁴ cells; 10⁵ under
/// `RBR_BENCH_QUICK=1`, the scale the ROADMAP's million-cell target is
/// anchored against) through the full journal + cache machinery, three
/// ways: streaming with a cold cache, streaming with a warm cache
/// (every cell a verified hit), and materializing via [`run`]'s
/// collecting sink. Records wall-clock per phase and the peak-RSS
/// trajectory — the streaming phases leave VmHWM at the baseline while
/// the materialized outcome vector shows up as a step — and returns the
/// JSON fields for `BENCH_exec.json`.
fn record_wide_campaign() -> String {
    let quick = std::env::var("RBR_BENCH_QUICK").as_deref() == Ok("1");
    let wide_cells: usize = if quick { 100_000 } else { 10_000 };
    let root = std::env::temp_dir().join(format!("rbr-bench-wide-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let cells: Vec<CellSpec> = (0..wide_cells)
        .map(|i| CellSpec::new(format!("wide-{i:06}")))
        .collect();
    let manifest = format!("bench wide campaign v1 cells={wide_cells}");
    let options = |journal: &str, cache: &str| CampaignOptions {
        dir: Some(root.join(journal)),
        resume: false,
        cell_budget: None,
        manifest: manifest.clone(),
        cache: Some(root.join(cache)),
        segment_records: None,
    };
    let pool = Pool::new(4);
    let rss_baseline_kb = peak_rss_kb();

    // Phase 1 — streaming, cold cache: executes every cell, folds each
    // payload into a 64-bit checksum, holds no outcome vector.
    let mut streamed_hash = 0xcbf2_9ce4_8422_2325u64;
    let started = Instant::now();
    let stats = with_pool(&pool, || {
        rbr_exec::run_streaming(
            &cells,
            &options("journal-stream", "cache"),
            |i, _| wide_payload(i),
            |outcome: CellOutcome| {
                fold_payload(&mut streamed_hash, &outcome.payload);
                Ok(())
            },
            &|_| {},
        )
    })
    .expect("wide streaming campaign");
    let streaming_secs = started.elapsed().as_secs_f64();
    assert!(stats.complete && stats.cache_hits == 0);
    let rss_streaming_kb = peak_rss_kb();

    // Phase 2 — streaming, warm cache: a fresh journal over the same
    // manifest, so every cell is a verified cache hit.
    let mut warm_hash = 0xcbf2_9ce4_8422_2325u64;
    let started = Instant::now();
    let warm = with_pool(&pool, || {
        rbr_exec::run_streaming(
            &cells,
            &options("journal-warm", "cache"),
            |i, _| wide_payload(i),
            |outcome: CellOutcome| {
                fold_payload(&mut warm_hash, &outcome.payload);
                Ok(())
            },
            &|_| {},
        )
    })
    .expect("wide warm-cache campaign");
    let warm_cache_secs = started.elapsed().as_secs_f64();
    assert!(warm.complete && warm.cache_hits == wide_cells);
    assert_eq!(warm_hash, streamed_hash, "cache hits must replay bytes");

    // Phase 3 — materializing (last: VmHWM is monotone, and only this
    // phase's footprint grows with cell count). Cold cache directory so
    // its wall-clock is apples-to-apples with phase 1.
    let started = Instant::now();
    let result = with_pool(&pool, || {
        rbr_exec::campaign::run(
            &cells,
            &options("journal-mat", "cache-mat"),
            |i, _| wide_payload(i),
            &|_| {},
        )
    })
    .expect("wide materializing campaign");
    let materialize_secs = started.elapsed().as_secs_f64();
    assert!(result.complete);
    let mut materialized_hash = 0xcbf2_9ce4_8422_2325u64;
    for outcome in &result.outcomes {
        fold_payload(&mut materialized_hash, &outcome.payload);
    }
    assert_eq!(materialized_hash, streamed_hash, "same cells, same bytes");
    let rss_materialize_kb = peak_rss_kb();
    drop(result);
    let _ = std::fs::remove_dir_all(&root);

    let kb = |v: Option<u64>| v.map_or("null".to_string(), |kb| kb.to_string());
    format!(
        "\"wide_cells\":{wide_cells},\
         \"wide_streaming_secs\":{streaming_secs:.3},\
         \"wide_warm_cache_secs\":{warm_cache_secs:.3},\
         \"wide_materialize_secs\":{materialize_secs:.3},\
         \"wide_rss_baseline_kb\":{},\
         \"wide_rss_streaming_kb\":{},\
         \"wide_rss_materialize_kb\":{}",
        kb(rss_baseline_kb),
        kb(rss_streaming_kb),
        kb(rss_materialize_kb),
    )
}

/// Serial wall-clock of the smoke-scale `run all` campaign measured at
/// the PR-5 kernel (the allocation-heavy pre-refactor baseline every
/// later number is tracked against).
const PR5_BASELINE_SERIAL_SECS: f64 = 1.297;

/// Times the full-registry campaign serial and at 2/4 lanes, and records
/// the trajectory (plus the wide-campaign fields) in `BENCH_exec.json`.
fn record_speedup(wide: &str) {
    let registry = Registry::standard();
    let scale = bench_scale();
    let plan = Plan {
        experiments: registry.iter().collect(),
        scale,
        seed: None,
        reps: None,
        format: Format::Json,
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (serial_secs, cells) = {
        // Best of three: the committed number should reflect the kernel,
        // not one cold run's scheduler noise.
        let pool = Pool::new(1);
        let mut best = (f64::INFINITY, 0);
        for _ in 0..3 {
            let (secs, n) = time_campaign(&pool, &plan);
            if secs < best.0 {
                best = (secs, n);
            }
        }
        best
    };
    let (jobs2_secs, _) = time_campaign(&Pool::new(2), &plan);
    let (jobs4_secs, _) = time_campaign(&Pool::new(4), &plan);

    // The observability tax: the same serial campaign with the metrics
    // registry enabled and a trace sink attached. The acceptance bar is
    // obs_overhead <= 0.05 (5%); the disabled path costs nothing by
    // construction (a relaxed load per call site), which the zero-alloc
    // test in rbr-obs pins.
    let obs_enabled_secs = {
        let trace_path =
            std::env::temp_dir().join(format!("rbr-bench-obs-trace-{}.jsonl", std::process::id()));
        rbr_obs::trace::start_file(&trace_path).expect("attach trace sink");
        rbr_obs::metrics::set_enabled(true);
        let pool = Pool::new(1);
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let (secs, _) = time_campaign(&pool, &plan);
            best = best.min(secs);
        }
        rbr_obs::metrics::set_enabled(false);
        rbr_obs::trace::stop().expect("detach trace sink");
        let _ = std::fs::remove_file(&trace_path);
        best
    };
    let obs_overhead = obs_enabled_secs / serial_secs.max(1e-9) - 1.0;

    // Quick-scale trajectory (ROADMAP item 1): one 4-lane pass over the
    // full registry at quick fidelity. ~100x the smoke cost, so it only
    // runs when CI (or a curious dev) opts in via RBR_BENCH_QUICK=1.
    let quick_jobs4_secs = if std::env::var("RBR_BENCH_QUICK").as_deref() == Ok("1") {
        let quick_plan = Plan {
            experiments: registry.iter().collect(),
            scale: rbr::Scale::Quick,
            seed: None,
            reps: None,
            format: Format::Json,
        };
        let (secs, _) = time_campaign(&Pool::new(4), &quick_plan);
        format!("{secs:.3}")
    } else {
        "null".to_string()
    };

    let body = format!(
        "{{\"campaign\":\"run all\",\"scale\":\"{}\",\"cells\":{cells},\
         \"host_cpus\":{host_cpus},\
         \"pr5_baseline_serial_secs\":{PR5_BASELINE_SERIAL_SECS:.3},\
         \"serial_secs\":{serial_secs:.3},\
         \"speedup_vs_pr5_serial\":{:.3},\
         \"obs_enabled_secs\":{obs_enabled_secs:.3},\
         \"obs_overhead\":{obs_overhead:.3},\
         \"jobs2_secs\":{jobs2_secs:.3},\"jobs4_secs\":{jobs4_secs:.3},\
         \"parallel_speedup_jobs2\":{:.3},\"parallel_speedup_jobs4\":{:.3},\
         \"quick_jobs4_secs\":{quick_jobs4_secs},{wide}}}\n",
        scale.name(),
        PR5_BASELINE_SERIAL_SECS / serial_secs.max(1e-9),
        serial_secs / jobs2_secs.max(1e-9),
        serial_secs / jobs4_secs.max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, &body).expect("write BENCH_exec.json");
    print_artifact("campaign engine speedup (BENCH_exec.json)", &body);
}

fn bench(c: &mut Criterion) {
    // Wide campaign first: its RSS columns need a VmHWM untouched by
    // the registry experiments' own allocations.
    let wide = record_wide_campaign();
    record_speedup(&wide);

    let mut group = c.benchmark_group("exec");
    group.sample_size(20);
    let pool = Pool::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(2),
    );

    // Pure engine overhead: scheduling cost per trivial cell.
    group.bench_function("map_1k_trivial_cells", |b| {
        b.iter(|| pool.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });

    // Heterogeneous cells — the shape that motivates stealing: one cell
    // in sixteen costs ~50x the rest.
    group.bench_function("map_heterogeneous_cells", |b| {
        b.iter(|| {
            pool.map((0..64u64).collect(), |_, x| {
                let spins = if x % 16 == 0 { 50_000 } else { 1_000 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            })
        })
    });

    // Serial baseline for the same trivial cells: what jobs=1 costs.
    let serial = Pool::new(1);
    group.bench_function("map_1k_trivial_cells_serial", |b| {
        b.iter(|| serial.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
