//! The campaign engine's perf trajectory: times a registry campaign
//! serially and on a multi-lane pool, writes the comparison to
//! `BENCH_exec.json` at the repository root (so later changes can track
//! the speedup), and lets criterion time the pool's map kernels.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::campaign::{run, Plan, RunOptions};
use rbr::experiments::Registry;
use rbr::report::Format;
use rbr_bench::{bench_scale, print_artifact};
use rbr_exec::{with_pool, Pool};

/// Runs the campaign once on `pool`, returning (wall seconds, cells).
fn time_campaign(pool: &Pool, plan: &Plan<'_>) -> (f64, usize) {
    let started = Instant::now();
    let result = with_pool(pool, || run(plan, &RunOptions::default(), &|_| {}))
        .expect("unjournalled campaign cannot fail");
    assert!(result.complete);
    (started.elapsed().as_secs_f64(), result.outcomes.len())
}

/// Serial wall-clock of the smoke-scale `run all` campaign measured at
/// the PR-5 kernel (the allocation-heavy pre-refactor baseline every
/// later number is tracked against).
const PR5_BASELINE_SERIAL_SECS: f64 = 1.297;

/// Times the full-registry campaign serial and at 2/4 lanes, and records
/// the trajectory in `BENCH_exec.json`.
fn record_speedup() {
    let registry = Registry::standard();
    let scale = bench_scale();
    let plan = Plan {
        experiments: registry.iter().collect(),
        scale,
        seed: None,
        reps: None,
        format: Format::Json,
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (serial_secs, cells) = {
        // Best of three: the committed number should reflect the kernel,
        // not one cold run's scheduler noise.
        let pool = Pool::new(1);
        let mut best = (f64::INFINITY, 0);
        for _ in 0..3 {
            let (secs, n) = time_campaign(&pool, &plan);
            if secs < best.0 {
                best = (secs, n);
            }
        }
        best
    };
    let (jobs2_secs, _) = time_campaign(&Pool::new(2), &plan);
    let (jobs4_secs, _) = time_campaign(&Pool::new(4), &plan);

    // Quick-scale trajectory (ROADMAP item 1): one 4-lane pass over the
    // full registry at quick fidelity. ~100x the smoke cost, so it only
    // runs when CI (or a curious dev) opts in via RBR_BENCH_QUICK=1.
    let quick_jobs4_secs = if std::env::var("RBR_BENCH_QUICK").as_deref() == Ok("1") {
        let quick_plan = Plan {
            experiments: registry.iter().collect(),
            scale: rbr::Scale::Quick,
            seed: None,
            reps: None,
            format: Format::Json,
        };
        let (secs, _) = time_campaign(&Pool::new(4), &quick_plan);
        format!("{secs:.3}")
    } else {
        "null".to_string()
    };

    let body = format!(
        "{{\"campaign\":\"run all\",\"scale\":\"{}\",\"cells\":{cells},\
         \"host_cpus\":{host_cpus},\
         \"pr5_baseline_serial_secs\":{PR5_BASELINE_SERIAL_SECS:.3},\
         \"serial_secs\":{serial_secs:.3},\
         \"speedup_vs_pr5_serial\":{:.3},\
         \"jobs2_secs\":{jobs2_secs:.3},\"jobs4_secs\":{jobs4_secs:.3},\
         \"parallel_speedup_jobs2\":{:.3},\"parallel_speedup_jobs4\":{:.3},\
         \"quick_jobs4_secs\":{quick_jobs4_secs}}}\n",
        scale.name(),
        PR5_BASELINE_SERIAL_SECS / serial_secs.max(1e-9),
        serial_secs / jobs2_secs.max(1e-9),
        serial_secs / jobs4_secs.max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, &body).expect("write BENCH_exec.json");
    print_artifact("campaign engine speedup (BENCH_exec.json)", &body);
}

fn bench(c: &mut Criterion) {
    record_speedup();

    let mut group = c.benchmark_group("exec");
    group.sample_size(20);
    let pool = Pool::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(2),
    );

    // Pure engine overhead: scheduling cost per trivial cell.
    group.bench_function("map_1k_trivial_cells", |b| {
        b.iter(|| pool.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });

    // Heterogeneous cells — the shape that motivates stealing: one cell
    // in sixteen costs ~50x the rest.
    group.bench_function("map_heterogeneous_cells", |b| {
        b.iter(|| {
            pool.map((0..64u64).collect(), |_, x| {
                let spins = if x % 16 == 0 { 50_000 } else { 1_000 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            })
        })
    });

    // Serial baseline for the same trivial cells: what jobs=1 costs.
    let serial = Pool::new(1);
    group.bench_function("map_1k_trivial_cells_serial", |b| {
        b.iter(|| serial.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
