//! The campaign engine's perf trajectory: times a registry campaign
//! serially and on a multi-lane pool, writes the comparison to
//! `BENCH_exec.json` at the repository root (so later changes can track
//! the speedup), and lets criterion time the pool's map kernels.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::campaign::{run, Plan, RunOptions};
use rbr::experiments::Registry;
use rbr::report::Format;
use rbr_bench::{bench_scale, print_artifact};
use rbr_exec::{with_pool, Pool};

/// Runs the campaign once on `pool`, returning (wall seconds, cells).
fn time_campaign(pool: &Pool, plan: &Plan<'_>) -> (f64, usize) {
    let started = Instant::now();
    let result = with_pool(pool, || run(plan, &RunOptions::default(), &|_| {}))
        .expect("unjournalled campaign cannot fail");
    assert!(result.complete);
    (started.elapsed().as_secs_f64(), result.outcomes.len())
}

/// Times the full-registry campaign serial vs parallel and records the
/// comparison in `BENCH_exec.json`.
fn record_speedup() {
    let registry = Registry::standard();
    let scale = bench_scale();
    let plan = Plan {
        experiments: registry.iter().collect(),
        scale,
        seed: None,
        reps: None,
        format: Format::Json,
    };
    let jobs = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .max(2);
    let serial = Pool::new(1);
    let parallel = Pool::new(jobs);
    let (serial_secs, cells) = time_campaign(&serial, &plan);
    let (parallel_secs, _) = time_campaign(&parallel, &plan);

    let body = format!(
        "{{\"campaign\":\"run all\",\"scale\":\"{}\",\"cells\":{cells},\
         \"serial_secs\":{serial_secs:.3},\"parallel_jobs\":{jobs},\
         \"parallel_secs\":{parallel_secs:.3},\"speedup\":{:.3}}}\n",
        scale.name(),
        serial_secs / parallel_secs.max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_exec.json");
    std::fs::write(path, &body).expect("write BENCH_exec.json");
    print_artifact("campaign engine speedup (BENCH_exec.json)", &body);
}

fn bench(c: &mut Criterion) {
    record_speedup();

    let mut group = c.benchmark_group("exec");
    group.sample_size(20);
    let pool = Pool::new(
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .max(2),
    );

    // Pure engine overhead: scheduling cost per trivial cell.
    group.bench_function("map_1k_trivial_cells", |b| {
        b.iter(|| pool.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });

    // Heterogeneous cells — the shape that motivates stealing: one cell
    // in sixteen costs ~50x the rest.
    group.bench_function("map_heterogeneous_cells", |b| {
        b.iter(|| {
            pool.map((0..64u64).collect(), |_, x| {
                let spins = if x % 16 == 0 { 50_000 } else { 1_000 };
                let mut acc = x;
                for i in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                acc
            })
        })
    });

    // Serial baseline for the same trivial cells: what jobs=1 costs.
    let serial = Pool::new(1);
    group.bench_function("map_1k_trivial_cells_serial", |b| {
        b.iter(|| serial.map((0..1_000u64).collect(), |_, x| x.wrapping_mul(2)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
