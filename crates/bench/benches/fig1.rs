//! Regenerates Figure 1 (relative average stretch vs number of clusters)
//! and times the underlying grid-simulation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::fig1;
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::{bench_scale, print_artifact};

fn bench(c: &mut Criterion) {
    let rows = fig1::run(&fig1::Config::at_scale(bench_scale()));
    print_artifact(
        "Figure 1 — relative average stretch vs number of clusters",
        &fig1::render(&rows),
    );

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for scheme in [Scheme::None, Scheme::All] {
        let mut cfg = GridConfig::homogeneous(5, scheme);
        cfg.window = Duration::from_secs(1_800.0);
        group.bench_function(format!("grid_n5_{scheme}_30min"), |b| {
            b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
