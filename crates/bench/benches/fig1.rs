//! Regenerates Figure 1 (relative average stretch vs number of clusters)
//! and times the underlying grid-simulation kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("fig1");

    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    for scheme in [Scheme::None, Scheme::All] {
        let mut cfg = GridConfig::homogeneous(5, scheme);
        cfg.window = Duration::from_secs(1_800.0);
        group.bench_function(format!("grid_n5_{scheme}_30min"), |b| {
            b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
