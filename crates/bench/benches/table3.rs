//! Regenerates Table 3 (heterogeneous platforms) and times a
//! heterogeneous grid run.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{ClusterSpec, GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr::workload::LublinConfig;
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("table3");

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    let cfg = GridConfig {
        clusters: vec![
            ClusterSpec::new(16, LublinConfig::paper_2006().with_mean_interarrival(18.0)),
            ClusterSpec::new(64, LublinConfig::paper_2006().with_mean_interarrival(9.0)),
            ClusterSpec::new(128, LublinConfig::paper_2006().with_mean_interarrival(5.0)),
            ClusterSpec::new(256, LublinConfig::paper_2006().with_mean_interarrival(3.0)),
        ],
        window: Duration::from_secs(1_800.0),
        ..GridConfig::homogeneous(4, Scheme::All)
    };
    group.bench_function("heterogeneous_n4_all_30min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(8)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
