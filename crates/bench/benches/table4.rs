//! Regenerates Table 4 (queue-wait over-prediction under CBF) and times
//! a prediction-collecting CBF run.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sched::Algorithm;
use rbr::sim::{Duration, SeedSequence};
use rbr::workload::EstimateModel;
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("table4");

    let mut group = c.benchmark_group("table4");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(3, Scheme::All);
    cfg.algorithm = Algorithm::Cbf;
    cfg.estimates = EstimateModel::paper_real();
    cfg.collect_predictions = true;
    cfg.redundant_fraction = 0.4;
    cfg.window = Duration::from_secs(900.0);
    group.bench_function("cbf_predictions_n3_15min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(9)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
