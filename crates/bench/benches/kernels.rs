//! Microbenchmarks of the core kernels: event queue (calendar vs the
//! reference heap), availability profile, CBF schedule compression,
//! distribution sampling, and per-algorithm scheduler passes.
//!
//! Besides the criterion groups, this target writes `BENCH_kernel.json`
//! at the repository root: one self-timed number per hot kernel so the
//! perf trajectory is committed alongside the code (see TESTING.md for
//! how to regenerate).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::dist::{Gamma, HyperGamma, Sample};
use rbr::sched::{Algorithm, CbfScheduler, Profile, Request, RequestId, Scheduler};
use rbr::sim::{Duration, EventQueue, QueueKind, SeedSequence, SimTime};
use rbr_bench::print_artifact;

/// Steady-state event-queue churn at grid-realistic occupancy: a few
/// hundred pending events, monotone time advance, one push per 1–2 pops
/// — the regime the simulation drives the queue in. Returns a checksum
/// so the work cannot be optimized away.
fn queue_churn(kind: QueueKind, events: u64) -> u64 {
    let mut q = EventQueue::with_kind(kind);
    let mut x = 0x2545f4914f6cdd1du64;
    let mut now = 0u64;
    let mut acc = 0u64;
    // Pre-fill to typical occupancy.
    for i in 0..512u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        q.push(SimTime::from_micros(x % 3_000_000), i);
    }
    for i in 0..events {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        // Completion-style events land up to ~1h ahead; ~1/8 are
        // same-instant cascades (the race/cancel pattern).
        let gap = if x.is_multiple_of(8) {
            0
        } else {
            x % 3_600_000_000
        };
        q.push(SimTime::from_micros(now + gap), i);
        if let Some((t, v)) = q.pop() {
            now = t.as_micros();
            acc = acc.wrapping_add(v);
        }
    }
    while let Some((_, v)) = q.pop() {
        acc = acc.wrapping_add(v);
    }
    acc
}

/// A fragmented availability profile: staggered reservations leave holes
/// of varying widths, then `earliest_fit` probes it with mixed shapes.
fn earliest_fit_fragmented(queries: u64) -> u64 {
    let mut p = Profile::new(SimTime::ZERO, 128, 128);
    // 128 staggered reservations → a profile of ~250 steps with holes.
    for i in 0..128u64 {
        let start = SimTime::from_secs((i * 37 % 1_000) as f64 * 10.0);
        let dur = Duration::from_secs(300.0 + (i % 13) as f64 * 700.0);
        let nodes = 1 + (i % 48) as u32;
        p.reserve(p.earliest_fit(start, dur, nodes), dur, nodes);
    }
    let mut acc = 0u64;
    for i in 0..queries {
        let dur = Duration::from_secs(60.0 + (i % 29) as f64 * 240.0);
        let nodes = 1 + (i % 96) as u32;
        acc = acc.wrapping_add(p.earliest_fit(SimTime::ZERO, dur, nodes).as_micros());
    }
    acc
}

/// One CBF compression burst: a full-machine blocker with a deep queue
/// of reservations behind it completes early, forcing the scheduler to
/// rebuild the profile and re-reserve the whole queue.
fn cbf_compression_burst(queue_depth: u64) -> usize {
    let mut s = CbfScheduler::new(128);
    let mut starts = Vec::new();
    let t0 = SimTime::ZERO;
    s.submit(
        t0,
        Request::new(RequestId(0), 128, Duration::from_secs(100_000.0), t0),
        &mut starts,
    );
    for i in 1..=queue_depth {
        let req = Request::new(
            RequestId(i),
            1 + (i % 64) as u32,
            Duration::from_secs(60.0 + (i % 17) as f64 * 600.0),
            t0,
        );
        s.submit(t0, req, &mut starts);
    }
    starts.clear();
    // Early completion at t=1 compresses the entire queue.
    s.complete(SimTime::from_secs(1.0), RequestId(0), &mut starts);
    starts.len() + s.queue_len()
}

/// Times `f` as ns per inner item: best of `reps` runs of `per_run`
/// items each (minimum filters scheduler noise on a busy host).
fn time_ns_per<F: FnMut() -> u64>(reps: u32, per_run: u64, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        sink = sink.wrapping_add(f());
        let ns = t.elapsed().as_nanos() as f64 / per_run as f64;
        best = best.min(ns);
    }
    assert!(sink != 1, "defeat dead-code elimination");
    best
}

/// Self-timed numbers for the three hot kernels, written to
/// `BENCH_kernel.json` at the repository root.
fn record_kernels() {
    const EVENTS: u64 = 200_000;
    let heap = time_ns_per(5, EVENTS, || queue_churn(QueueKind::Heap, EVENTS));
    let calendar = time_ns_per(5, EVENTS, || queue_churn(QueueKind::Calendar, EVENTS));

    const QUERIES: u64 = 20_000;
    let fit = time_ns_per(5, QUERIES, || earliest_fit_fragmented(QUERIES));

    const DEPTH: u64 = 400;
    let compress = time_ns_per(5, DEPTH, || cbf_compression_burst(DEPTH) as u64);

    let body = format!(
        "{{\"event_queue_pop_push_ns\":{{\"heap\":{heap:.1},\"calendar\":{calendar:.1},\
         \"calendar_vs_heap\":{:.3}}},\
         \"earliest_fit_fragmented_ns\":{fit:.1},\
         \"cbf_compression_ns_per_queued\":{compress:.1}}}\n",
        heap / calendar.max(1e-9),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json");
    std::fs::write(path, &body).expect("write BENCH_kernel.json");
    print_artifact("hot-kernel timings (BENCH_kernel.json)", &body);
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/event_queue");
    for kind in [QueueKind::Calendar, QueueKind::Heap] {
        group.bench_function(format!("{kind:?}_churn_10k"), |b| {
            b.iter(|| queue_churn(kind, 10_000))
        });
    }
    group.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1_024);
            for i in 0..1_000u64 {
                // Reversed times exercise real movement in either impl.
                q.push(SimTime::from_micros(1_000 - i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.finish();
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/profile");
    group.bench_function("reserve_and_fit_256", |b| {
        b.iter(|| {
            let mut p = Profile::new(SimTime::ZERO, 128, 128);
            let mut acc = 0u64;
            for i in 0..256u64 {
                let dur = Duration::from_secs(60.0 + (i % 7) as f64 * 600.0);
                let nodes = 1 + (i % 64) as u32;
                let start = p.earliest_fit(SimTime::ZERO, dur, nodes);
                p.reserve(start, dur, nodes);
                acc = acc.wrapping_add(start.as_micros());
            }
            acc
        })
    });
    group.bench_function("earliest_fit_fragmented_1k", |b| {
        b.iter(|| earliest_fit_fragmented(1_000))
    });
    group.finish();
}

fn bench_cbf_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/cbf");
    group.sample_size(20);
    group.bench_function("compression_burst_q400", |b| {
        b.iter(|| cbf_compression_burst(400))
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dist");
    let gamma = Gamma::new(10.23, 0.49);
    let hyper = HyperGamma::new(100.0, 0.04, 100.0, 0.055, 0.7);
    let mut rng = SeedSequence::new(13).rng();
    group.bench_function("gamma_sample", |b| b.iter(|| gamma.sample(&mut rng)));
    group.bench_function("hyper_gamma_sample", |b| b.iter(|| hyper.sample(&mut rng)));
    group.finish();
}

fn bench_scheduler_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/scheduler");
    group.sample_size(20);
    for alg in Algorithm::all() {
        group.bench_function(format!("{alg}_submit_complete_churn"), |b| {
            b.iter(|| {
                let mut sched = alg.build_with_cycle(64, Duration::from_secs(30.0));
                let mut starts = Vec::new();
                let mut now = SimTime::ZERO;
                // 200 jobs of mixed widths through a busy machine.
                for i in 0..200u64 {
                    now += Duration::from_secs(3.0);
                    let req = Request::new(
                        RequestId(i),
                        1 + (i % 48) as u32,
                        Duration::from_secs(60.0 + (i % 11) as f64 * 120.0),
                        now,
                    );
                    sched.submit(now, req, &mut starts);
                    // Retire whatever started to keep the machine moving
                    // (run each started job for half its request).
                    let started: Vec<RequestId> = std::mem::take(&mut starts);
                    for id in started {
                        now += Duration::from_secs(1.0);
                        sched.complete(now, id, &mut starts);
                    }
                    starts.clear();
                }
                sched.queue_len()
            })
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    record_kernels();
    bench_event_queue(c);
    bench_profile(c);
    bench_cbf_compression(c);
    bench_distributions(c);
    bench_scheduler_pass(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
