//! Microbenchmarks of the core kernels: event queue, availability
//! profile, distribution sampling, and per-algorithm scheduler passes.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::dist::{Gamma, HyperGamma, Sample};
use rbr::sched::{Algorithm, Profile, Request, RequestId};
use rbr::sim::{Duration, EventQueue, SeedSequence, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/event_queue");
    group.bench_function("push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::with_capacity(1_024);
            for i in 0..1_000u64 {
                // Reversed times exercise real heap movement.
                q.push(SimTime::from_micros(1_000 - i), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.finish();
}

fn bench_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/profile");
    group.bench_function("reserve_and_fit_256", |b| {
        b.iter(|| {
            let mut p = Profile::new(SimTime::ZERO, 128, 128);
            let mut acc = 0u64;
            for i in 0..256u64 {
                let dur = Duration::from_secs(60.0 + (i % 7) as f64 * 600.0);
                let nodes = 1 + (i % 64) as u32;
                let start = p.earliest_fit(SimTime::ZERO, dur, nodes);
                p.reserve(start, dur, nodes);
                acc = acc.wrapping_add(start.as_micros());
            }
            acc
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/dist");
    let gamma = Gamma::new(10.23, 0.49);
    let hyper = HyperGamma::new(100.0, 0.04, 100.0, 0.055, 0.7);
    let mut rng = SeedSequence::new(13).rng();
    group.bench_function("gamma_sample", |b| b.iter(|| gamma.sample(&mut rng)));
    group.bench_function("hyper_gamma_sample", |b| b.iter(|| hyper.sample(&mut rng)));
    group.finish();
}

fn bench_scheduler_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/scheduler");
    group.sample_size(20);
    for alg in Algorithm::all() {
        group.bench_function(format!("{alg}_submit_complete_churn"), |b| {
            b.iter(|| {
                let mut sched = alg.build_with_cycle(64, Duration::from_secs(30.0));
                let mut starts = Vec::new();
                let mut now = SimTime::ZERO;
                // 200 jobs of mixed widths through a busy machine.
                for i in 0..200u64 {
                    now += Duration::from_secs(3.0);
                    let req = Request::new(
                        RequestId(i),
                        1 + (i % 48) as u32,
                        Duration::from_secs(60.0 + (i % 11) as f64 * 120.0),
                        now,
                    );
                    sched.submit(now, req, &mut starts);
                    // Retire whatever started to keep the machine moving
                    // (run each started job for half its request).
                    let started: Vec<RequestId> = std::mem::take(&mut starts);
                    for id in started {
                        now += Duration::from_secs(1.0);
                        sched.complete(now, id, &mut starts);
                    }
                    starts.clear();
                }
                sched.queue_len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_profile,
    bench_distributions,
    bench_scheduler_pass
);
criterion_main!(benches);
