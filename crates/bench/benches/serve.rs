//! The metascheduler service's sustained throughput: stands the
//! virtual-clock service up on an ephemeral port, replays the Lublin
//! arrival stream against it at increasing rate multiples with
//! `rbr-serve`'s own load generator, and records wall-clock frames/sec
//! to `BENCH_serve.json` at the repository root. Criterion then times
//! the wire codec on its own, the per-frame floor of every number
//! above.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rbr_bench::print_artifact;
use rbr_serve::wire::{encode_frame, FrameReader, Request};
use rbr_serve::{AdmissionConfig, ClockMode, LoadgenConfig, ServerConfig};

/// The rate multiples the committed artifact sweeps: calibrated load,
/// then 4x and 16x — the span where admission shifts from mostly
/// redundant verdicts to shedding.
const RATES: [f64; 3] = [1.0, 4.0, 16.0];

/// One serve + loadgen round trip at `rate`. Returns (wall secs,
/// frames), where frames counts every length-prefixed message crossing
/// the socket: submits and the drain in, acks and the drain report out.
fn time_replay(jobs: usize, rate: f64) -> (f64, u64) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let config = ServerConfig {
        batch: rbr::grid::BatchSpec::of(8, rbr::sim::Duration::from_secs(30.0)),
        admission: AdmissionConfig {
            batch: 8,
            ..AdmissionConfig::default()
        },
        clock: ClockMode::Virtual,
    };
    let server = std::thread::spawn(move || rbr_serve::serve(listener, &config));

    let started = Instant::now();
    let stats = rbr_serve::loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        jobs,
        rate,
        seed: 2006,
    })
    .expect("clean replay");
    let secs = started.elapsed().as_secs_f64();
    server
        .join()
        .expect("server thread")
        .expect("clean server drain");
    assert_eq!(stats.submits, jobs as u64);
    // submits + drain inbound, acks + drain report outbound.
    let frames = stats.submits + 1 + stats.acks + 1;
    (secs, frames)
}

/// Sweeps [`RATES`] and writes the frames/sec trajectory (with a
/// `host_cpus` honesty field — the service is single-threaded, but the
/// loadgen's reader thread and the kernel's loopback work share the
/// host) to `BENCH_serve.json`.
fn record_service_throughput() {
    let quick = std::env::var("RBR_BENCH_QUICK").as_deref() == Ok("1");
    let jobs: usize = if quick { 20_000 } else { 2_000 };
    let host_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    let mut columns = String::new();
    for rate in RATES {
        // Best of three: the committed number should reflect the
        // service, not one run's scheduler noise.
        let mut best_secs = f64::INFINITY;
        let mut best_frames = 0u64;
        for _ in 0..3 {
            let (secs, frames) = time_replay(jobs, rate);
            if secs < best_secs {
                (best_secs, best_frames) = (secs, frames);
            }
        }
        let label = if rate == rate.trunc() {
            format!("{}", rate as u64)
        } else {
            format!("{rate}")
        };
        columns.push_str(&format!(
            "\"rate{label}_secs\":{best_secs:.3},\
             \"rate{label}_frames\":{best_frames},\
             \"rate{label}_frames_per_sec\":{:.0},",
            best_frames as f64 / best_secs.max(1e-9)
        ));
    }

    let body = format!(
        "{{\"service\":\"serve + loadgen\",\"jobs\":{jobs},\
         \"host_cpus\":{host_cpus},{columns}\
         \"clock\":\"virtual\",\"batch\":8}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, &body).expect("write BENCH_serve.json");
    print_artifact("service throughput (BENCH_serve.json)", &body);
}

fn bench(c: &mut Criterion) {
    record_service_throughput();

    let mut group = c.benchmark_group("serve");
    group.sample_size(20);

    // The wire codec floor: encode one submit and read it back.
    group.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let frame = encode_frame(
                &Request::Submit {
                    id: 42,
                    arrival_secs: 1234.5,
                    nodes: 16,
                    runtime_secs: 3600.0,
                }
                .to_json(),
            );
            let mut reader = FrameReader::new();
            reader.extend(&frame);
            let payload = reader
                .next_frame()
                .expect("well-formed frame")
                .expect("complete frame");
            Request::from_json(&payload).expect("well-formed request")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
