//! Regenerates the beyond-the-paper extension studies (statistical
//! forecasting, moldable shape redundancy, dual-queue racing) and times
//! their kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::forecast::QuantilePredictor;
use rbr::sim::SeedSequence;
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("forecast");
    regenerate("moldable");
    regenerate("dual-queue");

    let mut group = c.benchmark_group("extensions");
    // Kernel: one binomial quantile-bound prediction over a full window.
    let mut predictor = QuantilePredictor::qbets_default();
    let mut rng_state = 0x9E3779B97F4A7C15u64;
    for _ in 0..512 {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        predictor.observe((rng_state >> 40) as f64);
    }
    group.bench_function("binomial_bound_512_obs", |b| b.iter(|| predictor.predict()));

    // Kernel: one 20-minute moldable run.
    group.sample_size(10);
    let mut cfg =
        rbr::grid::moldable::MoldableConfig::new(rbr::grid::moldable::ShapePolicy::AllShapes);
    cfg.window = rbr::sim::Duration::from_secs(1_200.0);
    group.bench_function("moldable_all_shapes_20min", |b| {
        b.iter(|| rbr::grid::moldable::run(&cfg, SeedSequence::new(14)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
