//! Regenerates the §4.1 queue-size comparison (ALL vs NONE maximum queue
//! lengths) and times queue-length tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("queue-growth");

    let mut group = c.benchmark_group("queue_growth");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(4, Scheme::All);
    cfg.window = Duration::from_secs(1_800.0);
    group.bench_function("grid_n4_all_30min_queue_tracking", |b| {
        b.iter(|| {
            let run = GridSim::execute(cfg.clone(), SeedSequence::new(10));
            run.max_queue_len.iter().sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
