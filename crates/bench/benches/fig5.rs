//! Regenerates Figure 5 (batch-scheduler submit/cancel throughput vs
//! queue size) — both the calibrated OpenPBS/Maui churn simulation and a
//! native measurement of this crate's own schedulers — and times the
//! submit+cancel pair operation criterion-style.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::experiments::fig5;
use rbr::report::Table;
use rbr::sched::{Algorithm, Request, RequestId};
use rbr::sim::{Duration, SimTime};
use rbr_bench::{print_artifact, regenerate};

fn native_sweep() -> String {
    let sizes = [0usize, 1_000, 5_000, 10_000, 20_000];
    let mut t = Table::new(vec![
        "queue size",
        "EASY pairs/s",
        "CBF pairs/s",
        "FCFS pairs/s",
    ]);
    for &q in &sizes {
        let mut row = vec![q.to_string()];
        for alg in [Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs] {
            let pairs = if q >= 10_000 { 300 } else { 1_000 };
            row.push(format!("{:.0}", fig5::native_throughput(alg, q, pairs, 5)));
        }
        t.push(row);
    }
    t.render()
}

fn bench(c: &mut Criterion) {
    regenerate("fig5");
    print_artifact(
        "Figure 5 (native) — this crate's schedulers, wall-clock submit/cancel pairs per second",
        &native_sweep(),
    );

    // Criterion kernel: one submit+cancel pair on a pre-seeded EASY
    // scheduler at two queue depths.
    let mut group = c.benchmark_group("fig5");
    group.sample_size(30);
    for q in [100usize, 5_000] {
        let nodes = 16u32;
        let mut sched = Algorithm::Easy.build(nodes);
        let mut starts = Vec::new();
        let mut now = SimTime::ZERO;
        let tick = Duration::from_micros(1);
        // Blocker on all but one node, then the standing queue.
        sched.submit(
            SimTime::ZERO,
            Request::new(
                RequestId(u64::MAX),
                nodes - 1,
                Duration::from_hours(10_000),
                now,
            ),
            &mut starts,
        );
        starts.clear();
        let mut next = 0u64;
        for _ in 0..q {
            now += tick;
            sched.submit(
                now,
                Request::new(RequestId(next), 2, Duration::from_secs(3_600.0), now),
                &mut starts,
            );
            next += 1;
        }
        let mut oldest = 0u64;
        group.bench_function(format!("easy_pair_q{q}"), |b| {
            b.iter(|| {
                now += tick;
                sched.submit(
                    now,
                    Request::new(RequestId(next), 2, Duration::from_secs(3_600.0), now),
                    &mut starts,
                );
                next += 1;
                now += tick;
                sched.cancel(now, RequestId(oldest), &mut starts);
                oldest += 1;
                starts.clear();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
