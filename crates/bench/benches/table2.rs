//! Regenerates Table 2 (geometrically biased target selection) and times
//! the weighted selection kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::SelectionPolicy;
use rbr::sim::SeedSequence;
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("table2");

    let mut group = c.benchmark_group("table2");
    let eligible: Vec<usize> = (0..19).collect();
    let queue_lens = vec![0usize; 20];
    for (name, policy) in [
        ("uniform", SelectionPolicy::Uniform),
        ("biased", SelectionPolicy::Biased { ratio: 2.0 }),
        ("least_loaded", SelectionPolicy::LeastLoaded),
    ] {
        let mut rng = SeedSequence::new(7).rng();
        group.bench_function(format!("choose_10_of_19_{name}"), |b| {
            b.iter(|| policy.choose(&mut rng, &eligible, 10, &queue_lens))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
