//! Regenerates the conclusion's 20-cluster, 80 %-redundant scenario and
//! times a large-N run.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("conclusion");

    let mut group = c.benchmark_group("conclusion");
    group.sample_size(10);
    let mut cfg = GridConfig::homogeneous(20, Scheme::All);
    cfg.redundant_fraction = 0.8;
    cfg.window = Duration::from_secs(900.0);
    group.bench_function("grid_n20_all_p80_15min", |b| {
        b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(11)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
