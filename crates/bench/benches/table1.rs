//! Regenerates Table 1 (EASY / CBF / FCFS × exact / real estimates) and
//! times one run of each scheduling algorithm.

use criterion::{criterion_group, criterion_main, Criterion};
use rbr::grid::{GridConfig, GridSim, Scheme};
use rbr::sched::Algorithm;
use rbr::sim::{Duration, SeedSequence};
use rbr_bench::regenerate;

fn bench(c: &mut Criterion) {
    regenerate("table1");

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for alg in Algorithm::all() {
        let mut cfg = GridConfig::homogeneous(4, Scheme::Half);
        cfg.algorithm = alg;
        cfg.window = Duration::from_secs(900.0);
        group.bench_function(format!("grid_n4_half_{alg}_15min"), |b| {
            b.iter(|| GridSim::execute(cfg.clone(), SeedSequence::new(6)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
