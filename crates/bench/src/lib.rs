//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates its figure/table once (printing the
//! rows the paper reports — scale controlled by `RBR_SCALE`) and then
//! lets criterion time a representative simulation kernel, so `cargo
//! bench` doubles as the reproduction harness.

use rbr::experiments::Registry;
use rbr::report::Format;
use rbr::Scale;

/// The scale benches regenerate tables at (`RBR_SCALE`; default smoke so
/// `cargo bench --workspace` stays fast on one core).
pub fn bench_scale() -> Scale {
    Scale::from_env(Scale::Smoke)
}

/// Prints a regenerated artifact with a banner.
pub fn print_artifact(name: &str, body: &str) {
    println!("\n================ {name} ================");
    println!("{body}");
}

/// Regenerates a registered experiment at [`bench_scale`] with its
/// default seed and prints the full report (tables plus provenance
/// footer).
///
/// # Panics
/// Panics on unknown names, so a renamed experiment breaks its bench
/// target loudly instead of silently skipping the artifact.
pub fn regenerate(name: &str) {
    let registry = Registry::standard();
    let exp = registry
        .get(name)
        .unwrap_or_else(|| panic!("no experiment {name:?} in the registry"));
    let report = exp.run(bench_scale(), exp.default_seed());
    print_artifact(exp.description(), &report.render(Format::Text));
}
