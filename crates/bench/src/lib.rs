//! Shared helpers for the benchmark harness.
//!
//! Every bench target regenerates its figure/table once (printing the
//! rows the paper reports — scale controlled by `RBR_SCALE`) and then
//! lets criterion time a representative simulation kernel, so `cargo
//! bench` doubles as the reproduction harness.

use rbr::Scale;

/// The scale benches regenerate tables at (`RBR_SCALE`; default smoke so
/// `cargo bench --workspace` stays fast on one core).
pub fn bench_scale() -> Scale {
    Scale::from_env(Scale::Smoke)
}

/// Prints a regenerated artifact with a banner.
pub fn print_artifact(name: &str, body: &str) {
    println!("\n================ {name} ================");
    println!("{body}");
}
