//! Property tests for the tandem-queue submission pipeline: latency is
//! bounded below by the raw service path, sustainability flips exactly
//! where the analytic bottleneck arithmetic says it should, and the
//! offered-load formula holds everywhere.

use proptest::prelude::*;
use rbr_middleware::pipeline::{self, PipelineConfig};
use rbr_simcore::SeedSequence;

/// The raw (queue-free) end-to-end service time of one operation: SOAP,
/// then GRAM, then half a scheduler submit/cancel pair — mirrors the
/// pipeline's own stage derivation from the stack.
fn path_secs(cfg: &PipelineConfig) -> f64 {
    let soap = 1.0 / cfg.stack.soap.rate_for_payload(cfg.stack.payload);
    let gram = 1.0 / cfg.stack.middleware.transactions_per_sec();
    let sched = 0.5 / cfg.stack.scheduler.throughput(cfg.stack.queue_size);
    soap + gram + sched
}

/// The slowest single stage, which caps the pipeline's drain rate.
fn slowest_stage_secs(cfg: &PipelineConfig) -> f64 {
    let soap = 1.0 / cfg.stack.soap.rate_for_payload(cfg.stack.payload);
    let gram = 1.0 / cfg.stack.middleware.transactions_per_sec();
    let sched = 0.5 / cfg.stack.scheduler.throughput(cfg.stack.queue_size);
    soap.max(gram).max(sched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `(2r − 1)/iat`: r submissions plus r − 1 cancellations per job.
    #[test]
    fn offered_load_matches_the_formula(r in 1.0f64..32.0) {
        let cfg = PipelineConfig::paper_2006(r);
        let want = (2.0 * r - 1.0) / cfg.iat;
        prop_assert!((cfg.offered_ops_per_sec() - want).abs() < 1e-12);
    }

    /// No operation can traverse three sequential servers faster than
    /// the sum of their service times, so even the *minimum* observed
    /// latency respects the raw path — and the mean respects the
    /// slowest stage alone.
    #[test]
    fn latency_is_bounded_below_by_the_service_path(r in 1.0f64..2.5, seed in 0u64..1_000) {
        let cfg = PipelineConfig::paper_2006(r);
        let result = pipeline::run(&cfg, SeedSequence::new(seed));
        prop_assert!(result.completed > 0);
        let floor = path_secs(&cfg);
        prop_assert!(
            result.latency.min() >= floor - 1e-9,
            "min latency {} under the raw path {floor}",
            result.latency.min()
        );
        prop_assert!(result.latency.mean() >= slowest_stage_secs(&cfg) - 1e-9);
    }

    /// Below the bottleneck rate the stack keeps up, regardless of seed:
    /// GT4 WS-GRAM sustains 0.95 tx/s and a job costs 2r − 1
    /// transactions every 5 s, so r ≤ 2 offers at most 0.6 ops/s.
    #[test]
    fn under_the_analytic_bound_the_stack_is_sustainable(r in 1.0f64..2.0, seed in 0u64..1_000) {
        let result = pipeline::run(&PipelineConfig::paper_2006(r), SeedSequence::new(seed));
        prop_assert!(result.sustainable, "r={r} backlog {}", result.backlog);
    }

    /// Above it the backlog grows without bound: r ≥ 3.5 offers at least
    /// 1.2 ops/s against a 0.95 tx/s middleware.
    #[test]
    fn over_the_analytic_bound_the_stack_saturates(r in 3.5f64..8.0, seed in 0u64..1_000) {
        let result = pipeline::run(&PipelineConfig::paper_2006(r), SeedSequence::new(seed));
        prop_assert!(!result.sustainable, "r={r} backlog {}", result.backlog);
    }
}

/// Same seed → identical pipeline outcome: the simulation draws all its
/// randomness from the seeded generator.
#[test]
fn pipeline_runs_are_deterministic() {
    let cfg = PipelineConfig::paper_2006(2.0);
    let a = pipeline::run(&cfg, SeedSequence::new(77));
    let b = pipeline::run(&cfg, SeedSequence::new(77));
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.backlog, b.backlog);
    assert_eq!(a.latency.mean().to_bits(), b.latency.mean().to_bits());
}
