//! Property tests for the Section 4 capacity models: the steady-state
//! arithmetic, the component throughput curves, and the end-to-end
//! bottleneck analysis must satisfy their defining identities across the
//! whole parameter space, not just at the paper's calibration points.

use proptest::prelude::*;
use rbr_middleware::{
    max_redundancy, steady_state_load, Bottleneck, GramModel, GsoapModel, NetworkModel,
    PbsThroughputModel, SystemCapacity,
};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    /// The paper's formulas verbatim: `r/iat` submissions, `(r − 1)/iat`
    /// cancellations, so ops = `(2r − 1)/iat` and the gap between the
    /// streams is exactly one job per interarrival.
    #[test]
    fn steady_state_load_matches_the_paper_formula(r in 1.0f64..64.0, iat in 0.1f64..60.0) {
        let load = steady_state_load(r, iat);
        prop_assert!(close(load.submissions_per_sec, r / iat));
        prop_assert!(close(load.cancellations_per_sec, (r - 1.0) / iat));
        prop_assert!(close(load.ops_per_sec(), (2.0 * r - 1.0) / iat));
        // Every submission is eventually either useful or cancelled, but
        // there is always exactly one more submission stream than
        // cancellation stream: the winning request is never cancelled.
        prop_assert!(load.submissions_per_sec >= load.cancellations_per_sec);
        prop_assert!(close(load.submissions_per_sec - load.cancellations_per_sec, 1.0 / iat));
    }

    /// Load grows monotonically with redundancy at fixed interarrival.
    #[test]
    fn steady_state_load_is_monotone_in_r(r in 1.0f64..32.0, dr in 0.01f64..32.0, iat in 0.1f64..60.0) {
        let lo = steady_state_load(r, iat);
        let hi = steady_state_load(r + dr, iat);
        prop_assert!(hi.submissions_per_sec > lo.submissions_per_sec);
        prop_assert!(hi.cancellations_per_sec > lo.cancellations_per_sec);
    }

    /// `max_redundancy` is the exact inverse of the load formula: running
    /// at the returned level saturates the component's rate precisely.
    #[test]
    fn max_redundancy_saturates_the_component(iat in 0.1f64..60.0, rate in 0.01f64..100.0) {
        let r = max_redundancy(iat, rate);
        if r >= 1.0 {
            let load = steady_state_load(r, iat);
            prop_assert!(close(load.submissions_per_sec, rate));
        }
    }

    /// The Figure 5 curve decays monotonically with queue size and stays
    /// within the (floor, floor + range] band.
    #[test]
    fn pbs_throughput_is_monotone_and_bounded(q in 0usize..50_000, dq in 1usize..50_000) {
        let m = PbsThroughputModel::openpbs_maui_2006();
        let near = m.throughput(q);
        let far = m.throughput(q + dq);
        prop_assert!(far < near, "throughput must strictly decay: {far} !< {near}");
        for t in [near, far] {
            prop_assert!(t > m.floor && t <= m.floor + m.range);
        }
    }

    /// Service time is the reciprocal of throughput, up to the
    /// microsecond quantization of [`rbr_simcore::Duration`].
    #[test]
    fn pbs_service_time_inverts_throughput(q in 0usize..50_000) {
        let m = PbsThroughputModel::openpbs_maui_2006();
        let product = m.service_time(q).as_secs() * m.throughput(q);
        prop_assert!((product - 1.0).abs() < 2e-5, "product {product}");
    }

    /// gSOAP marshalling rate never increases with payload size, never
    /// exceeds the 10× small-message cap, and a layer always sustains
    /// its own rated throughput.
    #[test]
    fn gsoap_rate_is_monotone_capped_and_self_consistent(
        payload in 1u64..10_000_000,
        extra in 1u64..10_000_000,
    ) {
        let m = GsoapModel::sc05_benchmark();
        let near = m.rate_for_payload(payload);
        let far = m.rate_for_payload(payload + extra);
        prop_assert!(far <= near);
        prop_assert!(near <= m.benchmark_rate * 10.0);
        prop_assert!(m.sustains(near, payload));
        prop_assert!(!m.sustains(near * 1.01, payload) || close(near, m.benchmark_rate * 10.0));
    }

    /// The GRAM split: submissions get exactly half the transaction
    /// budget (each job costs a submission and a cancellation).
    #[test]
    fn gram_submissions_are_half_the_transactions(tpm in 0.1f64..10_000.0) {
        let m = GramModel::with_rate(tpm);
        prop_assert!(close(m.transactions_per_sec(), tpm / 60.0));
        prop_assert!(close(m.submissions_per_sec() * 2.0, m.transactions_per_sec()));
    }

    /// The network link is bandwidth-bound: message rate × message bits
    /// equals the link rate, and `sustains` agrees with that rate.
    #[test]
    fn network_rate_is_bandwidth_bound(payload in 1u64..10_000_000, ops in 0.01f64..1_000.0) {
        let net = NetworkModel::fast_ethernet();
        let rate = net.messages_per_sec(payload);
        prop_assert!(close(rate * payload as f64 * 8.0, net.bandwidth_bps));
        prop_assert_eq!(net.sustains(ops, payload), rate >= ops);
        // Transfer time is never below the propagation latency.
        prop_assert!(net.transfer_time(payload).as_secs() >= net.latency_s);
    }

    /// The bottleneck is the component with the smallest per-component
    /// sustainable redundancy, and the system-wide bound equals that
    /// minimum.
    #[test]
    fn bottleneck_is_the_componentwise_minimum(iat in 0.1f64..60.0) {
        let sys = SystemCapacity::paper_2006();
        let per = sys.max_redundancy_per_component(iat);
        let min = per
            .iter()
            .map(|&(_, r)| r)
            .fold(f64::INFINITY, f64::min);
        prop_assert!(close(sys.max_redundancy(iat), min));
        let (bottleneck, _) = sys.bottleneck();
        let (worst, _) = per
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("four components");
        prop_assert_eq!(bottleneck, worst);
    }

    /// Sustainable redundancy scales linearly with interarrival time:
    /// doubling the gap between jobs doubles the budget for copies.
    #[test]
    fn max_redundancy_scales_linearly_with_iat(iat in 0.1f64..30.0, k in 1.0f64..10.0) {
        let sys = SystemCapacity::paper_2006();
        prop_assert!(close(sys.max_redundancy(iat * k), sys.max_redundancy(iat) * k));
    }
}

/// The 2006 calibration points, cross-module: GT4 WS-GRAM at 57
/// transactions/minute is the bottleneck of the full stack, far below
/// the scheduler, and the paper's two headline bounds come out.
#[test]
fn the_2006_stack_reproduces_the_headline_bounds() {
    let sys = SystemCapacity::paper_2006();
    assert_eq!(sys.middleware, GramModel::gt4_ws_gram());
    assert!((sys.middleware.transactions_per_minute - 57.0).abs() < 1e-12);
    let (component, rate) = sys.bottleneck();
    assert_eq!(component, Bottleneck::Middleware);
    assert!(rate < 0.5);
    // r < 3 via the middleware, r < 30 if only the scheduler mattered.
    assert!(sys.max_redundancy(5.0) < 3.0);
    let scheduler_r = max_redundancy(5.0, sys.scheduler.throughput(sys.queue_size));
    assert!((29.0..31.0).contains(&scheduler_r));
}
