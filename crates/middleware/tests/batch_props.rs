//! Property tests for the batched-transaction capacity math: the
//! amortization model must be an exact identity at `batch = 1`, help
//! monotonically as transactions grow, and never change what
//! "bottleneck" means.

use proptest::prelude::*;
use rbr_middleware::{BatchedTransaction, SystemCapacity};

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    /// `batch = 1` is the per-op model, bit for bit: same system bound,
    /// same per-component bounds, same bottleneck, at any interarrival
    /// and any op fraction.
    #[test]
    fn unit_batch_is_exactly_the_unbatched_model(
        iat in 0.1f64..120.0,
        f in 0.01f64..1.0,
    ) {
        let sys = SystemCapacity::paper_2006();
        let txn = BatchedTransaction::with_op_fraction(1, f);
        prop_assert_eq!(txn.amortization(), 1.0);
        prop_assert_eq!(txn.expected_fill_latency(1.0 / iat), 0.0);
        prop_assert_eq!(sys.max_redundancy_batched(iat, txn), sys.max_redundancy(iat));
        prop_assert_eq!(sys.bottleneck_batched(txn), sys.bottleneck());
        let per = sys.max_redundancy_per_component(iat);
        let per_batched = sys.max_redundancy_per_component_batched(iat, txn);
        prop_assert_eq!(per, per_batched);
    }

    /// Sustainable redundancy never decreases when the batch grows, for
    /// any op fraction: amortization is monotone in `B`, and the
    /// unamortized components are unchanged, so the min can only move
    /// up.
    #[test]
    fn redundancy_is_monotone_in_batch_size(
        iat in 0.1f64..120.0,
        b in 1u32..512,
        extra in 1u32..512,
        f in 0.01f64..1.0,
    ) {
        let sys = SystemCapacity::paper_2006();
        let small = BatchedTransaction::with_op_fraction(b, f);
        let large = BatchedTransaction::with_op_fraction(b + extra, f);
        prop_assert!(large.amortization() >= small.amortization());
        prop_assert!(
            sys.max_redundancy_batched(iat, large) >= sys.max_redundancy_batched(iat, small),
            "batch {} admits less than batch {}", b + extra, b
        );
    }

    /// Amortization lives in `[1, 1/f]`: a transaction can never cost
    /// less than its per-op work.
    #[test]
    fn amortization_is_bounded_by_the_op_fraction(b in 1u32..100_000, f in 0.01f64..1.0) {
        let a = BatchedTransaction::with_op_fraction(b, f).amortization();
        prop_assert!(a >= 1.0);
        prop_assert!(a <= 1.0 / f + 1e-9, "amortization {a} exceeds 1/f = {}", 1.0 / f);
    }

    /// The batched bottleneck is still the componentwise minimum, and
    /// the system bound equals it.
    #[test]
    fn batched_bottleneck_is_the_componentwise_minimum(
        iat in 0.1f64..120.0,
        b in 1u32..512,
        f in 0.01f64..1.0,
    ) {
        let sys = SystemCapacity::paper_2006();
        let txn = BatchedTransaction::with_op_fraction(b, f);
        let per = sys.max_redundancy_per_component_batched(iat, txn);
        let min = per.iter().map(|&(_, r)| r).fold(f64::INFINITY, f64::min);
        prop_assert!(close(sys.max_redundancy_batched(iat, txn), min));
        let (bottleneck, _) = sys.bottleneck_batched(txn);
        let (worst, _) = per
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("four components");
        prop_assert_eq!(bottleneck, worst);
    }

    /// Batch-fill latency grows with the batch and shrinks with the op
    /// rate — waiting for companions is the price of amortization.
    #[test]
    fn fill_latency_tracks_batch_and_rate(
        b in 2u32..10_000,
        ops in 0.01f64..100.0,
    ) {
        let txn = BatchedTransaction::of(b);
        let lat = txn.expected_fill_latency(ops);
        prop_assert!(lat > 0.0);
        prop_assert!(close(lat, f64::from(b - 1) / (2.0 * ops)));
        prop_assert!(BatchedTransaction::of(b + 1).expected_fill_latency(ops) > lat);
        prop_assert!(txn.expected_fill_latency(ops * 2.0) < lat);
    }
}
