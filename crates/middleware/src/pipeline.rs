//! End-to-end submission-path simulation.
//!
//! Section 4 reasons about each component in isolation; this module puts
//! the 2006 stack together as a tandem queueing network — every request
//! operation passes through the SOAP layer, then the WS-GRAM service,
//! then the batch scheduler front-end, each a single server with a
//! deterministic service time drawn from the calibrated models — and
//! measures end-to-end latency and loss of sustainability as the
//! redundancy level `r` rises.

use rbr_simcore::{Duration, Engine, SeedSequence, SimTime};
use rbr_stats::Summary;

use crate::capacity::SystemCapacity;

/// The three stages of the submission path, in order.
const STAGES: usize = 3;

/// Configuration of the pipeline experiment.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// The component stack (service rates are derived from it).
    pub stack: SystemCapacity,
    /// Mean job interarrival time per cluster in seconds.
    pub iat: f64,
    /// Redundancy level: each job contributes `r` submissions and
    /// `r − 1` cancellations of middleware traffic.
    pub r: f64,
    /// Length of the measured period.
    pub duration: Duration,
}

impl PipelineConfig {
    /// The paper's peak-hour scenario on the 2006 stack.
    pub fn paper_2006(r: f64) -> Self {
        PipelineConfig {
            stack: SystemCapacity::paper_2006(),
            iat: 5.0,
            r,
            duration: Duration::from_hours(1),
        }
    }

    /// Per-stage service times for one request operation.
    fn service_times(&self) -> [Duration; STAGES] {
        let soap = 1.0 / self.stack.soap.rate_for_payload(self.stack.payload);
        // GRAM transactions: one operation = one transaction.
        let gram = 1.0 / self.stack.middleware.transactions_per_sec();
        // Scheduler: the throughput curve counts submit+cancel pairs; one
        // operation is half a pair.
        let sched = 0.5 / self.stack.scheduler.throughput(self.stack.queue_size);
        [
            Duration::from_secs(soap),
            Duration::from_secs(gram),
            Duration::from_secs(sched),
        ]
    }

    /// Offered operations per second ((2r − 1) per job: r submissions +
    /// r − 1 cancellations).
    pub fn offered_ops_per_sec(&self) -> f64 {
        (2.0 * self.r - 1.0) / self.iat
    }
}

/// Outcome of a pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineResult {
    /// End-to-end latency of completed operations (seconds).
    pub latency: Summary,
    /// Operations still in flight (queued or in service anywhere in the
    /// pipeline) at the end of the measured window.
    pub backlog: usize,
    /// Operations completed.
    pub completed: usize,
    /// True if the stack kept up: less than a minute's worth of offered
    /// load remained in flight at the end of the window.
    pub sustainable: bool,
}

#[derive(Clone, Copy)]
enum Ev {
    /// An operation arrives at the pipeline entrance.
    Arrival(u64),
    /// Stage `stage` finishes serving operation `op`.
    StageDone { op: u64, stage: usize },
    /// End of the measured period: snapshot the backlog (the in-flight
    /// work keeps draining afterwards, so it must be observed *now*).
    Sample,
}

/// Runs the tandem-queue simulation: Poisson-like arrivals (exponential
/// gaps at the offered rate), three single-server FIFO stages.
pub fn run(config: &PipelineConfig, seed: SeedSequence) -> PipelineResult {
    use rand::Rng;
    assert!(config.r >= 1.0, "redundancy level must be at least 1");
    let service = config.service_times();
    let rate = config.offered_ops_per_sec();
    let mut rng = seed.rng();
    let mut exp_gap = move || {
        let u = loop {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            if u > 0.0 {
                break u;
            }
        };
        Duration::from_secs((-u.ln() / rate).max(1e-6))
    };

    let mut engine: Engine<Ev> = Engine::new();
    let end = SimTime::ZERO + config.duration;
    engine.schedule(SimTime::ZERO + exp_gap(), Ev::Arrival(0));
    engine.schedule(end, Ev::Sample);

    // Per-stage FIFO queues hold (op, entry time); busy flag per stage.
    let mut queues: [std::collections::VecDeque<u64>; STAGES] = Default::default();
    let mut busy = [false; STAGES];
    let mut entered: Vec<SimTime> = Vec::new();
    let mut latency = Summary::new();
    let mut completed = 0usize;
    let mut in_service = 0usize;
    let mut backlog_at_end = 0usize;

    while let Some((now, ev)) = engine.pop() {
        match ev {
            Ev::Arrival(op) => {
                if now >= end {
                    continue; // stop generating, drain what's in flight
                }
                entered.push(now);
                debug_assert_eq!(entered.len() as u64, op + 1);
                in_service += 1;
                enqueue(&mut queues, &mut busy, &mut engine, now, op, 0, &service);
                engine.schedule(now + exp_gap(), Ev::Arrival(op + 1));
            }
            Ev::StageDone { op, stage } => {
                busy[stage] = false;
                if let Some(next) = queues[stage].pop_front() {
                    serve(&mut busy, &mut engine, now, next, stage, &service);
                }
                if stage + 1 < STAGES {
                    enqueue(
                        &mut queues,
                        &mut busy,
                        &mut engine,
                        now,
                        op,
                        stage + 1,
                        &service,
                    );
                } else {
                    latency.push(now.since(entered[op as usize]).as_secs());
                    completed += 1;
                    in_service -= 1;
                }
            }
            Ev::Sample => {
                backlog_at_end = in_service;
            }
        }
    }

    PipelineResult {
        latency,
        backlog: backlog_at_end,
        completed,
        // Sustainable if less than a minute's worth of offered load was
        // still in flight when the window closed.
        sustainable: (backlog_at_end as f64) < 60.0 * rate.max(1.0),
    }
}

fn enqueue(
    queues: &mut [std::collections::VecDeque<u64>; STAGES],
    busy: &mut [bool; STAGES],
    engine: &mut Engine<Ev>,
    now: SimTime,
    op: u64,
    stage: usize,
    service: &[Duration; STAGES],
) {
    if busy[stage] {
        queues[stage].push_back(op);
    } else {
        serve(busy, engine, now, op, stage, service);
    }
}

fn serve(
    busy: &mut [bool; STAGES],
    engine: &mut Engine<Ev>,
    now: SimTime,
    op: u64,
    stage: usize,
    service: &[Duration; STAGES],
) {
    busy[stage] = true;
    engine.schedule(now + service[stage], Ev::StageDone { op, stage });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r1_is_comfortably_sustainable() {
        let result = run(&PipelineConfig::paper_2006(1.0), SeedSequence::new(300));
        assert!(result.sustainable, "backlog {}", result.backlog);
        assert!(result.completed > 500);
        // Latency near the raw service time (~1.1 s, GRAM-dominated).
        assert!(
            result.latency.mean() < 10.0,
            "latency {}",
            result.latency.mean()
        );
    }

    #[test]
    fn r3_saturates_the_2006_stack() {
        // The paper: WS-GRAM "would be the bottleneck for a system in
        // which all jobs use 3 or more redundant requests".
        let result = run(&PipelineConfig::paper_2006(3.0), SeedSequence::new(301));
        assert!(
            !result.sustainable,
            "r=3 must overload GT4 WS-GRAM (backlog {})",
            result.backlog
        );
    }

    #[test]
    fn crossover_matches_the_analytic_bound() {
        // GT4 WS-GRAM sustains 0.95 tx/s; a job at redundancy r costs
        // 2r − 1 transactions, so saturation sits at r ≈ 2.87 for
        // iat = 5 s — the simulation's crossover must bracket it (the
        // paper's rounding of the same arithmetic reads "r < 3").
        let ok = run(&PipelineConfig::paper_2006(2.5), SeedSequence::new(302));
        let over = run(&PipelineConfig::paper_2006(3.1), SeedSequence::new(303));
        assert!(ok.sustainable, "r=2.5 backlog {}", ok.backlog);
        assert!(!over.sustainable, "r=3.1 backlog {}", over.backlog);
    }

    #[test]
    fn faster_middleware_moves_the_crossover() {
        use crate::gram::GramModel;
        let mut cfg = PipelineConfig::paper_2006(5.0);
        cfg.stack.middleware = GramModel::with_rate(3_600.0); // 60 tx/s
        let result = run(&cfg, SeedSequence::new(304));
        assert!(result.sustainable, "a fast middleware should absorb r=5");
    }

    #[test]
    fn latency_explodes_beyond_saturation() {
        let under = run(&PipelineConfig::paper_2006(1.5), SeedSequence::new(305));
        let over = run(&PipelineConfig::paper_2006(4.0), SeedSequence::new(305));
        assert!(over.latency.mean() > 5.0 * under.latency.mean());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_r_rejected() {
        let _ = run(&PipelineConfig::paper_2006(0.5), SeedSequence::new(306));
    }
}
