//! The batch-scheduler throughput model and the Figure 5 saturation
//! experiment.
//!
//! The paper saturated an OpenPBS/Maui front-end with concurrent `qsub` /
//! `qdel` loops at controlled queue sizes and measured 11 submissions +
//! 11 cancellations per second on an empty queue, decaying "in a somewhat
//! exponential manner" to about 5 of each at 20 000 pending requests.

use rand::Rng;
use rbr_simcore::{Duration, SimTime};

/// Throughput of a batch-scheduler front-end as a function of queue size:
/// `T(q) = floor + range · exp(−q / tau)` submission/cancellation pairs
/// per second — the paper's Figure 5 y-axis, which counts "11 request
/// submissions and 11 request cancellations per second" on an empty
/// queue as the value 11.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PbsThroughputModel {
    /// Asymptotic throughput at huge queue sizes (pairs/s).
    pub floor: f64,
    /// Additional throughput on an empty queue (pairs/s).
    pub range: f64,
    /// Exponential decay constant in queue entries.
    pub tau: f64,
}

impl PbsThroughputModel {
    /// Calibrated to the paper's OpenPBS 2.3.16 / Maui 3.2.6p13
    /// measurements on a 1 GHz Pentium III: 11 ops/s empty, ≈6 ops/s at
    /// 10 000 pending, ≈5 ops/s at 20 000 pending.
    pub fn openpbs_maui_2006() -> Self {
        PbsThroughputModel {
            floor: 5.0,
            range: 6.0,
            tau: 5_600.0,
        }
    }

    /// Submission/cancellation pairs per second at queue size `q` (the
    /// sustainable rate of each kind).
    pub fn throughput(&self, q: usize) -> f64 {
        self.floor + self.range * (-(q as f64) / self.tau).exp()
    }

    /// Service time of one submit+cancel pair at queue size `q`.
    pub fn service_time(&self, q: usize) -> Duration {
        Duration::from_secs(1.0 / self.throughput(q))
    }
}

/// One measured point of the churn experiment.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChurnPoint {
    /// Queue size the experiment was pinned at.
    pub queue_size: usize,
    /// Measured submission/cancellation pairs per second (the paper
    /// reports "submissions/cancellations per second" on this axis).
    pub ops_per_sec: f64,
    /// True if the run was cut short by the injected scheduler crash (the
    /// paper: "experiments were interrupted due to the job scheduler
    /// process running out of memory, due to memory leaks").
    pub crashed: bool,
}

/// The Figure 5 saturation experiment: pre-seed the queue to a target
/// size, run clients that continuously submit a job and delete the job at
/// the head of the queue (maximum churn), and measure sustained
/// throughput.
#[derive(Clone, Debug)]
pub struct ChurnExperiment {
    /// The scheduler front-end being saturated.
    pub model: PbsThroughputModel,
    /// Wall-clock length of each measurement run.
    pub duration: Duration,
    /// If set, the scheduler process dies after this many operations
    /// (memory-leak injection); the point is reported with `crashed`.
    pub crash_after_ops: Option<u64>,
    /// Relative jitter on each operation's service time (models the
    /// "non-deterministic load on the front-end node"); 0 disables.
    pub service_jitter: f64,
}

impl ChurnExperiment {
    /// The paper's 12-hour experiment setup, without failure injection.
    pub fn paper_setup() -> Self {
        ChurnExperiment {
            model: PbsThroughputModel::openpbs_maui_2006(),
            duration: Duration::from_hours(12),
            crash_after_ops: None,
            service_jitter: 0.05,
        }
    }

    /// Runs one measurement at a pinned queue size.
    ///
    /// Clients alternate submissions and deletions, so the queue size
    /// oscillates within ±1 of the target and the server is always saturated;
    /// the measured rate is therefore the service rate at that size.
    pub fn measure<R: Rng + ?Sized>(&self, queue_size: usize, rng: &mut R) -> ChurnPoint {
        let mut now = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration;
        let mut ops: u64 = 0;
        let mut q = queue_size;
        let mut submit_next = true;
        while now < end {
            if let Some(limit) = self.crash_after_ops {
                if ops >= limit {
                    return ChurnPoint {
                        queue_size,
                        ops_per_sec: ops as f64 / now.since(SimTime::ZERO).as_secs(),
                        crashed: true,
                    };
                }
            }
            let mut service = self.model.service_time(q);
            if self.service_jitter > 0.0 {
                let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let factor = 1.0 + self.service_jitter * (2.0 * u - 1.0);
                service = service.scale(factor);
            }
            now += service;
            ops += 1;
            // Alternate submit/delete to pin the queue at the target.
            if submit_next {
                q += 1;
            } else {
                q = q.saturating_sub(1);
            }
            submit_next = !submit_next;
        }
        ChurnPoint {
            queue_size,
            ops_per_sec: ops as f64 / self.duration.as_secs(),
            crashed: false,
        }
    }

    /// Sweeps queue sizes and returns one point per size — the Figure 5
    /// curve.
    pub fn sweep<R: Rng + ?Sized>(&self, queue_sizes: &[usize], rng: &mut R) -> Vec<ChurnPoint> {
        queue_sizes.iter().map(|&q| self.measure(q, rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::SeedSequence;

    #[test]
    fn calibration_matches_paper_endpoints() {
        let m = PbsThroughputModel::openpbs_maui_2006();
        assert!((m.throughput(0) - 11.0).abs() < 1e-9);
        // ≈ 6 ops/s at 10 000 pending.
        assert!((m.throughput(10_000) - 6.0).abs() < 0.05);
        // ≈ 5.2 ops/s at 20 000 pending.
        assert!((m.throughput(20_000) - 5.17).abs() < 0.05);
    }

    #[test]
    fn throughput_decays_monotonically() {
        let m = PbsThroughputModel::openpbs_maui_2006();
        let mut last = f64::INFINITY;
        for q in (0..=20_000).step_by(1_000) {
            let t = m.throughput(q);
            assert!(t < last);
            last = t;
        }
    }

    #[test]
    fn churn_measures_the_service_rate() {
        let mut exp = ChurnExperiment::paper_setup();
        exp.duration = Duration::from_secs(3_600.0);
        exp.service_jitter = 0.0;
        let mut rng = SeedSequence::new(90).rng();
        for q in [0usize, 10_000, 20_000] {
            let point = exp.measure(q, &mut rng);
            let expected = exp.model.throughput(q);
            assert!(
                (point.ops_per_sec - expected).abs() / expected < 0.02,
                "q={q}: measured {} vs model {expected}",
                point.ops_per_sec
            );
            assert!(!point.crashed);
        }
    }

    #[test]
    fn crash_injection_truncates_run() {
        let mut exp = ChurnExperiment::paper_setup();
        exp.crash_after_ops = Some(1_000);
        let mut rng = SeedSequence::new(91).rng();
        let point = exp.measure(100, &mut rng);
        assert!(point.crashed);
        // Rate is still a valid estimate from the truncated run.
        assert!(point.ops_per_sec > 0.0);
    }

    #[test]
    fn sweep_reproduces_figure5_shape() {
        let mut exp = ChurnExperiment::paper_setup();
        exp.duration = Duration::from_secs(600.0);
        let mut rng = SeedSequence::new(92).rng();
        let sizes: Vec<usize> = (0..=20).map(|k| k * 1_000).collect();
        let points = exp.sweep(&sizes, &mut rng);
        assert_eq!(points.len(), 21);
        // Endpoints bracket the paper's 11 → ~5 ops/s curve.
        assert!((10.0..12.0).contains(&points[0].ops_per_sec));
        assert!((4.5..5.8).contains(&points[20].ops_per_sec));
        // Decay is sharper early than late (the "somewhat exponential"
        // shape): drop over the first 5k exceeds drop over the last 5k.
        let early = points[0].ops_per_sec - points[5].ops_per_sec;
        let late = points[15].ops_per_sec - points[20].ops_per_sec;
        assert!(early > 2.0 * late, "early {early} vs late {late}");
    }

    #[test]
    fn jitter_does_not_bias_the_mean() {
        let mut exp = ChurnExperiment::paper_setup();
        exp.duration = Duration::from_secs(3_600.0);
        exp.service_jitter = 0.2;
        let mut rng = SeedSequence::new(93).rng();
        let point = exp.measure(5_000, &mut rng);
        let expected = exp.model.throughput(5_000);
        assert!(
            (point.ops_per_sec - expected).abs() / expected < 0.03,
            "measured {} vs {expected}",
            point.ops_per_sec
        );
    }
}
