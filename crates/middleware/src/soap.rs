//! The SOAP-layer model.
//!
//! Section 4.2 cites gSOAP benchmark results (Head et al., SC'05):
//! marshalling/unmarshalling arrays of 30 000 three-field structures
//! (two ints + one double, > 450 KB total — "many more bytes than needed
//! for a batch request submission") at a rate "significantly higher than
//! 12 per second" on a dual Pentium 4 Xeon. Conclusion: raw SOAP
//! processing is not the bottleneck; the full WS-GRAM stack is.

/// Cost model for SOAP marshalling of batch-request messages.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GsoapModel {
    /// Benchmark transaction rate (transactions/s) at the benchmark
    /// payload size.
    pub benchmark_rate: f64,
    /// Payload size of the benchmark transactions, in bytes.
    pub benchmark_payload: u64,
}

impl GsoapModel {
    /// The SC'05 gSOAP benchmark configuration: 30 000 structures of
    /// 16 bytes ≈ 480 KB, conservatively rated at 20 transactions/s
    /// ("significantly higher than 12 per second").
    pub fn sc05_benchmark() -> Self {
        GsoapModel {
            benchmark_rate: 20.0,
            benchmark_payload: 30_000 * 16,
        }
    }

    /// Estimated transaction rate for messages of `payload` bytes,
    /// assuming cost scales linearly with payload (conservative for the
    /// small messages of batch submissions, whose fixed costs dominate —
    /// capped at 10× the benchmark rate).
    pub fn rate_for_payload(&self, payload: u64) -> f64 {
        if payload == 0 {
            return self.benchmark_rate * 10.0;
        }
        (self.benchmark_rate * self.benchmark_payload as f64 / payload as f64)
            .min(self.benchmark_rate * 10.0)
    }

    /// True if the SOAP layer can sustain the given operation rate for
    /// batch-request-sized messages (`payload` bytes).
    pub fn sustains(&self, ops_per_sec: f64, payload: u64) -> bool {
        self.rate_for_payload(payload) >= ops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_rate_beats_scheduler_demand() {
        // The paper's point: 12 ops/s (the empty-queue scheduler rate)
        // is comfortably below what gSOAP sustains even at 450 KB.
        let m = GsoapModel::sc05_benchmark();
        assert!(m.sustains(12.0, m.benchmark_payload));
    }

    #[test]
    fn small_messages_are_faster_but_capped() {
        let m = GsoapModel::sc05_benchmark();
        let small = m.rate_for_payload(1_000);
        assert!(small > m.benchmark_rate);
        assert!(small <= m.benchmark_rate * 10.0);
        assert_eq!(m.rate_for_payload(0), m.benchmark_rate * 10.0);
    }

    #[test]
    fn huge_messages_slow_down() {
        let m = GsoapModel::sc05_benchmark();
        assert!(m.rate_for_payload(10 * m.benchmark_payload) < m.benchmark_rate);
    }
}
