//! The capacity arithmetic of Section 4.
//!
//! "Consider a system with N clusters, with mean job interarrival time of
//! iat seconds at each cluster. If all jobs use r requests, then on
//! average each cluster will receive r/iat requests per second and
//! (r − 1)/iat request cancellations per second." From this the paper
//! derives its two headline bounds: the batch scheduler tolerates r < 30,
//! the 2006 WS-GRAM middleware only r < 3 (both at the 5 s peak-hour
//! interarrival time).

use crate::gram::GramModel;
use crate::network::NetworkModel;
use crate::pbs::PbsThroughputModel;
use crate::soap::GsoapModel;

/// Steady-state request-operation rates at one cluster when every job
/// uses `r` redundant requests and jobs arrive every `iat` seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SteadyStateLoad {
    /// Submissions per second arriving at the cluster.
    pub submissions_per_sec: f64,
    /// Cancellations per second arriving at the cluster.
    pub cancellations_per_sec: f64,
}

impl SteadyStateLoad {
    /// Total request operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        self.submissions_per_sec + self.cancellations_per_sec
    }
}

/// Computes the paper's steady-state load: `r/iat` submissions and
/// `(r − 1)/iat` cancellations per second per cluster.
///
/// # Panics
/// Panics unless `r ≥ 1` and `iat > 0`.
pub fn steady_state_load(r: f64, iat: f64) -> SteadyStateLoad {
    assert!(r >= 1.0, "redundancy level must be at least 1, got {r}");
    assert!(iat > 0.0, "interarrival time must be positive, got {iat}");
    SteadyStateLoad {
        submissions_per_sec: r / iat,
        cancellations_per_sec: (r - 1.0) / iat,
    }
}

/// Largest redundancy level `r` such that `r / iat ≤ rate`, i.e. the
/// component can absorb the submission stream (the paper applies the same
/// bound to cancellations, which are strictly fewer).
///
/// # Panics
/// Panics unless both arguments are positive.
pub fn max_redundancy(iat: f64, submissions_per_sec: f64) -> f64 {
    assert!(iat > 0.0, "interarrival time must be positive");
    assert!(submissions_per_sec > 0.0, "rate must be positive");
    submissions_per_sec * iat
}

/// Which component saturates first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bottleneck {
    /// The batch scheduler front-end.
    Scheduler,
    /// The grid middleware (WS-GRAM).
    Middleware,
    /// The SOAP marshalling layer.
    Soap,
    /// The network link.
    Network,
}

/// The full 2006 stack, for end-to-end bottleneck analysis.
#[derive(Clone, Copy, Debug)]
pub struct SystemCapacity {
    /// Batch scheduler model.
    pub scheduler: PbsThroughputModel,
    /// Grid middleware model.
    pub middleware: GramModel,
    /// SOAP layer model.
    pub soap: GsoapModel,
    /// Network model.
    pub network: NetworkModel,
    /// Assumed standing queue size at the scheduler (the paper
    /// conservatively uses 10 000).
    pub queue_size: usize,
    /// Request message payload in bytes.
    pub payload: u64,
}

impl SystemCapacity {
    /// The paper's 2006 reference stack: OpenPBS/Maui with a 10 000-deep
    /// queue, GT4 WS-GRAM, gSOAP, a fast-Ethernet uplink, and generous
    /// 100 KB request messages.
    pub fn paper_2006() -> Self {
        SystemCapacity {
            scheduler: PbsThroughputModel::openpbs_maui_2006(),
            middleware: GramModel::gt4_ws_gram(),
            soap: GsoapModel::sc05_benchmark(),
            network: NetworkModel::fast_ethernet(),
            queue_size: 10_000,
            payload: 100 * 1024,
        }
    }

    /// Sustainable submissions per second of each component. The
    /// scheduler and middleware must each handle a submission *and* a
    /// cancellation per redundant request, so their operation rates are
    /// halved; the SOAP and network layers see each operation as one
    /// message.
    pub(crate) fn submission_rates(&self) -> [(Bottleneck, f64); 4] {
        [
            // The scheduler curve is already a per-kind rate (it
            // processes that many submissions AND cancellations/s).
            (
                Bottleneck::Scheduler,
                self.scheduler.throughput(self.queue_size),
            ),
            (
                Bottleneck::Middleware,
                self.middleware.submissions_per_sec(),
            ),
            (
                Bottleneck::Soap,
                self.soap.rate_for_payload(self.payload) / 2.0,
            ),
            (
                Bottleneck::Network,
                self.network.messages_per_sec(self.payload) / 2.0,
            ),
        ]
    }

    /// The component that saturates first and its sustainable submission
    /// rate.
    pub fn bottleneck(&self) -> (Bottleneck, f64) {
        self.submission_rates()
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("rates are finite"))
            .expect("four components")
    }

    /// Maximum sustainable redundancy (requests per job) at interarrival
    /// time `iat`, per component.
    pub fn max_redundancy_per_component(&self, iat: f64) -> Vec<(Bottleneck, f64)> {
        self.submission_rates()
            .into_iter()
            .map(|(c, rate)| (c, max_redundancy(iat, rate)))
            .collect()
    }

    /// System-wide maximum sustainable redundancy at interarrival `iat`.
    pub fn max_redundancy(&self, iat: f64) -> f64 {
        max_redundancy(iat, self.bottleneck().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_rates_match_formula() {
        let load = steady_state_load(4.0, 5.0);
        assert!((load.submissions_per_sec - 0.8).abs() < 1e-12);
        assert!((load.cancellations_per_sec - 0.6).abs() < 1e-12);
        assert!((load.ops_per_sec() - 1.4).abs() < 1e-12);
    }

    #[test]
    fn no_redundancy_means_no_cancellations() {
        let load = steady_state_load(1.0, 5.0);
        assert_eq!(load.cancellations_per_sec, 0.0);
    }

    /// The paper's Section 4.1 bound: "the batch schedulers could support
    /// 6 submissions and 6 cancellations per second ... we obtain r < 30".
    #[test]
    fn scheduler_bound_is_thirty() {
        let sched = PbsThroughputModel::openpbs_maui_2006();
        // "Conservatively assuming that all queues contain 10,000
        // requests ... the batch schedulers could support 6 submissions
        // and 6 cancellations per second."
        let per_kind = sched.throughput(10_000);
        assert!((per_kind - 6.0).abs() < 0.1);
        // "Therefore the batch schedulers operate within their achievable
        // throughput if r/iat ≤ 6 ... we obtain r < 30."
        let r = max_redundancy(5.0, per_kind);
        assert!((29.0..31.0).contains(&r), "r = {r}");
    }

    /// The paper's Section 4.2 bound: "r/iat ≤ 0.5 leading to r < 3".
    #[test]
    fn middleware_bound_is_three() {
        let gram = GramModel::gt4_ws_gram();
        // "0.5 job submissions and 0.5 job cancellations per second".
        let r = max_redundancy(5.0, 0.5);
        assert!((r - 2.5).abs() < 1e-9);
        assert!(r < 3.0);
        // Our model's exact figure is slightly under 0.5 submissions/s.
        assert!(gram.submissions_per_sec() <= 0.5);
    }

    #[test]
    fn middleware_is_the_2006_bottleneck() {
        let sys = SystemCapacity::paper_2006();
        let (component, rate) = sys.bottleneck();
        assert_eq!(component, Bottleneck::Middleware);
        assert!(rate < 0.5);
        // And therefore system-wide max redundancy at peak hours is < 3.
        assert!(sys.max_redundancy(5.0) < 3.0);
    }

    #[test]
    fn scheduler_constrains_before_soap_and_network() {
        let sys = SystemCapacity::paper_2006();
        let per: std::collections::HashMap<_, _> =
            sys.max_redundancy_per_component(5.0).into_iter().collect();
        assert!(per[&Bottleneck::Scheduler] < per[&Bottleneck::Soap]);
        assert!(per[&Bottleneck::Scheduler] < per[&Bottleneck::Network]);
    }

    #[test]
    fn faster_middleware_shifts_bottleneck_to_scheduler() {
        let mut sys = SystemCapacity::paper_2006();
        sys.middleware = GramModel::with_rate(6_000.0); // a 2020s REST API
        let (component, _) = sys.bottleneck();
        assert_eq!(component, Bottleneck::Scheduler);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_redundancy_rejected() {
        let _ = steady_state_load(0.5, 5.0);
    }
}
