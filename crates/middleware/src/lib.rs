//! # rbr-middleware
//!
//! The Section 4 substrate: what does a redundant-request workload cost in
//! scheduler, network, and middleware load?
//!
//! The paper measured a production OpenPBS 2.3.16 / Maui 3.2.6 install on
//! a 1 GHz Pentium III (Figure 5), quoted gSOAP micro-benchmarks and
//! DiPerf measurements of GT4 WS-GRAM, and derived back-of-the-envelope
//! capacity bounds: batch schedulers tolerate about **r < 30** redundant
//! requests per job at peak arrival rates, while the 2006 WS-GRAM
//! implementation tolerates only **r < 3** — making the middleware the
//! bottleneck.
//!
//! We have none of that hardware, so this crate provides:
//!
//! * [`PbsThroughputModel`] — the measured submit/cancel throughput curve,
//!   calibrated to the paper's endpoints (≈11 ops/s on an empty queue,
//!   ≈5 ops/s at 20 000 pending requests), plus [`ChurnExperiment`], a
//!   simulation of the saturation experiment that regenerates Figure 5
//!   (including the memory-leak crashes that truncated some of the
//!   paper's runs);
//! * [`GramModel`] / [`GsoapModel`] / [`NetworkModel`] — transaction-rate
//!   models for the grid-middleware stack;
//! * [`capacity`] — the arithmetic of Section 4: sustainable redundancy
//!   levels and the system bottleneck;
//! * [`batch`] — batched transactions (N submit/cancel ops per WS-GRAM
//!   round-trip): how much redundancy becomes sustainable when the
//!   per-transaction cost is amortized, and at what batch-fill latency;
//! * [`pipeline`] — the stack assembled as a tandem queueing network,
//!   verifying the analytic crossovers (r < 3 with 2006 WS-GRAM) by
//!   simulation.

pub mod batch;
pub mod capacity;
pub mod gram;
pub mod network;
pub mod pbs;
pub mod pipeline;
pub mod soap;

pub use batch::BatchedTransaction;
pub use capacity::{max_redundancy, steady_state_load, Bottleneck, SystemCapacity};
pub use gram::GramModel;
pub use network::NetworkModel;
pub use pbs::{ChurnExperiment, ChurnPoint, PbsThroughputModel};
pub use pipeline::{PipelineConfig, PipelineResult};
pub use soap::GsoapModel;
