//! The network model.
//!
//! Section 4.2: "Even if the network payload of a job submission or
//! cancellation were on the order of hundreds of KBytes (for instance
//! large SOAP messages), most networks connecting a batch scheduler to
//! the Internet can easily support tens of such interactions per second."

use rbr_simcore::Duration;

/// A simple store-and-forward link model.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NetworkModel {
    /// Link bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency in seconds.
    pub latency_s: f64,
}

impl NetworkModel {
    /// A 2006-era 100 Mbit/s institutional uplink.
    pub fn fast_ethernet() -> Self {
        NetworkModel {
            bandwidth_bps: 100e6,
            latency_s: 0.010,
        }
    }

    /// Time to deliver one message of `payload` bytes.
    pub fn transfer_time(&self, payload: u64) -> Duration {
        assert!(self.bandwidth_bps > 0.0, "bandwidth must be positive");
        Duration::from_secs(self.latency_s + payload as f64 * 8.0 / self.bandwidth_bps)
    }

    /// Sustainable messages per second at the given payload (pipelined,
    /// bandwidth-bound).
    pub fn messages_per_sec(&self, payload: u64) -> f64 {
        if payload == 0 {
            return f64::INFINITY;
        }
        self.bandwidth_bps / (payload as f64 * 8.0)
    }

    /// The paper's check: can this network carry `ops_per_sec` request
    /// operations of `payload` bytes each?
    pub fn sustains(&self, ops_per_sec: f64, payload: u64) -> bool {
        self.messages_per_sec(payload) >= ops_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundreds_of_kb_at_tens_per_second() {
        // The paper's claim verbatim: hundreds-of-KB SOAP messages, tens
        // of interactions per second, on an ordinary network.
        let net = NetworkModel::fast_ethernet();
        assert!(net.sustains(30.0, 300 * 1024));
    }

    #[test]
    fn transfer_time_includes_latency() {
        let net = NetworkModel {
            bandwidth_bps: 8e6, // 1 MB/s
            latency_s: 0.5,
        };
        let t = net.transfer_time(1_000_000);
        assert!((t.as_secs() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn zero_payload_is_latency_only() {
        let net = NetworkModel::fast_ethernet();
        assert!((net.transfer_time(0).as_secs() - 0.010).abs() < 1e-9);
        assert!(net.sustains(1e9, 0));
    }
}
