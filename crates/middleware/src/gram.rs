//! The WS-GRAM middleware model.
//!
//! The paper cites DiPerf measurements (Raicu, 2005) of the Globus GT4
//! WS-GRAM service on a 2.16 GHz AMD K7: a sustained rate of "slightly
//! under 60 transactions per minute", i.e. under one transaction per
//! second — two orders of magnitude below the batch scheduler itself.

/// Transaction-rate model of a grid job-submission middleware service.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GramModel {
    /// Sustained transactions per minute (a transaction is one job
    /// submission or one cancellation).
    pub transactions_per_minute: f64,
}

impl GramModel {
    /// GT4 WS-GRAM as measured by DiPerf in 2005.
    pub fn gt4_ws_gram() -> Self {
        GramModel {
            transactions_per_minute: 57.0,
        }
    }

    /// Pre-web-services GRAM (GT2) was measured several times faster; the
    /// paper's analysis uses the WS flavour, but the model lets the
    /// capacity analysis explore alternatives.
    pub fn with_rate(transactions_per_minute: f64) -> Self {
        assert!(
            transactions_per_minute > 0.0,
            "transaction rate must be positive"
        );
        GramModel {
            transactions_per_minute,
        }
    }

    /// Transactions per second.
    pub fn transactions_per_sec(&self) -> f64 {
        self.transactions_per_minute / 60.0
    }

    /// Sustainable job **submissions** per second assuming each job also
    /// costs one cancellation ("if a job cancellation causes roughly the
    /// same overhead as a job submission ... then .5 job submissions and
    /// .5 job cancellations can be processed per second").
    pub fn submissions_per_sec(&self) -> f64 {
        self.transactions_per_sec() / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gt4_is_just_under_one_per_second() {
        let m = GramModel::gt4_ws_gram();
        assert!(m.transactions_per_sec() < 1.0);
        assert!(m.transactions_per_sec() > 0.9);
        assert!((m.submissions_per_sec() - 0.475).abs() < 1e-9);
    }

    #[test]
    fn custom_rate() {
        let m = GramModel::with_rate(120.0);
        assert!((m.transactions_per_sec() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = GramModel::with_rate(0.0);
    }
}
