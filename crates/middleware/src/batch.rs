//! Batched WS-GRAM transactions: amortizing the round-trip.
//!
//! Section 4.2 blames the per-*transaction* cost of the 2006 middleware
//! stack for the r < 3 bound: every submit and every cancel is its own
//! WS-GRAM transaction, its own gSOAP round-trip. The obvious systems
//! remedy — and the one every post-2006 high-throughput submission
//! system adopted — is to carry N operations per transaction.
//!
//! This module models that trade-off. A single-op transaction costs some
//! fixed round-trip share (connection setup, WS security handshake,
//! HTTP/SOAP envelope exchange) plus a per-operation share (marshalling
//! one job description, one scheduler interaction). Packing `B` ops into
//! one transaction pays the fixed share once and the per-op share `B`
//! times, so the sustainable *operation* rate of a transaction-bound
//! layer rises by the [`BatchedTransaction::amortization`] factor
//! `B / ((1 − f) + f·B)` where `f` is the per-op share. The price is
//! batch-fill latency: an operation waits on average `(B − 1) / (2λ)`
//! seconds for its transaction to fill at arrival rate `λ`
//! ([`BatchedTransaction::expected_fill_latency`]).
//!
//! `batch = 1` is, by construction, *exactly* today's per-op model: the
//! amortization factor is exactly 1.0 (special-cased, not just within
//! float error) and the fill latency is zero, so every capacity number
//! in [`crate::capacity`] is reproduced bit-for-bit.

use crate::capacity::{max_redundancy, Bottleneck, SystemCapacity};

/// Default per-operation share of a single-op transaction's cost.
///
/// The gSOAP benchmarks the paper quotes put serialization throughput two
/// orders of magnitude above the observed WS-GRAM transaction rate: the
/// transaction cost is dominated by the fixed round-trip (WS security
/// handshake, state-service creation), not per-job marshalling. 0.2 is a
/// conservative reading — 80 % of a one-op transaction is amortizable.
pub const DEFAULT_OP_FRACTION: f64 = 0.2;

/// A WS-GRAM transaction carrying `batch` submit or cancel operations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchedTransaction {
    /// Operations per transaction. 1 = today's per-op protocol.
    pub batch: u32,
    /// Fraction of a single-op transaction's cost that is per-operation
    /// work (marshalling, scheduler interaction); the remaining
    /// `1 − op_fraction` is the fixed round-trip paid once per
    /// transaction. Must lie in `(0, 1]`.
    pub op_fraction: f64,
}

impl BatchedTransaction {
    /// A batch of `batch` operations at the default cost split.
    ///
    /// # Panics
    /// Panics if `batch == 0`.
    pub fn of(batch: u32) -> Self {
        Self::with_op_fraction(batch, DEFAULT_OP_FRACTION)
    }

    /// A batch with an explicit per-op cost fraction.
    ///
    /// # Panics
    /// Panics unless `batch ≥ 1` and `op_fraction ∈ (0, 1]`.
    pub fn with_op_fraction(batch: u32, op_fraction: f64) -> Self {
        assert!(batch >= 1, "batch size must be at least 1");
        assert!(
            op_fraction > 0.0 && op_fraction <= 1.0,
            "op_fraction must lie in (0, 1], got {op_fraction}"
        );
        BatchedTransaction { batch, op_fraction }
    }

    /// Today's protocol: one operation per transaction.
    pub fn identity() -> Self {
        Self::of(1)
    }

    /// Throughput multiplier for a transaction-bound layer.
    ///
    /// With per-op share `f`, a `B`-op transaction costs
    /// `(1 − f) + f·B` single-op transactions and carries `B` ops, so the
    /// sustainable operation rate rises by `B / ((1 − f) + f·B)` — a
    /// factor that grows from exactly 1 at `B = 1` toward `1/f` as
    /// `B → ∞`.
    pub fn amortization(&self) -> f64 {
        if self.batch == 1 {
            // Exact identity with the unbatched model: never let float
            // rounding of B/((1−f)+f·B) perturb the B = 1 capacity
            // numbers.
            return 1.0;
        }
        let b = f64::from(self.batch);
        b / ((1.0 - self.op_fraction) + self.op_fraction * b)
    }

    /// Mean seconds an operation waits for its transaction to fill when
    /// operations arrive at `ops_per_sec`. A batch needs `B − 1` further
    /// arrivals after its first op; under a stationary arrival stream the
    /// mean position in the batch is the midpoint, giving
    /// `(B − 1) / (2λ)`. Zero at `B = 1` (nothing to wait for).
    ///
    /// # Panics
    /// Panics unless `ops_per_sec > 0`.
    pub fn expected_fill_latency(&self, ops_per_sec: f64) -> f64 {
        assert!(ops_per_sec > 0.0, "operation rate must be positive");
        if self.batch == 1 {
            return 0.0;
        }
        f64::from(self.batch - 1) / (2.0 * ops_per_sec)
    }
}

impl SystemCapacity {
    /// Sustainable submissions per second of each component when submit
    /// and cancel operations ride in `txn.batch`-op transactions.
    ///
    /// Batching amortizes the *transaction-bound* layers — the WS-GRAM
    /// middleware and the SOAP round-trip — whose cost is dominated by
    /// per-transaction overhead. The batch scheduler still executes every
    /// operation individually (a batched submit is still `B` qsub-side
    /// insertions), and the network still carries every job description,
    /// so those rates are unchanged.
    pub fn submission_rates_batched(&self, txn: BatchedTransaction) -> [(Bottleneck, f64); 4] {
        let amort = txn.amortization();
        let mut rates = self.submission_rates();
        for (component, rate) in rates.iter_mut() {
            if matches!(component, Bottleneck::Middleware | Bottleneck::Soap) {
                *rate *= amort;
            }
        }
        rates
    }

    /// The component that saturates first under `txn` batching, and its
    /// sustainable submission rate.
    pub fn bottleneck_batched(&self, txn: BatchedTransaction) -> (Bottleneck, f64) {
        self.submission_rates_batched(txn)
            .into_iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("rates are finite"))
            .expect("four components")
    }

    /// Maximum sustainable redundancy per component at interarrival `iat`
    /// under `txn` batching.
    pub fn max_redundancy_per_component_batched(
        &self,
        iat: f64,
        txn: BatchedTransaction,
    ) -> Vec<(Bottleneck, f64)> {
        self.submission_rates_batched(txn)
            .into_iter()
            .map(|(c, rate)| (c, max_redundancy(iat, rate)))
            .collect()
    }

    /// System-wide maximum sustainable redundancy at interarrival `iat`
    /// when operations ride in `txn.batch`-op transactions. At
    /// `txn.batch = 1` this equals [`SystemCapacity::max_redundancy`]
    /// exactly.
    pub fn max_redundancy_batched(&self, iat: f64, txn: BatchedTransaction) -> f64 {
        max_redundancy(iat, self.bottleneck_batched(txn).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_one_amortization_is_exactly_one() {
        for f in [0.05, 0.2, 0.7, 1.0] {
            let txn = BatchedTransaction::with_op_fraction(1, f);
            assert_eq!(txn.amortization(), 1.0);
            assert_eq!(txn.expected_fill_latency(0.475), 0.0);
        }
    }

    #[test]
    fn batch_one_capacity_is_bit_identical() {
        let sys = SystemCapacity::paper_2006();
        let txn = BatchedTransaction::identity();
        assert_eq!(sys.bottleneck_batched(txn), sys.bottleneck());
        for iat in [1.0, 5.0, 30.0] {
            assert_eq!(
                sys.max_redundancy_batched(iat, txn),
                sys.max_redundancy(iat)
            );
        }
        assert_eq!(
            sys.max_redundancy_per_component_batched(5.0, txn),
            sys.max_redundancy_per_component(5.0)
        );
    }

    #[test]
    fn amortization_grows_toward_inverse_op_fraction() {
        let txn = BatchedTransaction::of(1_000_000);
        let limit = 1.0 / DEFAULT_OP_FRACTION;
        let a = txn.amortization();
        assert!(a < limit);
        assert!(a > 0.99 * limit, "a = {a}");
    }

    /// The headline question: batching cancels (and submits) lifts the
    /// WS-GRAM bound from r < 3 toward the scheduler's r < 30.
    #[test]
    fn batching_raises_sustainable_redundancy() {
        let sys = SystemCapacity::paper_2006();
        let r1 = sys.max_redundancy_batched(5.0, BatchedTransaction::of(1));
        let r8 = sys.max_redundancy_batched(5.0, BatchedTransaction::of(8));
        let r64 = sys.max_redundancy_batched(5.0, BatchedTransaction::of(64));
        assert!(r1 < 3.0);
        assert!(r8 > 2.0 * r1, "r8 = {r8}");
        assert!(r64 > r8);
        // At the default 0.2 op fraction the amortization limit is 5x, so
        // WS-GRAM stays the bottleneck even at huge batches — but with a
        // near-pure round-trip cost (f = 0.02, limit 50x) the middleware
        // finally clears the scheduler and the bottleneck shifts.
        let (still, _) = sys.bottleneck_batched(BatchedTransaction::of(4096));
        assert_eq!(still, Bottleneck::Middleware);
        let cheap_ops = BatchedTransaction::with_op_fraction(4096, 0.02);
        let (component, _) = sys.bottleneck_batched(cheap_ops);
        assert_ne!(component, Bottleneck::Middleware);
    }

    #[test]
    fn fill_latency_scales_with_batch() {
        let rate = 0.5; // ops per second
        let b4 = BatchedTransaction::of(4).expected_fill_latency(rate);
        let b16 = BatchedTransaction::of(16).expected_fill_latency(rate);
        assert!((b4 - 3.0).abs() < 1e-12); // (4−1)/(2·0.5)
        assert!((b16 - 15.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_rejected() {
        let _ = BatchedTransaction::of(0);
    }
}
