//! The load generator: replays a Lublin–Feitelson arrival stream
//! against a running service.
//!
//! Jobs come from `rbr-workload`'s streaming iterator — nothing is
//! materialized — with every arrival timestamp divided by the rate
//! multiple, so `--rate 2` offers the service twice the calibrated
//! arrival rate on the workload clock. Requests are pipelined on one
//! connection while a reader thread drains acks (the server's
//! per-connection backpressure would otherwise deadlock a single-
//! threaded client at high job counts), and the run ends with a
//! `drain`, whose report is cross-checked against the client's own
//! counts.

use std::io::{Read, Write};
use std::net::TcpStream;

use rbr_simcore::{Duration, SeedSequence};
use rbr_workload::{EstimateModel, LublinConfig, LublinModel};

use crate::wire::{encode_frame, FrameReader, Request, Response, Verdict};

/// Load-generation parameters.
#[derive(Clone, Debug)]
pub struct LoadgenConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Number of jobs to replay.
    pub jobs: usize,
    /// Arrival-rate multiple (2.0 = twice the calibrated rate).
    pub rate: f64,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7206".to_string(),
            jobs: 1_000,
            rate: 1.0,
            seed: 2006,
        }
    }
}

/// What came back from a replay.
#[derive(Clone, Debug, Default)]
pub struct LoadgenStats {
    /// Jobs submitted.
    pub submits: u64,
    /// Submit acks received.
    pub acks: u64,
    /// Acks with a redundant verdict.
    pub redundant: u64,
    /// Acks with a single-copy verdict.
    pub single: u64,
    /// Acks with a shed verdict.
    pub shed: u64,
    /// Highest transaction serial observed.
    pub transactions: u64,
    /// The server's drain report, if the drain completed.
    pub drained: Option<(u64, u64, u64, u64)>,
}

impl LoadgenStats {
    /// True when every submit was acked and the server's drain report
    /// agrees with the client's counts.
    pub fn clean(&self) -> bool {
        match self.drained {
            None => false,
            Some((submits, acks, _txns, shed)) => {
                self.acks == self.submits
                    && submits == self.submits
                    && acks == self.acks
                    && shed == self.shed
            }
        }
    }
}

/// Replays the workload against the service. `Err` means a transport
/// failure or a dirty drain — callers should exit non-zero.
pub fn run(config: &LoadgenConfig) -> Result<LoadgenStats, String> {
    assert!(config.rate > 0.0, "rate multiple must be positive");
    let stream = TcpStream::connect(&config.addr)
        .map_err(|e| format!("cannot connect to {}: {e}", config.addr))?;
    stream.set_nodelay(true).ok();
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone socket: {e}"))?;

    // Reader thread: drains acks until the drain report, keeping the
    // server's write buffer (and ours) from filling up.
    let reader_handle = std::thread::spawn(move || -> Result<LoadgenStats, String> {
        let mut stream = stream;
        let mut reader = FrameReader::new();
        let mut stats = LoadgenStats::default();
        let mut buf = [0u8; 16 * 1024];
        loop {
            while let Some(frame) = reader.next_frame()? {
                match Response::from_json(&frame)? {
                    Response::Ack {
                        verdict,
                        txn: serial,
                        ..
                    } => {
                        stats.acks += 1;
                        stats.transactions = stats.transactions.max(serial);
                        match verdict {
                            Verdict::Redundant => stats.redundant += 1,
                            Verdict::Single => stats.single += 1,
                            Verdict::Shed => stats.shed += 1,
                        }
                    }
                    Response::CancelAck { txn: serial, .. } => {
                        stats.transactions = stats.transactions.max(serial);
                    }
                    Response::Drained {
                        submits,
                        acks,
                        transactions,
                        shed,
                    } => {
                        stats.drained = Some((submits, acks, transactions, shed));
                        return Ok(stats);
                    }
                }
            }
            let n = stream.read(&mut buf).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("server hung up before the drain report".to_string());
            }
            reader.extend(&buf[..n]);
        }
    });

    // Replay the stream: the Lublin model's own arrival process, with
    // timestamps compressed by the rate multiple.
    let model = LublinModel::new(LublinConfig::paper_2006());
    let estimates = EstimateModel::paper_real();
    let mut rng = SeedSequence::new(config.seed).rng();
    let mut submits = 0u64;
    for (id, job) in model
        .stream(&mut rng, Duration::MAX, &estimates)
        .take(config.jobs)
        .enumerate()
    {
        let req = Request::Submit {
            id: id as u64,
            arrival_secs: job.arrival.as_secs() / config.rate,
            nodes: job.nodes,
            runtime_secs: job.runtime.as_secs(),
        };
        writer
            .write_all(&encode_frame(&req.to_json()))
            .map_err(|e| format!("write: {e}"))?;
        submits += 1;
    }
    writer
        .write_all(&encode_frame(&Request::Drain.to_json()))
        .map_err(|e| format!("write: {e}"))?;
    writer.flush().map_err(|e| format!("flush: {e}"))?;

    let mut stats = reader_handle
        .join()
        .map_err(|_| "reader thread panicked".to_string())??;
    stats.submits = submits;
    if !stats.clean() {
        return Err(format!(
            "dirty drain: sent {} submit(s), got {} ack(s), report {:?}",
            stats.submits, stats.acks, stats.drained
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_requires_matching_counts() {
        let mut s = LoadgenStats {
            submits: 10,
            acks: 10,
            shed: 2,
            drained: Some((10, 10, 3, 2)),
            ..LoadgenStats::default()
        };
        assert!(s.clean());
        s.acks = 9;
        assert!(!s.clean());
        s.acks = 10;
        s.drained = None;
        assert!(!s.clean());
    }
}
