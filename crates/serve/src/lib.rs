//! # rbr-serve
//!
//! The online metascheduler service: the paper's batched-transaction
//! remedy, stood up as a long-running admission-controlled TCP daemon.
//!
//! Section 4 shows redundant batch requests are harmful because every
//! submit and cancel pays a full WS-GRAM transaction. This crate is the
//! constructive counterpart: a std-only socket service (no async
//! runtime) that
//!
//! * frames requests as length-prefixed JSON ([`wire`], [`json`]);
//! * coalesces admitted operations into size- or deadline-triggered
//!   transactions ([`batcher`] — the live twin of the simulator's
//!   `BatchedSubmit` protocol);
//! * picks each job's redundancy online from the batched capacity
//!   model, the measured arrival rate, and the Binomial-Method
//!   queue-wait bound ([`admission`]);
//! * runs on a wall or message-driven virtual clock ([`clock`]), so a
//!   fixed seed reproduces the admission log byte for byte;
//! * serves it all from a single-threaded non-blocking poll loop with
//!   per-connection backpressure and graceful drain ([`server`]);
//! * and replays Lublin–Feitelson arrivals against itself at
//!   configurable rate multiples ([`loadgen`]).
//!
//! The `rbr serve` / `rbr loadgen` CLI pair wraps [`server::serve`] and
//! [`loadgen::run`]; the service-smoke CI step byte-diffs two same-seed
//! runs' admission logs through exactly this path.

pub mod admission;
pub mod batcher;
pub mod clock;
pub mod json;
pub mod loadgen;
pub mod server;
pub mod wire;

pub use admission::{AdmissionConfig, AdmissionController, Decision};
pub use batcher::{Batcher, Transaction};
pub use clock::{Clock, ClockMode};
pub use loadgen::{LoadgenConfig, LoadgenStats};
pub use server::{serve, ServerConfig, ServerStats};
pub use wire::{Request, Response, Verdict};
