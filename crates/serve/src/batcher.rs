//! The batching layer: coalesces admitted submit and cancel operations
//! into WS-GRAM-style transactions.
//!
//! Same flush discipline as the simulator's `BatchedSubmit` protocol
//! (`rbr-grid`): a transaction flushes when it holds `size` operations,
//! or when its oldest operation has waited `deadline`, whichever comes
//! first. A submit admitted with redundancy `r` contributes `r`
//! operations (one per target cluster) — the unit the capacity model's
//! amortization is denominated in.

use rbr_faults::BatchSpec;

use crate::wire::Verdict;

/// What kind of operation rides in a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// A job submission (weight = admitted redundancy).
    Submit,
    /// A cancellation of a job's redundant copies (weight 1).
    Cancel,
}

/// One operation waiting for its transaction to flush.
#[derive(Clone, Copy, Debug)]
pub struct PendingOp {
    /// Index of the connection that issued the op.
    pub conn: usize,
    /// Client-chosen job id.
    pub id: u64,
    /// Submit or cancel.
    pub kind: OpKind,
    /// Admitted redundancy (submits) — the op's weight in the batch.
    pub redundancy: u32,
    /// Admission verdict, echoed in the ack.
    pub verdict: Verdict,
}

impl PendingOp {
    fn weight(&self) -> u32 {
        match self.kind {
            OpKind::Submit => self.redundancy.max(1),
            OpKind::Cancel => 1,
        }
    }
}

/// A flushed transaction.
#[derive(Clone, Debug)]
pub struct Transaction {
    /// 1-based transaction serial (0 is reserved for "no transaction").
    pub txn: u64,
    /// The operations that rode in it, in admission order.
    pub ops: Vec<PendingOp>,
}

/// The transaction builder.
#[derive(Debug)]
pub struct Batcher {
    spec: BatchSpec,
    pending: Vec<PendingOp>,
    pending_weight: u32,
    oldest_secs: f64,
    next_txn: u64,
}

impl Batcher {
    /// Creates a batcher. `spec.size <= 1` degenerates to one
    /// transaction per operation (the paper's per-op model).
    pub fn new(spec: BatchSpec) -> Self {
        Batcher {
            spec,
            pending: Vec::new(),
            pending_weight: 0,
            oldest_secs: 0.0,
            next_txn: 1,
        }
    }

    /// Operations currently waiting to flush.
    pub fn pending_ops(&self) -> usize {
        self.pending.len()
    }

    /// Enqueues an operation at `now`; returns the flushed transaction
    /// if this op filled the batch.
    pub fn push(&mut self, op: PendingOp, now_secs: f64) -> Option<Transaction> {
        if self.pending.is_empty() {
            self.oldest_secs = now_secs;
        }
        self.pending_weight += op.weight();
        self.pending.push(op);
        if self.pending_weight >= self.spec.size.max(1) {
            return self.flush();
        }
        None
    }

    /// The instant the current batch must flush by, if one is open.
    pub fn deadline_at(&self) -> Option<f64> {
        if self.pending.is_empty() || self.spec.size <= 1 {
            None
        } else {
            Some(self.oldest_secs + self.spec.deadline.as_secs())
        }
    }

    /// Flushes the open batch if its deadline has passed at `now`.
    pub fn poll_deadline(&mut self, now_secs: f64) -> Option<Transaction> {
        match self.deadline_at() {
            Some(at) if now_secs >= at => self.flush(),
            _ => None,
        }
    }

    /// Unconditionally flushes whatever is pending (drain path).
    pub fn flush(&mut self) -> Option<Transaction> {
        if self.pending.is_empty() {
            return None;
        }
        let txn = self.next_txn;
        self.next_txn += 1;
        self.pending_weight = 0;
        Some(Transaction {
            txn,
            ops: std::mem::take(&mut self.pending),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    fn submit(id: u64, redundancy: u32) -> PendingOp {
        PendingOp {
            conn: 0,
            id,
            kind: OpKind::Submit,
            redundancy,
            verdict: if redundancy > 1 {
                Verdict::Redundant
            } else {
                Verdict::Single
            },
        }
    }

    #[test]
    fn unit_batch_flushes_every_op_immediately() {
        let mut b = Batcher::new(BatchSpec::default());
        let t1 = b.push(submit(1, 1), 0.0).expect("size-1 batch flushes");
        let t2 = b.push(submit(2, 1), 1.0).expect("size-1 batch flushes");
        assert_eq!((t1.txn, t2.txn), (1, 2));
        assert_eq!(b.pending_ops(), 0);
        assert_eq!(b.deadline_at(), None);
    }

    #[test]
    fn size_trigger_counts_redundant_copies() {
        // size 4; a redundancy-3 submit plus one more op fills it.
        let mut b = Batcher::new(BatchSpec::of(4, Duration::from_secs(30.0)));
        assert!(b.push(submit(1, 3), 0.0).is_none());
        let t = b.push(submit(2, 1), 1.0).expect("weight 4 reached");
        assert_eq!(t.ops.len(), 2);
        assert_eq!(t.ops[0].id, 1);
    }

    #[test]
    fn deadline_flushes_a_stalled_batch() {
        let mut b = Batcher::new(BatchSpec::of(8, Duration::from_secs(30.0)));
        assert!(b.push(submit(1, 1), 10.0).is_none());
        assert_eq!(b.deadline_at(), Some(40.0));
        assert!(b.poll_deadline(39.9).is_none());
        let t = b.poll_deadline(40.0).expect("deadline reached");
        assert_eq!(t.ops.len(), 1);
        assert!(b.poll_deadline(100.0).is_none(), "nothing left to flush");
    }

    #[test]
    fn drain_flush_takes_everything() {
        let mut b = Batcher::new(BatchSpec::of(100, Duration::from_secs(30.0)));
        b.push(submit(1, 2), 0.0);
        b.push(
            PendingOp {
                conn: 1,
                id: 1,
                kind: OpKind::Cancel,
                redundancy: 0,
                verdict: Verdict::Redundant,
            },
            1.0,
        );
        let t = b.flush().expect("pending ops");
        assert_eq!(t.ops.len(), 2);
        assert_eq!(b.pending_ops(), 0);
        assert!(b.flush().is_none());
    }
}
