//! The wire protocol: length-prefixed JSON frames and the request /
//! response vocabulary.
//!
//! A frame is `<len>:<json>\n` — the payload's byte length in ASCII
//! decimal, a colon, the JSON document, and a terminating newline. The
//! prefix lets a reader allocate exactly once and never scan JSON for
//! frame boundaries; the newline keeps captures greppable and makes a
//! torn frame detectable.

use crate::json::Json;

/// Upper bound on a single frame payload; anything larger is a protocol
/// error, not a buffering request.
pub const MAX_FRAME: usize = 64 * 1024;

/// What the admission controller decided for one submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted with more than one copy.
    Redundant,
    /// Admitted with a single copy (load too high for redundancy).
    Single,
    /// Rejected outright: the rate limiter had no token for even one
    /// copy.
    Shed,
}

impl Verdict {
    /// Stable wire / log spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Redundant => "redundant",
            Verdict::Single => "single",
            Verdict::Shed => "shed",
        }
    }

    fn parse(s: &str) -> Option<Verdict> {
        match s {
            "redundant" => Some(Verdict::Redundant),
            "single" => Some(Verdict::Single),
            "shed" => Some(Verdict::Shed),
            _ => None,
        }
    }
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit one job. `arrival_secs` is the job's position on the
    /// workload's clock; in virtual-clock mode it *is* the service
    /// clock.
    Submit {
        /// Client-chosen job id, echoed in the ack.
        id: u64,
        /// Arrival instant (seconds on the workload clock).
        arrival_secs: f64,
        /// Nodes requested.
        nodes: u32,
        /// Requested runtime (seconds).
        runtime_secs: f64,
    },
    /// Cancel a previously submitted job's redundant copies.
    Cancel {
        /// The job id being cancelled.
        id: u64,
        /// Cancel instant (seconds on the workload clock).
        arrival_secs: f64,
    },
    /// Flush everything, report totals, and shut the service down.
    Drain,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A submission's admission outcome. Sent when the op's transaction
    /// flushes (shed submissions never join a transaction and are acked
    /// immediately with `txn = 0`).
    Ack {
        /// The submitted job id.
        id: u64,
        /// Copies admitted (0 when shed).
        redundancy: u32,
        /// Admission verdict.
        verdict: Verdict,
        /// Transaction serial the op rode in (0 when shed).
        txn: u64,
    },
    /// A cancel's transaction receipt.
    CancelAck {
        /// The cancelled job id.
        id: u64,
        /// Transaction serial the cancel rode in.
        txn: u64,
    },
    /// Terminal drain report.
    Drained {
        /// Submissions received over the service's lifetime.
        submits: u64,
        /// Acks sent (must equal `submits` + cancels for a clean drain).
        acks: u64,
        /// Transactions dispatched.
        transactions: u64,
        /// Submissions shed by the rate limiter.
        shed: u64,
    },
}

impl Request {
    /// Renders as a JSON document (no framing).
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit {
                id,
                arrival_secs,
                nodes,
                runtime_secs,
            } => Json::obj(vec![
                ("type", Json::Str("submit".to_string())),
                ("id", Json::Num(*id as f64)),
                ("arrival", Json::Num(*arrival_secs)),
                ("nodes", Json::Num(f64::from(*nodes))),
                ("runtime", Json::Num(*runtime_secs)),
            ])
            .render(),
            Request::Cancel { id, arrival_secs } => Json::obj(vec![
                ("type", Json::Str("cancel".to_string())),
                ("id", Json::Num(*id as f64)),
                ("arrival", Json::Num(*arrival_secs)),
            ])
            .render(),
            Request::Drain => Json::obj(vec![("type", Json::Str("drain".to_string()))]).render(),
        }
    }

    /// Parses a JSON document into a request.
    pub fn from_json(text: &str) -> Result<Request, String> {
        let v = Json::parse(text)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("request missing \"type\"")?;
        let num = |key: &str| {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("request missing numeric {key:?}"))
        };
        let id = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("request missing integer {key:?}"))
        };
        match kind {
            "submit" => Ok(Request::Submit {
                id: id("id")?,
                arrival_secs: num("arrival")?,
                nodes: id("nodes")? as u32,
                runtime_secs: num("runtime")?,
            }),
            "cancel" => Ok(Request::Cancel {
                id: id("id")?,
                arrival_secs: num("arrival")?,
            }),
            "drain" => Ok(Request::Drain),
            other => Err(format!("unknown request type {other:?}")),
        }
    }
}

impl Response {
    /// Renders as a JSON document (no framing).
    pub fn to_json(&self) -> String {
        match self {
            Response::Ack {
                id,
                redundancy,
                verdict,
                txn,
            } => Json::obj(vec![
                ("type", Json::Str("ack".to_string())),
                ("id", Json::Num(*id as f64)),
                ("redundancy", Json::Num(f64::from(*redundancy))),
                ("verdict", Json::Str(verdict.as_str().to_string())),
                ("txn", Json::Num(*txn as f64)),
            ])
            .render(),
            Response::CancelAck { id, txn } => Json::obj(vec![
                ("type", Json::Str("cancel-ack".to_string())),
                ("id", Json::Num(*id as f64)),
                ("txn", Json::Num(*txn as f64)),
            ])
            .render(),
            Response::Drained {
                submits,
                acks,
                transactions,
                shed,
            } => Json::obj(vec![
                ("type", Json::Str("drained".to_string())),
                ("submits", Json::Num(*submits as f64)),
                ("acks", Json::Num(*acks as f64)),
                ("transactions", Json::Num(*transactions as f64)),
                ("shed", Json::Num(*shed as f64)),
            ])
            .render(),
        }
    }

    /// Parses a JSON document into a response.
    pub fn from_json(text: &str) -> Result<Response, String> {
        let v = Json::parse(text)?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or("response missing \"type\"")?;
        let id = |key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("response missing integer {key:?}"))
        };
        match kind {
            "ack" => Ok(Response::Ack {
                id: id("id")?,
                redundancy: id("redundancy")? as u32,
                verdict: v
                    .get("verdict")
                    .and_then(Json::as_str)
                    .and_then(Verdict::parse)
                    .ok_or("bad verdict")?,
                txn: id("txn")?,
            }),
            "cancel-ack" => Ok(Response::CancelAck {
                id: id("id")?,
                txn: id("txn")?,
            }),
            "drained" => Ok(Response::Drained {
                submits: id("submits")?,
                acks: id("acks")?,
                transactions: id("transactions")?,
                shed: id("shed")?,
            }),
            other => Err(format!("unknown response type {other:?}")),
        }
    }
}

/// Wraps a JSON document in a `<len>:<json>\n` frame.
pub fn encode_frame(json: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(json.len() + 12);
    out.extend_from_slice(json.len().to_string().as_bytes());
    out.push(b':');
    out.extend_from_slice(json.as_bytes());
    out.push(b'\n');
    out
}

/// Incremental frame decoder over a byte stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// Creates an empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw bytes read from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet framed (non-zero after EOF = torn
    /// frame).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete frame's JSON payload, or `None` if
    /// more bytes are needed. A malformed prefix is a hard error.
    pub fn next_frame(&mut self) -> Result<Option<String>, String> {
        let colon = match self.buf.iter().position(|&b| b == b':') {
            Some(i) => i,
            None => {
                if self.buf.len() > 20 {
                    return Err("frame prefix too long".to_string());
                }
                return Ok(None);
            }
        };
        let prefix = std::str::from_utf8(&self.buf[..colon]).map_err(|e| e.to_string())?;
        let len: usize = prefix
            .parse()
            .map_err(|e| format!("bad frame length {prefix:?}: {e}"))?;
        if len > MAX_FRAME {
            return Err(format!("frame of {len} bytes exceeds {MAX_FRAME}"));
        }
        let total = colon + 1 + len + 1; // prefix, ':', payload, '\n'
        if self.buf.len() < total {
            return Ok(None);
        }
        if self.buf[total - 1] != b'\n' {
            return Err("frame missing trailing newline".to_string());
        }
        let payload = std::str::from_utf8(&self.buf[colon + 1..total - 1])
            .map_err(|e| e.to_string())?
            .to_string();
        self.buf.drain(..total);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Submit {
                id: 7,
                arrival_secs: 12.5,
                nodes: 32,
                runtime_secs: 600.0,
            },
            Request::Cancel {
                id: 7,
                arrival_secs: 13.0,
            },
            Request::Drain,
        ] {
            assert_eq!(Request::from_json(&req.to_json()).unwrap(), req);
        }
    }

    #[test]
    fn responses_roundtrip() {
        for resp in [
            Response::Ack {
                id: 7,
                redundancy: 3,
                verdict: Verdict::Redundant,
                txn: 11,
            },
            Response::Ack {
                id: 8,
                redundancy: 0,
                verdict: Verdict::Shed,
                txn: 0,
            },
            Response::CancelAck { id: 7, txn: 12 },
            Response::Drained {
                submits: 100,
                acks: 100,
                transactions: 13,
                shed: 4,
            },
        ] {
            assert_eq!(Response::from_json(&resp.to_json()).unwrap(), resp);
        }
    }

    #[test]
    fn frames_reassemble_from_arbitrary_chunking() {
        let a = encode_frame(&Request::Drain.to_json());
        let b = encode_frame(
            &Request::Submit {
                id: 1,
                arrival_secs: 0.5,
                nodes: 1,
                runtime_secs: 1.0,
            }
            .to_json(),
        );
        let stream: Vec<u8> = a.iter().chain(b.iter()).copied().collect();
        // Feed one byte at a time: framing must not care about chunk
        // boundaries.
        let mut reader = FrameReader::new();
        let mut frames = Vec::new();
        for byte in stream {
            reader.extend(&[byte]);
            while let Some(f) = reader.next_frame().unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(Request::from_json(&frames[0]).unwrap(), Request::Drain);
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn bad_prefixes_are_hard_errors() {
        let mut reader = FrameReader::new();
        reader.extend(b"xx:{}\n");
        assert!(reader.next_frame().is_err());
        let mut reader = FrameReader::new();
        reader.extend(b"999999999:");
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn torn_frames_are_visible() {
        let mut reader = FrameReader::new();
        reader.extend(b"10:{\"a\"");
        assert_eq!(reader.next_frame().unwrap(), None);
        assert!(reader.buffered() > 0);
    }
}
