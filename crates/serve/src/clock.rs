//! The service clock: wall time for deployment, virtual time for
//! byte-reproducible tests.
//!
//! In virtual mode the clock only moves when a message carries a later
//! workload timestamp — the same discipline as `RBR_FIXED_WALL_TIME` in
//! the report layer, extended to a live socket service. Every
//! time-dependent decision (EWMA load, token refill, deadline flush)
//! then becomes a pure function of the request stream, which is what
//! lets CI byte-diff two admission logs.

use std::time::Instant;

/// Which clock the service runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Real elapsed time since service start.
    Wall,
    /// Time = the largest workload timestamp seen so far.
    Virtual,
}

impl ClockMode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<ClockMode> {
        match s {
            "wall" => Some(ClockMode::Wall),
            "virtual" => Some(ClockMode::Virtual),
            _ => None,
        }
    }
}

/// A monotonic service clock in either mode.
#[derive(Debug)]
pub struct Clock {
    mode: ClockMode,
    start: Instant,
    virtual_secs: f64,
}

impl Clock {
    /// Creates a clock at t = 0.
    pub fn new(mode: ClockMode) -> Self {
        Clock {
            mode,
            start: Instant::now(),
            virtual_secs: 0.0,
        }
    }

    /// The clock's mode.
    pub fn mode(&self) -> ClockMode {
        self.mode
    }

    /// Current time in seconds since service start.
    pub fn now_secs(&self) -> f64 {
        match self.mode {
            ClockMode::Wall => self.start.elapsed().as_secs_f64(),
            ClockMode::Virtual => self.virtual_secs,
        }
    }

    /// Advances a virtual clock to `t` (no-op if `t` is in the past, or
    /// in wall mode — wall time advances itself).
    pub fn advance_to(&mut self, t_secs: f64) {
        if self.mode == ClockMode::Virtual && t_secs > self.virtual_secs {
            self.virtual_secs = t_secs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_is_message_driven_and_monotone() {
        let mut c = Clock::new(ClockMode::Virtual);
        assert_eq!(c.now_secs(), 0.0);
        c.advance_to(5.0);
        assert_eq!(c.now_secs(), 5.0);
        c.advance_to(3.0); // stale timestamp must not rewind
        assert_eq!(c.now_secs(), 5.0);
    }

    #[test]
    fn wall_clock_ignores_advance() {
        let mut c = Clock::new(ClockMode::Wall);
        c.advance_to(1e9);
        assert!(c.now_secs() < 1e6, "advance_to must not touch wall time");
    }

    #[test]
    fn modes_parse() {
        assert_eq!(ClockMode::parse("wall"), Some(ClockMode::Wall));
        assert_eq!(ClockMode::parse("virtual"), Some(ClockMode::Virtual));
        assert_eq!(ClockMode::parse("cpu"), None);
    }
}
