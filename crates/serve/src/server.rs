//! The metascheduler service: a single-threaded, non-blocking TCP poll
//! loop over the framing, batching, and admission layers.
//!
//! One thread is deliberate: requests are processed strictly in the
//! order they complete framing, so a single-connection client (like
//! `rbr loadgen`) observes admission decisions that are a pure function
//! of its request stream — the determinism the service-smoke CI gate
//! byte-diffs. Multiple connections are supported (each gets its own
//! frame reader, write buffer, and backpressure), but cross-connection
//! interleaving is then up to the kernel, as with any socket service.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration as StdDuration;

use rbr_faults::BatchSpec;

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::batcher::{Batcher, OpKind, PendingOp, Transaction};
use crate::clock::{Clock, ClockMode};
use crate::wire::{encode_frame, FrameReader, Request, Response, Verdict};

/// A connection stops being read while its write buffer holds more than
/// this many bytes: the client must drain acks before sending more work.
const BACKPRESSURE_BYTES: usize = 256 * 1024;

/// Poll-loop sleep when nothing is readable.
const IDLE_SLEEP: StdDuration = StdDuration::from_millis(1);

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Transaction size and flush deadline for the batching layer.
    pub batch: BatchSpec,
    /// Admission-controller tuning.
    pub admission: AdmissionConfig,
    /// Wall or virtual clock.
    pub clock: ClockMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: BatchSpec::default(),
            admission: AdmissionConfig::default(),
            clock: ClockMode::Virtual,
        }
    }
}

/// Lifetime totals, returned after a graceful drain.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Submissions received.
    pub submits: u64,
    /// Cancels received.
    pub cancels: u64,
    /// Acks written (submit acks + cancel acks).
    pub acks: u64,
    /// Transactions dispatched.
    pub transactions: u64,
    /// Submissions shed by the rate limiter.
    pub shed: u64,
    /// One admission log line per submission, in decision order.
    pub admission_log: Vec<String>,
}

/// Registry handles and trace flags, resolved once per [`serve`] call
/// so the poll loop never touches the registry lock. Registration is
/// harmless while metrics are disabled; every update is then one
/// relaxed load and an untaken branch.
struct ObsHandles {
    submits: rbr_obs::Counter,
    cancels: rbr_obs::Counter,
    acks: rbr_obs::Counter,
    transactions: rbr_obs::Counter,
    shed: rbr_obs::Counter,
    throttles: rbr_obs::Counter,
    drain_leaks: rbr_obs::Counter,
    batch_fill: rbr_obs::Histogram,
    trace_on: bool,
    trace_clock: rbr_obs::Clock,
}

impl ObsHandles {
    fn new(mode: ClockMode) -> ObsHandles {
        ObsHandles {
            submits: rbr_obs::metrics::counter("serve.submits"),
            cancels: rbr_obs::metrics::counter("serve.cancels"),
            acks: rbr_obs::metrics::counter("serve.acks"),
            transactions: rbr_obs::metrics::counter("serve.transactions"),
            shed: rbr_obs::metrics::counter("serve.shed"),
            throttles: rbr_obs::metrics::counter("serve.backpressure_throttles"),
            drain_leaks: rbr_obs::metrics::counter("serve.drain_leaks"),
            batch_fill: rbr_obs::metrics::histogram("serve.batch_fill"),
            trace_on: rbr_obs::trace::enabled(),
            trace_clock: match mode {
                ClockMode::Virtual => rbr_obs::Clock::Sim,
                ClockMode::Wall => rbr_obs::Clock::Wall,
            },
        }
    }
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    wbuf: Vec<u8>,
    open: bool,
}

impl Conn {
    fn throttled(&self) -> bool {
        self.wbuf.len() > BACKPRESSURE_BYTES
    }

    fn queue(&mut self, resp: &Response) {
        self.wbuf.extend_from_slice(&encode_frame(&resp.to_json()));
    }

    /// Writes as much of the buffer as the socket will take.
    fn pump(&mut self) {
        while !self.wbuf.is_empty() && self.open {
            match self.stream.write(&self.wbuf) {
                Ok(0) => {
                    self.open = false;
                }
                Ok(n) => {
                    self.wbuf.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.open = false;
                }
            }
        }
    }
}

/// Runs the service on an already-bound listener until a client sends
/// `drain`. Returns the lifetime stats on a clean drain; an `Err` means
/// acks were lost (a client vanished with receipts outstanding) or the
/// listener failed — callers should exit non-zero.
pub fn serve(listener: TcpListener, config: &ServerConfig) -> Result<ServerStats, String> {
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("listener: {e}"))?;
    let mut clock = Clock::new(config.clock);
    let mut batcher = Batcher::new(config.batch);
    let mut admission = AdmissionController::new(config.admission.clone());
    let mut conns: Vec<Conn> = Vec::new();
    let mut stats = ServerStats::default();
    let obs = ObsHandles::new(config.clock);
    // Every op owes exactly one ack until its transaction delivers; the
    // drain leak detector names whatever is still here.
    let mut acks_owed: Vec<(usize, u64)> = Vec::new();
    let mut drain_requested_by: Option<usize> = None;
    let mut rbuf = [0u8; 16 * 1024];

    loop {
        // Accept anything pending.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    stream
                        .set_nonblocking(true)
                        .map_err(|e| format!("accept: {e}"))?;
                    conns.push(Conn {
                        stream,
                        reader: FrameReader::new(),
                        wbuf: Vec::new(),
                        open: true,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => return Err(format!("accept: {e}")),
            }
        }

        // Read and process every connection that is not throttled.
        let mut progressed = false;
        for ci in 0..conns.len() {
            if !conns[ci].open || conns[ci].throttled() {
                continue;
            }
            match conns[ci].stream.read(&mut rbuf) {
                Ok(0) => {
                    conns[ci].open = false;
                }
                Ok(n) => {
                    progressed = true;
                    conns[ci].reader.extend(&rbuf[..n]);
                    loop {
                        let frame = conns[ci]
                            .reader
                            .next_frame()
                            .map_err(|e| format!("connection {ci}: {e}"))?;
                        let Some(payload) = frame else { break };
                        let req = Request::from_json(&payload)
                            .map_err(|e| format!("connection {ci}: {e}"))?;
                        handle_request(
                            ci,
                            req,
                            &mut clock,
                            &mut batcher,
                            &mut admission,
                            &mut conns,
                            &mut stats,
                            &mut acks_owed,
                            &mut drain_requested_by,
                            &obs,
                        );
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {}
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conns[ci].open = false;
                }
            }
        }

        // Wall-clock deadline flushes (virtual-clock deadlines fire from
        // arrival timestamps inside handle_request).
        if clock.mode() == ClockMode::Wall {
            if let Some(txn) = batcher.poll_deadline(clock.now_secs()) {
                deliver(
                    txn,
                    clock.now_secs(),
                    &mut conns,
                    &mut stats,
                    &mut acks_owed,
                    &obs,
                );
            }
        }

        for conn in &mut conns {
            conn.pump();
        }

        if let Some(ci) = drain_requested_by {
            // Everything is flushed by now (handle_request drains the
            // batcher synchronously); finish writing, report, and stop.
            let drained = Response::Drained {
                submits: stats.submits,
                acks: stats.acks,
                transactions: stats.transactions,
                shed: stats.shed,
            };
            if let Some(conn) = conns.get_mut(ci) {
                conn.queue(&drained);
            }
            for conn in &mut conns {
                while !conn.wbuf.is_empty() && conn.open {
                    conn.pump();
                    if !conn.wbuf.is_empty() {
                        std::thread::sleep(IDLE_SLEEP);
                    }
                }
            }
            let lost: usize = conns.iter().map(|c| c.wbuf.len()).sum();
            if let Some(report) = leak_report(&acks_owed, lost) {
                obs.drain_leaks.add(acks_owed.len() as u64);
                return Err(report);
            }
            return Ok(stats);
        }

        if !progressed {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_request(
    ci: usize,
    req: Request,
    clock: &mut Clock,
    batcher: &mut Batcher,
    admission: &mut AdmissionController,
    conns: &mut [Conn],
    stats: &mut ServerStats,
    acks_owed: &mut Vec<(usize, u64)>,
    drain_requested_by: &mut Option<usize>,
    obs: &ObsHandles,
) {
    match req {
        Request::Submit {
            id,
            arrival_secs,
            nodes,
            runtime_secs,
        } => {
            // A later arrival first fires any deadline the open batch
            // crossed — the same order the simulator's flush_instants
            // pass uses.
            clock.advance_to(arrival_secs);
            if let Some(txn) = batcher.poll_deadline(clock.now_secs()) {
                deliver(txn, clock.now_secs(), conns, stats, acks_owed, obs);
            }
            stats.submits += 1;
            obs.submits.inc();
            let decision = admission.decide(id, clock.now_secs(), nodes, runtime_secs);
            stats.admission_log.push(decision.log_line());
            if decision.verdict == Verdict::Shed {
                stats.shed += 1;
                stats.acks += 1;
                obs.shed.inc();
                obs.acks.inc();
                conns[ci].queue(&Response::Ack {
                    id,
                    redundancy: 0,
                    verdict: Verdict::Shed,
                    txn: 0,
                });
                return;
            }
            acks_owed.push((ci, id));
            let flushed = batcher.push(
                PendingOp {
                    conn: ci,
                    id,
                    kind: OpKind::Submit,
                    redundancy: decision.redundancy,
                    verdict: decision.verdict,
                },
                clock.now_secs(),
            );
            if let Some(txn) = flushed {
                deliver(txn, clock.now_secs(), conns, stats, acks_owed, obs);
            }
        }
        Request::Cancel { id, arrival_secs } => {
            clock.advance_to(arrival_secs);
            if let Some(txn) = batcher.poll_deadline(clock.now_secs()) {
                deliver(txn, clock.now_secs(), conns, stats, acks_owed, obs);
            }
            stats.cancels += 1;
            obs.cancels.inc();
            acks_owed.push((ci, id));
            let flushed = batcher.push(
                PendingOp {
                    conn: ci,
                    id,
                    kind: OpKind::Cancel,
                    redundancy: 0,
                    verdict: Verdict::Redundant,
                },
                clock.now_secs(),
            );
            if let Some(txn) = flushed {
                deliver(txn, clock.now_secs(), conns, stats, acks_owed, obs);
            }
        }
        Request::Drain => {
            if let Some(txn) = batcher.flush() {
                deliver(txn, clock.now_secs(), conns, stats, acks_owed, obs);
            }
            *drain_requested_by = Some(ci);
        }
    }
}

/// Builds the drain-leak error, naming every op still owed an ack by
/// its connection and job id so the offender is identifiable from the
/// exit message alone. `None` means the drain was clean.
fn leak_report(acks_owed: &[(usize, u64)], lost_bytes: usize) -> Option<String> {
    if acks_owed.is_empty() && lost_bytes == 0 {
        return None;
    }
    let offenders = if acks_owed.is_empty() {
        "none".to_string()
    } else {
        acks_owed
            .iter()
            .map(|(conn, id)| format!("conn {conn} job {id}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    Some(format!(
        "drain leaked {} unacked op(s) [{offenders}] and {lost_bytes} unwritten byte(s)",
        acks_owed.len()
    ))
}

/// Turns a flushed transaction into acks on the owning connections.
fn deliver(
    txn: Transaction,
    now: f64,
    conns: &mut [Conn],
    stats: &mut ServerStats,
    acks_owed: &mut Vec<(usize, u64)>,
    obs: &ObsHandles,
) {
    stats.transactions += 1;
    obs.transactions.inc();
    obs.batch_fill.observe(txn.ops.len() as u64);
    if obs.trace_on {
        rbr_obs::trace::event(
            obs.trace_clock,
            now,
            "serve.txn",
            &[
                ("txn", rbr_obs::trace::Field::U64(txn.txn)),
                ("ops", rbr_obs::trace::Field::U64(txn.ops.len() as u64)),
            ],
        );
    }
    for op in &txn.ops {
        let resp = match op.kind {
            OpKind::Submit => Response::Ack {
                id: op.id,
                redundancy: op.redundancy,
                verdict: op.verdict,
                txn: txn.txn,
            },
            OpKind::Cancel => Response::CancelAck {
                id: op.id,
                txn: txn.txn,
            },
        };
        stats.acks += 1;
        obs.acks.inc();
        if let Some(pos) = acks_owed
            .iter()
            .position(|&(conn, id)| conn == op.conn && id == op.id)
        {
            acks_owed.remove(pos);
        }
        if let Some(conn) = conns.get_mut(op.conn) {
            if conn.open {
                let was_throttled = conn.throttled();
                conn.queue(&resp);
                if !was_throttled && conn.throttled() {
                    obs.throttles.inc();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpStream as ClientStream;

    fn start(
        config: ServerConfig,
    ) -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<Result<ServerStats, String>>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let handle = std::thread::spawn(move || serve(listener, &config));
        (addr, handle)
    }

    fn send(stream: &mut ClientStream, req: &Request) {
        stream
            .write_all(&encode_frame(&req.to_json()))
            .expect("write");
    }

    fn read_response(stream: &mut ClientStream, reader: &mut FrameReader) -> Response {
        let mut buf = [0u8; 4096];
        loop {
            if let Some(frame) = reader.next_frame().expect("frame") {
                return Response::from_json(&frame).expect("response");
            }
            let n = stream.read(&mut buf).expect("read");
            assert!(n > 0, "server hung up early");
            reader.extend(&buf[..n]);
        }
    }

    #[test]
    fn leak_report_names_each_offending_op() {
        assert_eq!(leak_report(&[], 0), None);
        let report = leak_report(&[(0, 7), (2, 9)], 0).expect("two leaks");
        assert_eq!(
            report,
            "drain leaked 2 unacked op(s) [conn 0 job 7, conn 2 job 9] and 0 unwritten byte(s)"
        );
        // Lost bytes alone still fail the drain, with no ops to name.
        let report = leak_report(&[], 33).expect("lost bytes");
        assert_eq!(
            report,
            "drain leaked 0 unacked op(s) [none] and 33 unwritten byte(s)"
        );
    }

    #[test]
    fn submit_ack_drain_roundtrip() {
        let (addr, handle) = start(ServerConfig::default());
        let mut stream = ClientStream::connect(addr).expect("connect");
        let mut reader = FrameReader::new();
        send(
            &mut stream,
            &Request::Submit {
                id: 1,
                arrival_secs: 0.0,
                nodes: 8,
                runtime_secs: 60.0,
            },
        );
        // Default batch size is 1: the ack arrives without a drain.
        let ack = read_response(&mut stream, &mut reader);
        match ack {
            Response::Ack { id: 1, txn: 1, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        send(&mut stream, &Request::Drain);
        match read_response(&mut stream, &mut reader) {
            Response::Drained {
                submits: 1, acks, ..
            } => assert_eq!(acks, 1),
            other => panic!("unexpected {other:?}"),
        }
        let stats = handle.join().expect("join").expect("clean drain");
        assert_eq!(stats.admission_log.len(), 1);
    }

    #[test]
    fn drain_flushes_a_partial_batch() {
        let config = ServerConfig {
            batch: BatchSpec::of(64, rbr_simcore::Duration::from_secs(1e6)),
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config);
        let mut stream = ClientStream::connect(addr).expect("connect");
        let mut reader = FrameReader::new();
        for id in 0..5 {
            send(
                &mut stream,
                &Request::Submit {
                    id,
                    arrival_secs: id as f64,
                    nodes: 1,
                    runtime_secs: 60.0,
                },
            );
        }
        send(&mut stream, &Request::Drain);
        // All five acks must arrive (flushed by the drain), then the
        // drain report.
        let mut acks = 0;
        loop {
            match read_response(&mut stream, &mut reader) {
                Response::Ack { txn, .. } => {
                    assert_eq!(txn, 1, "one transaction for the whole batch");
                    acks += 1;
                }
                Response::Drained {
                    submits,
                    acks: reported,
                    transactions,
                    ..
                } => {
                    assert_eq!((submits, reported, transactions), (5, 5, 1));
                    break;
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(acks, 5);
        handle.join().expect("join").expect("clean drain");
    }

    #[test]
    fn virtual_deadline_flushes_from_a_later_arrival() {
        let config = ServerConfig {
            batch: BatchSpec::of(64, rbr_simcore::Duration::from_secs(30.0)),
            ..ServerConfig::default()
        };
        let (addr, handle) = start(config);
        let mut stream = ClientStream::connect(addr).expect("connect");
        let mut reader = FrameReader::new();
        send(
            &mut stream,
            &Request::Submit {
                id: 1,
                arrival_secs: 0.0,
                nodes: 1,
                runtime_secs: 60.0,
            },
        );
        // An arrival 100 virtual seconds later crosses the 30 s
        // deadline: job 1's ack must flush in txn 1 before job 2 is
        // even admitted.
        send(
            &mut stream,
            &Request::Submit {
                id: 2,
                arrival_secs: 100.0,
                nodes: 1,
                runtime_secs: 60.0,
            },
        );
        match read_response(&mut stream, &mut reader) {
            Response::Ack { id: 1, txn: 1, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
        send(&mut stream, &Request::Drain);
        loop {
            if let Response::Drained { transactions, .. } = read_response(&mut stream, &mut reader)
            {
                assert_eq!(transactions, 2, "deadline flush plus drain flush");
                break;
            }
        }
        handle.join().expect("join").expect("clean drain");
    }
}
