//! The online admission controller: picks each job's redundancy from
//! the capacity model, the measured arrival rate, and the binomial
//! queue-wait bound.
//!
//! Three signals, in the order they gate:
//!
//! 1. **Rate limiter** — a token bucket refilled at the *batched*
//!    bottleneck rate (`SystemCapacity::bottleneck_batched`). Each
//!    admitted copy spends one token; no token for even one copy means
//!    the job is shed. This is the paper's §4 capacity arithmetic acting
//!    as a hard backstop.
//! 2. **Load threshold** — Shah/Lee/Ramchandran: redundancy reduces
//!    latency only while the system is lightly loaded. The controller
//!    estimates the arrival rate with an EWMA over interarrivals and
//!    allows `r` copies only while `λ·r ≤ threshold × bottleneck rate`,
//!    i.e. `r ≤ threshold × max_redundancy_batched(iat)`.
//! 3. **Forecast bound** — the Binomial-Method upper bound on the
//!    95th-percentile queue wait (`rbr-forecast`), fed with the
//!    controller's own fluid wait estimates. Once warmed up, a bound
//!    under 10 % of the job's runtime means queues are short and
//!    redundancy buys nothing: the job goes in with a single copy.
//!
//! Every input is either configuration or derived from the request
//! stream, so with a virtual clock the full decision log is a pure
//! function of `(requests, config)` — bit-reproducible.

use rbr_forecast::QuantilePredictor;
use rbr_middleware::{BatchedTransaction, SystemCapacity};

use crate::wire::Verdict;

/// Tuning knobs for the controller.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Clusters available to place copies on (caps redundancy).
    pub clusters: u32,
    /// Ops per WS-GRAM transaction (the batching the rate limiter
    /// credits).
    pub batch: u32,
    /// Total nodes across the pool (for the fluid backlog model).
    pub total_nodes: f64,
    /// Fraction of the bottleneck rate the controller will spend
    /// (Shah/Lee/Ramchandran load threshold).
    pub load_threshold: f64,
    /// Token-bucket burst, in copies.
    pub burst: f64,
    /// EWMA weight for the interarrival estimate.
    pub ewma_alpha: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            clusters: 5,
            batch: 1,
            total_nodes: 5.0 * 128.0,
            load_threshold: 0.8,
            burst: 16.0,
            ewma_alpha: 0.1,
        }
    }
}

/// One admission decision, ready for the log and the ack.
#[derive(Clone, Copy, Debug)]
pub struct Decision {
    /// The job id the decision is for.
    pub id: u64,
    /// Copies admitted (0 when shed).
    pub redundancy: u32,
    /// The verdict.
    pub verdict: Verdict,
    /// Measured offered load `λ / bottleneck rate` at decision time.
    pub load: f64,
    /// Fluid queue-wait estimate at arrival (seconds).
    pub wait_est_secs: f64,
    /// Forecast bound on the 95th-percentile wait, if warmed up.
    pub bound_secs: Option<f64>,
}

impl Decision {
    /// The canonical log line. Fixed-precision formatting keeps the
    /// line byte-stable for CI's `diff` gate.
    pub fn log_line(&self) -> String {
        let bound = match self.bound_secs {
            None => "-".to_string(),
            Some(b) => format!("{b:.3}"),
        };
        format!(
            "job={} r={} verdict={} load={:.4} wait={:.3} bound={}",
            self.id,
            self.redundancy,
            self.verdict.as_str(),
            self.load,
            self.wait_est_secs,
            bound
        )
    }
}

/// The controller itself.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    /// Amortized sustainable submission rate (copies/s) of the binding
    /// component — the token refill rate.
    rate: f64,
    tokens: f64,
    tokens_at: f64,
    ewma_iat: Option<f64>,
    last_arrival: Option<f64>,
    /// Outstanding work in wait-seconds of the fluid single-queue model.
    backlog_secs: f64,
    backlog_at: f64,
    predictor: QuantilePredictor,
}

impl AdmissionController {
    /// Creates a controller over the paper's calibrated capacity model.
    pub fn new(config: AdmissionConfig) -> Self {
        let sys = SystemCapacity::paper_2006();
        let txn = BatchedTransaction::of(config.batch.max(1));
        let (_, rate) = sys.bottleneck_batched(txn);
        let burst = config.burst;
        AdmissionController {
            config,
            rate,
            tokens: burst,
            tokens_at: 0.0,
            ewma_iat: None,
            last_arrival: None,
            backlog_secs: 0.0,
            backlog_at: 0.0,
            predictor: QuantilePredictor::qbets_default(),
        }
    }

    /// The token refill rate (copies per second) — the batched
    /// bottleneck rate of the capacity model.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Decides redundancy for one submission arriving at `now_secs`.
    pub fn decide(&mut self, id: u64, now_secs: f64, nodes: u32, runtime_secs: f64) -> Decision {
        // Refill the bucket for the time elapsed since the last spend.
        let dt = (now_secs - self.tokens_at).max(0.0);
        self.tokens = (self.tokens + dt * self.rate).min(self.config.burst);
        self.tokens_at = now_secs;

        // Drain the fluid backlog for the elapsed time, then read the
        // wait this job would see and feed the forecaster.
        let bt = (now_secs - self.backlog_at).max(0.0);
        self.backlog_secs = (self.backlog_secs - bt).max(0.0);
        self.backlog_at = now_secs;
        let wait_est = self.backlog_secs;
        self.predictor.observe(wait_est);
        let bound = self.predictor.predict();

        // Measured arrival rate via EWMA of interarrivals.
        if let Some(last) = self.last_arrival {
            let iat = (now_secs - last).max(1e-6);
            let a = self.config.ewma_alpha;
            self.ewma_iat = Some(match self.ewma_iat {
                None => iat,
                Some(prev) => (1.0 - a) * prev + a * iat,
            });
        }
        self.last_arrival = Some(now_secs);

        let load = match self.ewma_iat {
            Some(iat) => 1.0 / (iat * self.rate),
            None => 0.0,
        };

        // Redundancy allowed by the load threshold (∞ while unmeasured),
        // capped by the cluster count.
        let r_load = match self.ewma_iat {
            None => f64::from(self.config.clusters),
            Some(iat) => (self.config.load_threshold * self.rate * iat).floor(),
        };
        let mut r = r_load.clamp(0.0, f64::from(self.config.clusters)) as u32;

        // Forecast gate: short predicted waits make redundancy pointless.
        if let Some(b) = bound {
            if b < 0.1 * runtime_secs {
                r = r.min(1);
            }
        }

        // Spend tokens; partial credit degrades redundancy before
        // shedding the job outright.
        let affordable = self.tokens.floor();
        let r = (f64::from(r.max(1)).min(affordable)) as u32;
        if r == 0 {
            Decision {
                id,
                redundancy: 0,
                verdict: Verdict::Shed,
                load,
                wait_est_secs: wait_est,
                bound_secs: bound,
            }
        } else {
            self.tokens -= f64::from(r);
            // One copy runs; the backlog grows by the job's service
            // demand on the pool.
            self.backlog_secs += runtime_secs * f64::from(nodes) / self.config.total_nodes;
            Decision {
                id,
                redundancy: r,
                verdict: if r > 1 {
                    Verdict::Redundant
                } else {
                    Verdict::Single
                },
                load,
                wait_est_secs: wait_est,
                bound_secs: bound,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(batch: u32) -> AdmissionController {
        AdmissionController::new(AdmissionConfig {
            batch,
            ..AdmissionConfig::default()
        })
    }

    #[test]
    fn light_load_admits_redundancy() {
        let mut c = controller(4);
        // Sparse arrivals: one job a minute on a ~1 copies/s budget.
        let mut last = Decision {
            id: 0,
            redundancy: 0,
            verdict: Verdict::Shed,
            load: 0.0,
            wait_est_secs: 0.0,
            bound_secs: None,
        };
        for k in 0..10 {
            last = c.decide(k, 60.0 * k as f64, 64, 3_600.0);
        }
        assert!(last.redundancy > 1, "sparse arrivals should earn copies");
        assert_eq!(last.verdict, Verdict::Redundant);
        assert!(last.load < 1.0);
    }

    #[test]
    fn overload_sheds_after_the_burst_is_spent() {
        let mut c = controller(1);
        // 50 jobs in one virtual second against a ~0.5 copies/s budget:
        // the burst drains and the tail must shed.
        let mut shed = 0;
        for k in 0..50 {
            let d = c.decide(k, 0.02 * k as f64, 64, 3_600.0);
            if d.verdict == Verdict::Shed {
                shed += 1;
            }
        }
        assert!(shed > 0, "the rate limiter never engaged");
    }

    #[test]
    fn heavy_load_degrades_to_single_before_shedding() {
        let mut c = controller(1);
        // Arrivals right at the bottleneck rate: load ≈ 1 means the
        // threshold rule allows no extra copies, but the bucket can
        // still afford one.
        let iat = 1.0 / c.rate();
        let mut singles = 0;
        for k in 0..30 {
            let d = c.decide(k, iat * k as f64, 64, 3_600.0);
            if d.verdict == Verdict::Single {
                singles += 1;
            }
        }
        assert!(singles > 0, "saturating load should pin r to 1");
    }

    #[test]
    fn batching_raises_the_admission_budget() {
        assert!(
            controller(8).rate() > controller(1).rate(),
            "an 8-op transaction must out-admit per-op submission"
        );
    }

    #[test]
    fn decisions_are_deterministic() {
        let run = || {
            let mut c = controller(4);
            (0..200)
                .map(|k| c.decide(k, 0.7 * k as f64, 32, 600.0).log_line())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn log_lines_have_fixed_shape() {
        let mut c = controller(2);
        let line = c.decide(9, 1.0, 16, 100.0).log_line();
        assert!(line.starts_with("job=9 r="), "{line}");
        assert!(
            line.contains(" load=") && line.contains(" bound="),
            "{line}"
        );
    }
}
