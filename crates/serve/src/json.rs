//! A minimal JSON reader/writer for the wire protocol.
//!
//! The build environment has no JSON crate (the vendored `serde` shim is
//! derive-only), and the protocol needs just flat objects of strings,
//! numbers, and booleans — so the service carries its own ~200-line
//! implementation. Numbers render through Rust's shortest-roundtrip
//! `f64` formatting, which is deterministic across runs and platforms;
//! the byte-diff CI gate on the admission log depends on that.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are kept sorted (`BTreeMap`), so rendering is
    /// canonical regardless of insertion order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) if x.is_finite() => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x >= 0.0 && x <= u64::MAX as f64 && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                debug_assert!(x.is_finite(), "JSON cannot carry {x}");
                // Shortest-roundtrip float formatting: reparsing yields
                // the identical bits, so a value survives any number of
                // client/server hops unchanged.
                let _ = write!(out, "{x}");
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_num(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at offset {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    let x: f64 = text
        .parse()
        .map_err(|e| format!("bad number {text:?}: {e}"))?;
    if !x.is_finite() {
        return Err(format!("non-finite number {text:?}"));
    }
    Ok(Json::Num(x))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one whole UTF-8 scalar, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected ',' or ']', got {other:?}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at offset {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_flat_objects() {
        let v = Json::obj(vec![
            ("type", Json::Str("submit".to_string())),
            ("id", Json::Num(42.0)),
            ("arrival", Json::Num(17.25)),
            ("ok", Json::Bool(true)),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn floats_survive_the_wire_bit_for_bit() {
        for x in [0.1, 1.0 / 3.0, 5.010_203, f64::MAX, 1e-300] {
            let text = Json::Num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} mangled to {back}");
        }
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = Json::obj(vec![("z", Json::Num(1.0)), ("a", Json::Num(2.0))]);
        assert_eq!(v.render(), "{\"a\":2,\"z\":1}");
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let v = Json::Str("a\"b\\c\nd\te".to_string());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn accessors_are_type_checked() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"f\":2.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("f").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert!(v.get("missing").is_none());
    }
}
