//! The service acceptance gate: a 10k-job Lublin replay at roughly 2×
//! the admission budget, run twice with the same seed, must produce
//! bit-identical admission decisions and drain without losing a single
//! ack.

use std::net::TcpListener;

use rbr_serve::loadgen::{self, LoadgenConfig};
use rbr_serve::{serve, AdmissionConfig, ClockMode, ServerConfig, ServerStats};

const JOBS: usize = 10_000;
/// The calibrated Lublin peak-hour interarrival is ~5 s and the batch-8
/// admission budget is ~1.58 copies/s, so a 16× replay offers ~2× the
/// budget — deep enough into overload to exercise the rate limiter.
const RATE: f64 = 16.0;

fn one_run(seed: u64) -> (ServerStats, loadgen::LoadgenStats) {
    let config = ServerConfig {
        batch: rbr_faults::BatchSpec::of(8, rbr_simcore::Duration::from_secs(30.0)),
        admission: AdmissionConfig {
            batch: 8,
            ..AdmissionConfig::default()
        },
        clock: ClockMode::Virtual,
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral port");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || serve(listener, &config));
    let client = loadgen::run(&LoadgenConfig {
        addr: addr.to_string(),
        jobs: JOBS,
        rate: RATE,
        seed,
    })
    .expect("loadgen must complete cleanly");
    let stats = server
        .join()
        .expect("server thread")
        .expect("server must drain cleanly (non-zero exit on leak)");
    (stats, client)
}

#[test]
fn ten_thousand_jobs_replay_deterministically_and_drain_clean() {
    let (first, client_a) = one_run(2006);
    let (second, client_b) = one_run(2006);

    // Bit-identical admission decisions across two same-seed runs.
    assert_eq!(first.admission_log.len(), JOBS);
    assert_eq!(
        first.admission_log, second.admission_log,
        "same seed must reproduce every admission decision byte-for-byte"
    );

    // No lost acks: every submit acked, client and server agree.
    assert_eq!(first.submits, JOBS as u64);
    assert_eq!(first.acks, JOBS as u64);
    assert_eq!(client_a.acks, JOBS as u64);
    assert!(client_a.clean() && client_b.clean());

    // 2× the budget must actually engage the limiter, and batching must
    // actually coalesce (fewer transactions than admitted ops).
    assert!(first.shed > 0, "overload replay never shed a job");
    assert!(
        first.transactions < first.submits - first.shed,
        "transactions ({}) should be far fewer than admitted submits ({})",
        first.transactions,
        first.submits - first.shed
    );
    assert_eq!(client_a.shed, first.shed);
}

#[test]
fn different_seeds_diverge() {
    // The determinism above must come from the seed, not from the
    // controller ignoring its inputs.
    let (a, _) = one_run(1);
    let (b, _) = one_run(2);
    assert_ne!(a.admission_log, b.admission_log);
}
