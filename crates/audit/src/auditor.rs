//! The runtime invariant auditor: a [`SchedObserver`]/[`RunObserver`]
//! that mirrors every scheduler's externally visible state and checks
//! each transition against the scheduling invariants the paper's
//! conclusions rest on.
//!
//! Checked on every hook event:
//!
//! * **Capacity conservation** — the free-node count per cluster never
//!   goes negative; since nodes are anonymous, this is also the
//!   no-two-jobs-on-the-same-nodes check. Double starts and releases of
//!   never-started requests are flagged separately.
//! * **FIFO order** — a [`StartKind::FifoHead`] start must belong to the
//!   globally lowest-ranked waiting request (priority queue first, then
//!   submission order).
//! * **EASY head guarantee** — once a blocked head's shadow is computed,
//!   the head must start no later than the *minimum* shadow observed
//!   while it stayed the head (backfilling must never delay it).
//! * **CBF reservation monotonicity** — a request's start never exceeds
//!   its first reservation, except through the documented
//!   overdue-compression cascade: a reservation anchored on a phantom
//!   requested-end may be re-anchored at `now` once its anchor has
//!   passed, and jobs it pushes at that same compression instant slip
//!   with it.
//! * **Non-negative waits** — no request starts before it was submitted,
//!   and no job record has `completion != start + runtime`.
//! * **Ledger consistency** — at run end, the node-seconds the schedulers
//!   were observed to be occupied must equal the driver's own
//!   `useful + wasted` accounting ([`RunResult::accounted_node_secs`]),
//!   unless a cluster outage wiped scheduler state mid-run.
//!
//! Every violation captures the trailing event trace, so a report names
//! not just the broken invariant but the decisions leading up to it.

use std::collections::{HashMap, VecDeque};
use std::fmt;

use rbr_grid::record::{JobRecord, RunResult};
use rbr_grid::RunObserver;
use rbr_sched::{Request, RequestId, SchedObserver, StartKind};
use rbr_simcore::SimTime;

/// How many trailing trace lines a violation report carries.
const TRACE_LEN: usize = 48;

/// Relative tolerance for the floating-point occupancy ledger.
const LEDGER_TOLERANCE: f64 = 1e-6;

/// One detected invariant violation, with the offending event trace.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Simulation instant of the violating event.
    pub now: SimTime,
    /// Scheduler index the violation occurred on (the set target).
    pub sched: usize,
    /// Short machine-readable invariant name.
    pub kind: &'static str,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The trailing event trace, oldest first, ending at the violation.
    pub trace: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] sched {} at {}: {}",
            self.kind, self.sched, self.now, self.message
        )?;
        writeln!(f, "  event trace (oldest first):")?;
        for line in &self.trace {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

/// A queued request as the auditor sees it.
#[derive(Clone, Copy, Debug)]
struct Waiting {
    queue: usize,
    seq: u64,
    submit: SimTime,
}

/// A running allocation as the auditor sees it.
#[derive(Clone, Copy, Debug)]
struct RunningObs {
    nodes: u32,
    start: SimTime,
}

/// CBF reservation history for one queued request.
#[derive(Clone, Copy, Debug)]
struct Reservation {
    first: SimTime,
    current: SimTime,
    /// A later re-reservation was excused by the overdue-compression rule.
    slipped: bool,
}

/// Mirror of one scheduler's externally visible state.
#[derive(Debug, Default)]
struct SchedState {
    name: String,
    total: u32,
    /// Signed so an oversubscribing scheduler is reported, not a panic.
    free: i64,
    waiting: HashMap<RequestId, Waiting>,
    running: HashMap<RequestId, RunningObs>,
    /// The EASY head under observation and the minimum shadow seen for it.
    head_bound: Option<(RequestId, SimTime)>,
    reservations: HashMap<RequestId, Reservation>,
    /// Instant of the most recent reservation event. CBF compression
    /// re-reserves the whole queue in submission order at one instant;
    /// any reservation after the first in such a burst may legally move
    /// later (an earlier-submitted request was re-placed over its slot).
    last_reserve_at: Option<SimTime>,
    /// Any request was ever observed on this scheduler.
    used: bool,
}

/// The invariant auditor. Attach one per run via
/// [`rbr_grid::SimDriver::attach_run_observer`] or process-wide through
/// [`crate::sink::install`].
pub struct Auditor {
    scheds: Vec<SchedState>,
    seq: u64,
    trace: VecDeque<String>,
    violations: Vec<Violation>,
    /// Node-seconds of observed scheduler occupancy (finish-time sum).
    occupied_node_secs: f64,
    /// A scheduler was rebuilt mid-run (outage): occupancy undercounts.
    saw_restart: bool,
    /// Drain violations into the process-wide sink at run end.
    flush_to_sink: bool,
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor {
    /// An auditor keeping its violations local (read them back with
    /// [`Auditor::violations`] / [`Auditor::take_violations`]).
    pub fn new() -> Self {
        Auditor {
            scheds: Vec::new(),
            seq: 0,
            trace: VecDeque::with_capacity(TRACE_LEN),
            violations: Vec::new(),
            occupied_node_secs: 0.0,
            saw_restart: false,
            flush_to_sink: false,
        }
    }

    /// An auditor that drains its violations into [`crate::sink`] when
    /// the run ends — the factory-installed mode used by `rbr audit`.
    pub fn reporting_to_sink() -> Self {
        Auditor {
            flush_to_sink: true,
            ..Self::new()
        }
    }

    /// Violations detected so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Takes the detected violations, leaving none.
    pub fn take_violations(&mut self) -> Vec<Violation> {
        std::mem::take(&mut self.violations)
    }

    /// Node-seconds of scheduler occupancy observed so far.
    pub fn occupied_node_secs(&self) -> f64 {
        self.occupied_node_secs
    }

    fn state(&mut self, sched: usize) -> &mut SchedState {
        if sched >= self.scheds.len() {
            self.scheds.resize_with(sched + 1, SchedState::default);
        }
        &mut self.scheds[sched]
    }

    fn note(&mut self, line: String) {
        if self.trace.len() == TRACE_LEN {
            self.trace.pop_front();
        }
        self.trace.push_back(line);
    }

    fn violate(&mut self, sched: usize, now: SimTime, kind: &'static str, message: String) {
        let trace = self.trace.iter().cloned().collect();
        self.violations.push(Violation {
            now,
            sched,
            kind,
            message,
            trace,
        });
    }
}

impl SchedObserver for Auditor {
    fn on_attach(&mut self, sched: usize, total_nodes: u32, name: &str) {
        self.note(format!("attach sched {sched}: {name}, {total_nodes} nodes"));
        if self.state(sched).used {
            // The scheduler was rebuilt from scratch (cluster outage):
            // everything observed for it is void, and end-of-run
            // occupancy accounting can no longer balance.
            self.saw_restart = true;
        }
        *self.state(sched) = SchedState {
            name: name.to_string(),
            total: total_nodes,
            free: total_nodes as i64,
            ..SchedState::default()
        };
    }

    fn on_submit(&mut self, sched: usize, now: SimTime, queue: usize, req: &Request) {
        self.seq += 1;
        let seq = self.seq;
        self.note(format!(
            "t={now} sched {sched}: submit {} ({} nodes, est {}) to queue {queue}",
            req.id, req.nodes, req.estimate
        ));
        let (id, nodes, submit) = (req.id, req.nodes, req.submit);
        let state = self.state(sched);
        state.used = true;
        let total = state.total;
        let dup = state
            .waiting
            .insert(id, Waiting { queue, seq, submit })
            .is_some();
        if dup {
            self.violate(
                sched,
                now,
                "duplicate-submit",
                format!("request {id} submitted while already waiting"),
            );
        }
        if submit > now {
            self.violate(
                sched,
                now,
                "future-submit",
                format!("request {id} carries submit time {submit} later than now"),
            );
        }
        if nodes > total {
            self.violate(
                sched,
                now,
                "oversized-request",
                format!("request {id} wants {nodes} nodes on a {total}-node machine"),
            );
        }
    }

    fn on_start(&mut self, sched: usize, now: SimTime, req: &Request, kind: StartKind) {
        self.note(format!(
            "t={now} sched {sched}: start {} ({} nodes, {kind})",
            req.id, req.nodes
        ));
        let id = req.id;
        let state = self.state(sched);
        state.used = true;
        let entry = state.waiting.remove(&id);
        let free_after = state.free - req.nodes as i64;
        state.free = free_after;
        let already_running = state.running.contains_key(&id);
        if !already_running {
            state.running.insert(
                id,
                RunningObs {
                    nodes: req.nodes,
                    start: now,
                },
            );
        }

        // FIFO order: a head start must be the lowest-ranked waiter.
        let fifo_breaker = match (kind, entry) {
            (StartKind::FifoHead, Some(w)) => state
                .waiting
                .iter()
                .filter(|(_, o)| (o.queue, o.seq) < (w.queue, w.seq))
                .map(|(oid, o)| (o.queue, o.seq, *oid))
                .min()
                .map(|(q, _, oid)| (q, oid)),
            _ => None,
        };

        // EASY head guarantee: the tracked head must start by its bound.
        let mut head_violation = None;
        if kind == StartKind::FifoHead {
            if let Some((hid, bound)) = state.head_bound.take() {
                if hid == id && now > bound {
                    head_violation = Some(bound);
                }
                // A start of a different id displaces the tracked head
                // (priority arrival in a multi-queue set): tracking for
                // the old head is void either way.
            }
        }

        // CBF monotonicity: the start must not exceed the first
        // reservation, except through the overdue-compression cascade.
        let mut reservation_violation = None;
        if let Some(r) = state.reservations.remove(&id) {
            // A legitimate CBF start is always announced by a reservation
            // at the start instant first, so `current == now` here, and
            // any move past the first reservation went through an excused
            // slip (which set `slipped`). A start beyond the first
            // reservation without that history is a silently delayed job.
            let excused = r.slipped;
            if now > r.first && !excused {
                reservation_violation = Some(r.first);
            }
        }

        let negative_wait =
            entry.map(|w| w.submit > now).unwrap_or(false) || (entry.is_none() && req.submit > now);

        if entry.is_none() {
            self.violate(
                sched,
                now,
                "unknown-start",
                format!("request {id} started without ever being submitted"),
            );
        }
        if already_running {
            self.violate(
                sched,
                now,
                "duplicate-start",
                format!("request {id} started while already running"),
            );
        }
        if free_after < 0 {
            self.violate(
                sched,
                now,
                "capacity",
                format!(
                    "request {id} started with {} nodes but only {} were free \
                     on the {}-node {} machine (oversubscribed by {})",
                    req.nodes,
                    free_after + req.nodes as i64,
                    self.scheds[sched].total,
                    self.scheds[sched].name,
                    -free_after
                ),
            );
        }
        if let Some((q, oid)) = fifo_breaker {
            self.violate(
                sched,
                now,
                "fifo-order",
                format!(
                    "request {id} started as FIFO head while earlier-ranked \
                     request {oid} (queue {q}) was still waiting"
                ),
            );
        }
        if let Some(bound) = head_violation {
            self.violate(
                sched,
                now,
                "easy-head-delay",
                format!(
                    "head request {id} started at {now}, later than its \
                     guaranteed shadow bound {bound} — a backfill delayed it"
                ),
            );
        }
        if let Some(first) = reservation_violation {
            self.violate(
                sched,
                now,
                "cbf-reservation",
                format!(
                    "request {id} started at {now}, later than its first \
                     reservation {first}, with no excusing compression"
                ),
            );
        }
        if negative_wait {
            self.violate(
                sched,
                now,
                "negative-wait",
                format!(
                    "request {id} started at {now} before its submission at {}",
                    entry.map(|w| w.submit).unwrap_or(req.submit)
                ),
            );
        }
    }

    fn on_finish(&mut self, sched: usize, now: SimTime, id: RequestId, nodes: u32) {
        self.note(format!(
            "t={now} sched {sched}: finish {id} ({nodes} nodes)"
        ));
        let state = self.state(sched);
        state.used = true;
        match state.running.remove(&id) {
            Some(r) => {
                state.free += r.nodes as i64;
                self.occupied_node_secs += r.nodes as f64 * now.since(r.start).as_secs();
                if r.nodes != nodes {
                    self.violate(
                        sched,
                        now,
                        "node-mismatch",
                        format!(
                            "request {id} released {nodes} nodes but started with {}",
                            r.nodes
                        ),
                    );
                }
            }
            None => {
                self.violate(
                    sched,
                    now,
                    "unknown-finish",
                    format!("request {id} finished without being observed running"),
                );
            }
        }
    }

    fn on_cancel(&mut self, sched: usize, now: SimTime, id: RequestId) {
        self.note(format!("t={now} sched {sched}: cancel {id}"));
        let state = self.state(sched);
        state.used = true;
        let known = state.waiting.remove(&id).is_some();
        state.reservations.remove(&id);
        if state.head_bound.map(|(hid, _)| hid) == Some(id) {
            state.head_bound = None;
        }
        if !known {
            self.violate(
                sched,
                now,
                "unknown-cancel",
                format!("request {id} cancelled without being observed waiting"),
            );
        }
    }

    fn on_shadow(
        &mut self,
        sched: usize,
        now: SimTime,
        head: &Request,
        shadow: SimTime,
        extra: u32,
    ) {
        self.note(format!(
            "t={now} sched {sched}: shadow for head {} → {shadow} (extra {extra})",
            head.id
        ));
        let state = self.state(sched);
        state.used = true;
        state.head_bound = match state.head_bound {
            // Same head still blocked: the guarantee is the tightest
            // shadow ever computed for it.
            Some((hid, bound)) if hid == head.id => Some((hid, bound.min(shadow))),
            _ => Some((head.id, shadow)),
        };
        if shadow < now {
            self.violate(
                sched,
                now,
                "shadow-in-past",
                format!("shadow {shadow} for head {} precedes now", head.id),
            );
        }
    }

    fn on_reserve(&mut self, sched: usize, now: SimTime, id: RequestId, start: SimTime) {
        self.note(format!("t={now} sched {sched}: reserve {id} @ {start}"));
        let state = self.state(sched);
        state.used = true;
        let mut slip_violation = None;
        match state.reservations.get_mut(&id) {
            None => {
                state.reservations.insert(
                    id,
                    Reservation {
                        first: start,
                        current: start,
                        slipped: false,
                    },
                );
            }
            Some(r) => {
                if start > r.current {
                    // The reservation moved later. Legal only when its
                    // own anchor already passed (an overdue reservation
                    // is re-anchored at `now` by compression), or when an
                    // earlier reservation event fired at this same
                    // instant — then this is not the first re-reservation
                    // of a compression pass, and an earlier-*submitted*
                    // request may have been re-placed over its slot. The
                    // first re-reservation of a pass fits against a
                    // profile at least as free as the one its current
                    // slot was found in, so it can never move later.
                    let excused = r.current < now || state.last_reserve_at == Some(now);
                    if excused {
                        r.slipped = true;
                    } else {
                        slip_violation = Some((r.current, start));
                    }
                }
                r.current = start;
            }
        }
        state.last_reserve_at = Some(now);
        if start < now {
            self.violate(
                sched,
                now,
                "reservation-in-past",
                format!("request {id} reserved at {start}, before now"),
            );
        }
        if let Some((old, new)) = slip_violation {
            self.violate(
                sched,
                now,
                "cbf-reservation",
                format!(
                    "request {id} re-reserved later ({old} → {new}) with no \
                     overdue anchor and no compression cascade to excuse it"
                ),
            );
        }
    }
}

impl RunObserver for Auditor {
    fn on_event(&mut self, now: SimTime, kind: &str) {
        self.note(format!("t={now} engine: {kind}"));
    }

    fn on_job_record(&mut self, rec: &JobRecord) {
        if rec.start < rec.arrival {
            self.violate(
                rec.ran_on,
                rec.completion,
                "negative-wait",
                format!(
                    "job {} recorded start {} before arrival {}",
                    rec.job, rec.start, rec.arrival
                ),
            );
        }
        if rec.completion != rec.start + rec.runtime {
            self.violate(
                rec.ran_on,
                rec.completion,
                "record-inconsistent",
                format!(
                    "job {} recorded completion {} != start {} + runtime {}",
                    rec.job, rec.completion, rec.start, rec.runtime
                ),
            );
        }
    }

    fn on_run_end(&mut self, result: &RunResult) {
        for sched in 0..self.scheds.len() {
            if self.scheds[sched].running.is_empty() {
                continue;
            }
            let mut leftover: Vec<String> = self.scheds[sched]
                .running
                .keys()
                .map(|id| id.to_string())
                .collect();
            leftover.sort();
            self.violate(
                sched,
                result.makespan,
                "leftover-running",
                format!(
                    "requests still occupying nodes at run end: {}",
                    leftover.join(", ")
                ),
            );
        }
        if !self.saw_restart {
            let expected = result.accounted_node_secs();
            let tolerance = LEDGER_TOLERANCE * expected.max(1.0);
            if (self.occupied_node_secs - expected).abs() > tolerance {
                self.violate(
                    0,
                    result.makespan,
                    "ledger",
                    format!(
                        "observed scheduler occupancy {:.6} node-secs, but the \
                         driver accounts for {:.6} (useful {:.6} + wasted {:.6})",
                        self.occupied_node_secs,
                        expected,
                        result.total_work(),
                        result.wasted_node_secs
                    ),
                );
            }
        }
        if self.flush_to_sink {
            crate::sink::push(std::mem::take(&mut self.violations));
        }
    }
}
