//! # rbr-audit
//!
//! The simulator's sanitizer: a runtime invariant auditor plus a
//! brute-force differential oracle for the batch schedulers.
//!
//! The paper's conclusions rest on the simulated schedulers honoring the
//! contracts real batch systems honor — FCFS order, the EASY head
//! guarantee, conservative reservations that never slip, and exact node
//! accounting. This crate checks those contracts two ways:
//!
//! * **Auditing** ([`Auditor`], [`mod@sink`]): an observer attached to the
//!   scheduler/driver hook points (see `rbr_sched::observe` and
//!   `rbr_grid::observe`) that mirrors externally visible state and
//!   reports every [`Violation`] with the event trace leading up to it.
//!   `rbr audit <experiment>` runs any registry experiment under it.
//! * **Differential testing** ([`mod@oracle`]): deliberately naive
//!   reference implementations of FCFS and EASY, driven through the
//!   engine's exact event order, asserting start-for-start agreement with
//!   the production schedulers — with a shrinker that reduces any
//!   disagreement to a minimal counterexample workload.

pub mod auditor;
pub mod oracle;
pub mod sink;

pub use auditor::{Auditor, Violation};
pub use oracle::{differential, shrink, Mismatch, OracleJob};
