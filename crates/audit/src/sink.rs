//! Process-wide violation collection for audited registry runs.
//!
//! The experiment registry constructs its own [`rbr_grid::SimDriver`]s
//! deep inside each experiment, so the auditor cannot be attached by
//! hand. [`install`] registers an observer factory that equips every
//! subsequently built driver with a fresh [`Auditor`]; each auditor
//! drains its violations into a shared sink when its run ends, and
//! [`harvest`] collects everything found since the last call.
//!
//! The sink is process-global (experiments replicate runs across worker
//! threads), so audited runs of *different* experiments must be
//! serialized: install → run → harvest → [`uninstall`].

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Mutex;

use crate::auditor::{Auditor, Violation};

static SINK: Mutex<Vec<Violation>> = Mutex::new(Vec::new());

pub(crate) fn push(violations: Vec<Violation>) {
    SINK.lock().expect("audit sink lock").extend(violations);
}

/// Clears the sink and installs an observer factory attaching a fresh
/// sink-reporting [`Auditor`] to every driver built from now on.
pub fn install() {
    SINK.lock().expect("audit sink lock").clear();
    rbr_grid::install_observer_factory(Box::new(|| {
        Rc::new(RefCell::new(Auditor::reporting_to_sink()))
    }));
}

/// Takes every violation reported since [`install`] (or the previous
/// harvest), leaving the sink empty.
pub fn harvest() -> Vec<Violation> {
    std::mem::take(&mut *SINK.lock().expect("audit sink lock"))
}

/// Removes the auditing factory; subsequent drivers run unobserved.
pub fn uninstall() {
    rbr_grid::clear_observer_factory();
}
