//! Brute-force reference schedulers and the differential harness.
//!
//! The production FCFS and EASY schedulers in `rbr-sched` are built for
//! speed inside a discrete-event loop: incremental free-node accounting,
//! a single backfill sweep with a consumed `extra` budget. The reference
//! implementations here are deliberately naive — every scheduling pass
//! recomputes everything from scratch (the EASY shadow and spare-node
//! count are re-derived from the full running set before *each* backfill
//! candidate), with no state carried between passes beyond the queue and
//! the running list. Naive and production implementations share no code,
//! which is what makes agreement between them evidence.
//!
//! [`differential`] drives both through the same event loop (the engine's
//! `(time, insertion-seq)` order reproduced exactly) and compares start
//! times job by job. [`shrink`] greedily minimizes a failing workload to
//! a smallest counterexample schedule.

use std::fmt;

use rbr_sched::{Algorithm, Request, RequestId, Scheduler};
use rbr_simcore::{Duration, SimTime};

/// One job of an oracle workload. Jobs are identified by their index in
/// the workload slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleJob {
    /// Submission instant.
    pub arrival: SimTime,
    /// Nodes requested.
    pub nodes: u32,
    /// Requested compute time (what the scheduler plans with).
    pub estimate: Duration,
    /// Actual runtime (what the event loop completes with); at most
    /// `estimate`, as in the production driver.
    pub runtime: Duration,
}

/// A start-time disagreement between production and reference.
#[derive(Clone, Copy, Debug)]
pub struct Mismatch {
    /// Algorithm under test.
    pub alg: Algorithm,
    /// Index of the first disagreeing job.
    pub job: usize,
    /// When the production scheduler started it.
    pub production: SimTime,
    /// When the brute-force reference started it.
    pub reference: SimTime,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: job {} started at {} in production but at {} in the \
             brute-force reference",
            self.alg, self.job, self.production, self.reference
        )
    }
}

/// The slice of the [`Scheduler`] interface the oracle event loop needs.
trait Stepper {
    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>);
    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>);
}

impl Stepper for Box<dyn Scheduler> {
    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        (**self).submit(now, req, starts);
    }
    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        (**self).complete(now, id, starts);
    }
}

/// The naive rebuild-everything reference scheduler: FCFS, optionally
/// with the EASY backfilling rule layered on top.
struct RefSched {
    easy: bool,
    total: u32,
    free: u32,
    /// Queued requests in submission order.
    waiting: Vec<Request>,
    /// Running allocations: `(id, nodes, requested_end)`.
    running: Vec<(RequestId, u32, SimTime)>,
}

impl RefSched {
    fn new(easy: bool, total: u32) -> Self {
        RefSched {
            easy,
            total,
            free: total,
            waiting: Vec::new(),
            running: Vec::new(),
        }
    }

    fn start(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        self.free -= req.nodes;
        self.running
            .push((req.id, req.nodes, req.end_if_started(now)));
        starts.push(req.id);
    }

    /// Recomputes the head's shadow instant and spare-node count from the
    /// full running set — no incremental state, no consumed budget.
    fn shadow_from_scratch(&self) -> (SimTime, u32) {
        let head = self.waiting[0];
        let mut ends: Vec<(SimTime, u32)> = self
            .running
            .iter()
            .map(|&(_, nodes, end)| (end, nodes))
            .collect();
        ends.sort_unstable();
        let mut avail = self.free;
        for (end, nodes) in ends {
            avail += nodes;
            if avail >= head.nodes {
                return (end, avail - head.nodes);
            }
        }
        unreachable!(
            "head ({} nodes) cannot fit even an idle {}-node machine",
            head.nodes, self.total
        );
    }

    fn pass(&mut self, now: SimTime, starts: &mut Vec<RequestId>) {
        // FCFS: start from the head while it fits.
        while let Some(&head) = self.waiting.first() {
            if head.nodes > self.free {
                break;
            }
            self.waiting.remove(0);
            self.start(now, head, starts);
        }
        if !self.easy || self.waiting.is_empty() {
            return;
        }
        // EASY: walk the queue behind the blocked head, re-deriving the
        // shadow before every candidate instead of keeping a budget.
        let mut i = 1;
        while i < self.waiting.len() {
            let (shadow, spare) = self.shadow_from_scratch();
            let cand = self.waiting[i];
            let fits = cand.nodes <= self.free;
            let ends_by_shadow = cand.end_if_started(now) <= shadow;
            if fits && (ends_by_shadow || cand.nodes <= spare) {
                self.waiting.remove(i);
                self.start(now, cand, starts);
            } else {
                i += 1;
            }
        }
    }
}

impl Stepper for RefSched {
    fn submit(&mut self, now: SimTime, req: Request, starts: &mut Vec<RequestId>) {
        assert!(
            req.nodes <= self.total,
            "oracle job wants {} nodes on a {}-node machine",
            req.nodes,
            self.total
        );
        self.waiting.push(req);
        self.pass(now, starts);
    }

    fn complete(&mut self, now: SimTime, id: RequestId, starts: &mut Vec<RequestId>) {
        let pos = self
            .running
            .iter()
            .position(|&(rid, _, _)| rid == id)
            .expect("completion of a request the reference never started");
        let (_, nodes, _) = self.running.swap_remove(pos);
        self.free += nodes;
        self.pass(now, starts);
    }
}

#[derive(Clone, Copy)]
enum Ev {
    Arrive(usize),
    Finish(usize),
}

/// Drives `target` through the workload with the engine's event order —
/// minimum `(time, seq)`, arrivals seeded with seqs `0..n` in job order,
/// completions numbered in start-commit order — and returns each job's
/// start instant.
fn run_schedule<S: Stepper>(target: &mut S, jobs: &[OracleJob]) -> Vec<SimTime> {
    let n = jobs.len();
    let mut pending: Vec<(SimTime, u64, Ev)> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| (j.arrival, i as u64, Ev::Arrive(i)))
        .collect();
    let mut seq = n as u64;
    let mut started: Vec<Option<SimTime>> = vec![None; n];
    while !pending.is_empty() {
        let k = (0..pending.len())
            .min_by_key(|&k| (pending[k].0, pending[k].1))
            .expect("pending is non-empty");
        let (now, _, ev) = pending.swap_remove(k);
        let mut starts = Vec::new();
        match ev {
            Ev::Arrive(i) => {
                let job = jobs[i];
                let req = Request::new(RequestId(i as u64 + 1), job.nodes, job.estimate, now);
                target.submit(now, req, &mut starts);
            }
            Ev::Finish(i) => target.complete(now, RequestId(i as u64 + 1), &mut starts),
        }
        for id in starts {
            let i = (id.0 - 1) as usize;
            assert!(started[i].is_none(), "job {i} started twice");
            started[i] = Some(now);
            pending.push((now + jobs[i].runtime, seq, Ev::Finish(i)));
            seq += 1;
        }
    }
    started
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("job {i} never started")))
        .collect()
}

fn validate(alg: Algorithm, nodes: u32, jobs: &[OracleJob]) {
    assert!(
        matches!(alg, Algorithm::Fcfs | Algorithm::Easy),
        "no brute-force reference for {alg}: CBF start times depend on \
         reservation history, which a rebuild-everything oracle cannot \
         reproduce"
    );
    for (i, j) in jobs.iter().enumerate() {
        assert!(
            j.nodes >= 1 && j.nodes <= nodes,
            "oracle job {i} wants {} nodes on a {nodes}-node machine",
            j.nodes
        );
        assert!(!j.estimate.is_zero(), "oracle job {i} has a zero estimate");
        assert!(
            j.runtime <= j.estimate,
            "oracle job {i} runs longer than its request ({:?} > {:?})",
            j.runtime,
            j.estimate
        );
    }
}

/// Start times under the production scheduler.
pub fn production_starts(alg: Algorithm, nodes: u32, jobs: &[OracleJob]) -> Vec<SimTime> {
    validate(alg, nodes, jobs);
    let mut sched = alg.build(nodes);
    run_schedule(&mut sched, jobs)
}

/// Start times under the brute-force reference.
pub fn reference_starts(alg: Algorithm, nodes: u32, jobs: &[OracleJob]) -> Vec<SimTime> {
    validate(alg, nodes, jobs);
    let mut sched = RefSched::new(alg == Algorithm::Easy, nodes);
    run_schedule(&mut sched, jobs)
}

/// Runs the workload through both implementations and reports the first
/// job whose start times disagree.
pub fn differential(alg: Algorithm, nodes: u32, jobs: &[OracleJob]) -> Result<(), Mismatch> {
    let production = production_starts(alg, nodes, jobs);
    let reference = reference_starts(alg, nodes, jobs);
    for (job, (&p, &r)) in production.iter().zip(&reference).enumerate() {
        if p != r {
            return Err(Mismatch {
                alg,
                job,
                production: p,
                reference: r,
            });
        }
    }
    Ok(())
}

/// Greedily removes jobs while `fails` still holds, yielding a locally
/// minimal workload (removing any single remaining job makes it pass).
pub fn shrink_with(jobs: &[OracleJob], fails: impl Fn(&[OracleJob]) -> bool) -> Vec<OracleJob> {
    let mut current = jobs.to_vec();
    loop {
        let mut reduced = false;
        let mut i = 0;
        while i < current.len() {
            let mut candidate = current.clone();
            candidate.remove(i);
            if fails(&candidate) {
                current = candidate;
                reduced = true;
            } else {
                i += 1;
            }
        }
        if !reduced {
            return current;
        }
    }
}

/// Minimizes a workload on which [`differential`] fails. Returns the
/// shrunk workload and its mismatch.
///
/// # Panics
/// Panics if the workload does not actually fail.
pub fn shrink(alg: Algorithm, nodes: u32, jobs: &[OracleJob]) -> (Vec<OracleJob>, Mismatch) {
    assert!(
        differential(alg, nodes, jobs).is_err(),
        "shrink called on a workload where both implementations agree"
    );
    let shrunk = shrink_with(jobs, |candidate| {
        differential(alg, nodes, candidate).is_err()
    });
    let mismatch = differential(alg, nodes, &shrunk).expect_err("shrunk workload must still fail");
    (shrunk, mismatch)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(arrival: f64, nodes: u32, est: f64, run: f64) -> OracleJob {
        OracleJob {
            arrival: SimTime::from_secs(arrival),
            nodes,
            estimate: Duration::from_secs(est),
            runtime: Duration::from_secs(run),
        }
    }
    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn reference_fcfs_blocks_behind_the_head() {
        // 10 nodes: an 8-node job runs; a 8-node head blocks; a 2-node
        // tail must NOT overtake under plain FCFS.
        let jobs = [
            job(0.0, 8, 100.0, 100.0),
            job(0.0, 8, 50.0, 50.0),
            job(0.0, 2, 10.0, 10.0),
        ];
        let starts = reference_starts(Algorithm::Fcfs, 10, &jobs);
        assert_eq!(starts, vec![t(0.0), t(100.0), t(100.0)]);
    }

    #[test]
    fn reference_easy_backfills_within_the_shadow() {
        // The canonical EASY scenario from the production test suite:
        // the 2-node job fits the head's spare nodes and jumps ahead.
        let jobs = [
            job(0.0, 8, 100.0, 100.0),
            job(0.0, 8, 50.0, 50.0),
            job(0.0, 2, 100.0, 100.0),
        ];
        let starts = reference_starts(Algorithm::Easy, 10, &jobs);
        assert_eq!(starts[2], t(0.0));
        assert_eq!(starts[1], t(100.0));
    }

    #[test]
    fn reference_easy_never_delays_the_head() {
        // A 5-node candidate outliving the shadow with spare = 0 must
        // wait, so the head starts exactly at the shadow instant.
        let jobs = [
            job(0.0, 10, 100.0, 100.0),
            job(0.0, 10, 100.0, 100.0),
            job(0.0, 5, 100.0, 100.0),
        ];
        let starts = reference_starts(Algorithm::Easy, 10, &jobs);
        assert_eq!(starts[1], t(100.0));
        assert_eq!(starts[2], t(200.0));
    }

    #[test]
    fn production_agrees_on_handcrafted_workloads() {
        let workloads: Vec<Vec<OracleJob>> = vec![
            vec![
                job(0.0, 8, 100.0, 100.0),
                job(0.0, 8, 50.0, 50.0),
                job(0.0, 2, 100.0, 100.0),
            ],
            // Early completion opens a backfill hole at t = 30.
            vec![
                job(0.0, 6, 100.0, 30.0),
                job(0.0, 8, 100.0, 100.0),
                job(0.0, 2, 500.0, 400.0),
                job(5.0, 2, 40.0, 40.0),
            ],
            // Staggered arrivals with ties.
            vec![
                job(0.0, 4, 60.0, 45.0),
                job(10.0, 4, 60.0, 60.0),
                job(10.0, 4, 60.0, 20.0),
                job(10.0, 2, 10.0, 10.0),
            ],
        ];
        for alg in [Algorithm::Fcfs, Algorithm::Easy] {
            for jobs in &workloads {
                differential(alg, 10, jobs).unwrap_or_else(|m| panic!("{m}"));
            }
        }
    }

    #[test]
    fn shrinker_minimizes_against_a_predicate() {
        let jobs = [
            job(0.0, 1, 10.0, 10.0),
            job(1.0, 7, 10.0, 10.0),
            job(2.0, 2, 10.0, 10.0),
            job(3.0, 7, 10.0, 10.0),
        ];
        // "Fails" iff it contains at least two 7-node jobs.
        let shrunk = shrink_with(&jobs, |ws| ws.iter().filter(|j| j.nodes == 7).count() >= 2);
        assert_eq!(shrunk.len(), 2);
        assert!(shrunk.iter().all(|j| j.nodes == 7));
    }

    #[test]
    #[should_panic(expected = "no brute-force reference")]
    fn cbf_has_no_oracle() {
        let _ = reference_starts(Algorithm::Cbf, 4, &[job(0.0, 1, 1.0, 1.0)]);
    }
}
