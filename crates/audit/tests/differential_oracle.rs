//! Differential property tests: random workloads through the production
//! FCFS/EASY schedulers and the brute-force reference oracle must yield
//! identical start times. On disagreement the workload is greedily
//! shrunk to a minimal counterexample schedule before failing.

use proptest::prelude::*;
use rbr_audit::oracle::{differential, shrink, OracleJob};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SimTime};

/// Machine size under test: small enough that queues form, big enough
/// for multi-job backfill interplay.
const NODES: u32 = 16;

/// One raw generated job: `(arrival_us, nodes, a_us, b_us)`; estimate is
/// the larger of the two duration draws and runtime the smaller, so
/// `runtime <= estimate` holds by construction (as in the production
/// driver, where jobs never outlive their request).
type RawJob = (u64, u32, u64, u64);

fn to_jobs(raw: &[RawJob]) -> Vec<OracleJob> {
    raw.iter()
        .map(|&(arrival, nodes, a, b)| OracleJob {
            arrival: SimTime::from_micros(arrival),
            nodes,
            estimate: Duration::from_micros(a.max(b)),
            runtime: Duration::from_micros(a.min(b)),
        })
        .collect()
}

fn check(alg: Algorithm, raw: &[RawJob]) -> Result<(), TestCaseError> {
    let jobs = to_jobs(raw);
    if differential(alg, NODES, &jobs).is_err() {
        let (minimal, mismatch) = shrink(alg, NODES, &jobs);
        return Err(TestCaseError::new(format!(
            "production {alg} disagrees with the brute-force oracle: \
             {mismatch}\nminimal counterexample schedule ({} of {} jobs):\n{:#?}",
            minimal.len(),
            jobs.len(),
            minimal
        )));
    }
    Ok(())
}

/// Arrivals within a 2-hour window, 1–16 nodes, durations up to ~10
/// simulated minutes — enough contention that FIFO blocking, backfill
/// holes, and early completions all occur.
fn raw_job_strategy() -> impl Strategy<Value = Vec<RawJob>> {
    prop::collection::vec(
        (
            0u64..7_200_000_000,
            1u32..=NODES,
            1u64..=600_000_000,
            1u64..=600_000_000,
        ),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn production_fcfs_matches_the_oracle(raw in raw_job_strategy()) {
        check(Algorithm::Fcfs, &raw)?;
    }

    #[test]
    fn production_easy_matches_the_oracle(raw in raw_job_strategy()) {
        check(Algorithm::Easy, &raw)?;
    }

    /// Heavy contention: mostly-wide jobs arriving in a burst, where a
    /// single misplaced backfill decision would reorder everything.
    #[test]
    fn easy_matches_the_oracle_under_burst_arrivals(raw in prop::collection::vec(
        (0u64..60_000_000, 8u32..=NODES, 1u64..=600_000_000, 1u64..=600_000_000),
        1..25,
    )) {
        check(Algorithm::Easy, &raw)?;
    }
}
