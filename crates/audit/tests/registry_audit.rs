//! The acceptance gate for the auditor: every experiment in the standard
//! registry runs at smoke scale under full auditing with zero
//! violations. This is the same check `rbr audit all --scale smoke`
//! performs, wired into the test suite.
//!
//! A single `#[test]` because the observer factory and sink are
//! process-global (see `grid_runs_audited.rs`).

use rbr::{Registry, Scale};
use rbr_audit::sink;

#[test]
fn full_registry_smoke_audit_is_clean() {
    let registry = Registry::standard();
    sink::install();
    for name in registry.names() {
        let exp = registry.get(name).expect("registry name resolves");
        let _ = exp.run(Scale::Smoke, exp.default_seed());
        let violations = sink::harvest();
        assert!(
            violations.is_empty(),
            "experiment {name}: {} invariant violation(s):\n{}",
            violations.len(),
            violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    sink::uninstall();
}
