//! End-to-end audits of real simulator runs: every grid protocol,
//! faultless and faulty, must complete with zero invariant violations —
//! including the occupancy-vs-ledger cross-check at run end.
//!
//! Everything lives in one `#[test]` because the observer factory and
//! violation sink are process-global: a second test thread would harvest
//! the first one's runs.

use rbr_audit::sink;
use rbr_grid::dual_queue::{self, DualQueueConfig};
use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
use rbr_grid::redundancy::{self, CopyModel, RedundancyConfig};
use rbr_grid::{CancelMode, Delay, FaultSpec, GridConfig, GridSim, Outage, Scheme};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SeedSequence, SimTime};

fn assert_clean(label: &str) {
    let violations = sink::harvest();
    assert!(
        violations.is_empty(),
        "{label}: {} invariant violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn every_grid_protocol_passes_a_full_audit() {
    sink::install();

    // Faultless multi-cluster, all three algorithms, with redundancy.
    for algorithm in [Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs] {
        let mut cfg = GridConfig::homogeneous(3, Scheme::All);
        cfg.algorithm = algorithm;
        cfg.window = Duration::from_secs(1_800.0);
        for seed in 0u64..2 {
            let _ = GridSim::execute(cfg.clone(), SeedSequence::new(seed));
            assert_clean(&format!("{algorithm} all3 seed {seed}"));
        }
    }

    // The reservation-based predictor path (CBF + prediction collection).
    let mut cfg = GridConfig::homogeneous(2, Scheme::R(2));
    cfg.algorithm = Algorithm::Cbf;
    cfg.collect_predictions = true;
    cfg.window = Duration::from_secs(900.0);
    let _ = GridSim::execute(cfg, SeedSequence::new(0));
    assert_clean("cbf2 predictions");

    // Faulty middleware: lost messages, latency, and a mid-run outage
    // (which rebuilds a scheduler — the auditor must re-anchor, not
    // misfire on the vanished state).
    let mut cfg = GridConfig::homogeneous(3, Scheme::All);
    cfg.window = Duration::from_secs(1_200.0);
    cfg.faults = FaultSpec {
        submit_loss: 0.1,
        cancel_loss: 0.1,
        submit_delay: Delay::Fixed(Duration::from_secs(2.0)),
        cancel_delay: Delay::Exp {
            mean: Duration::from_secs(3.0),
        },
        outages: vec![Outage {
            cluster: 1,
            down: SimTime::from_secs(300.0),
            recover: SimTime::from_secs(500.0),
        }],
        ..FaultSpec::default()
    };
    for seed in 0u64..2 {
        let _ = GridSim::execute(cfg.clone(), SeedSequence::new(seed));
        assert_clean(&format!("faulty all3 seed {seed}"));
    }

    // The dual-queue protocol (two queues over one pool).
    let mut cfg = DualQueueConfig::new(0.4);
    cfg.window = Duration::from_secs(1_200.0);
    let _ = dual_queue::run(&cfg, SeedSequence::new(0));
    assert_clean("dual-queue");

    // Moldable shape racing, fixed and racing policies.
    for policy in [ShapePolicy::Fixed(0), ShapePolicy::AllShapes] {
        let mut cfg = MoldableConfig::new(policy);
        cfg.window = Duration::from_secs(1_200.0);
        let _ = moldable::run(&cfg, SeedSequence::new(0));
        assert_clean(&format!("moldable {policy:?}"));
    }

    // Redundancy-d across its axes. The completion race is the sharp
    // case for the occupancy ledger: killed losers' node-seconds must
    // land in `wasted_node_secs` exactly, or the run-end cross-check
    // fires.
    let redundancy_base = || {
        let mut cfg = RedundancyConfig::new(3, 2).with_load(0.8);
        cfg.service_mean = 30.0;
        cfg.window = Duration::from_secs(1_200.0);
        cfg
    };
    let _ = redundancy::run_single(&redundancy_base(), SeedSequence::new(0));
    assert_clean("redundancy single-submit");
    for cancel in [CancelMode::OnStart, CancelMode::OnCompletion] {
        for copies in [CopyModel::Iid, CopyModel::Identical] {
            let mut cfg = redundancy_base();
            cfg.cancel = cancel;
            cfg.copies = copies;
            for seed in 0u64..2 {
                let _ = redundancy::run(&cfg, SeedSequence::new(seed));
                assert_clean(&format!("redundancy {cancel:?} {copies:?} seed {seed}"));
            }
        }
    }

    // Redundancy-d under faulty middleware: lost/delayed messages alone,
    // then with a mid-run server outage (restart re-anchors the ledger).
    for cancel in [CancelMode::OnStart, CancelMode::OnCompletion] {
        let mut cfg = redundancy_base();
        cfg.cancel = cancel;
        cfg.faults = FaultSpec {
            submit_loss: 0.1,
            cancel_loss: 0.1,
            submit_delay: Delay::Fixed(Duration::from_secs(2.0)),
            cancel_delay: Delay::Exp {
                mean: Duration::from_secs(3.0),
            },
            ..FaultSpec::default()
        };
        let _ = redundancy::run(&cfg, SeedSequence::new(0));
        assert_clean(&format!("faulty redundancy {cancel:?}"));
        cfg.faults.outages = vec![Outage {
            cluster: 1,
            down: SimTime::from_secs(300.0),
            recover: SimTime::from_secs(500.0),
        }];
        let _ = redundancy::run(&cfg, SeedSequence::new(1));
        assert_clean(&format!("faulty redundancy {cancel:?} with outage"));
    }

    sink::uninstall();
}
