//! The auditor must catch broken schedulers, not just bless working
//! ones: each test drives the [`Auditor`] through the hook sequence a
//! buggy scheduler implementation would emit and asserts the specific
//! invariant fires, with the offending event trace attached.

use rbr_audit::Auditor;
use rbr_sched::{Request, RequestId, SchedObserver, StartKind};
use rbr_simcore::{Duration, SimTime};

fn req(id: u64, nodes: u32, est: f64, submit: f64) -> Request {
    Request::new(
        RequestId(id),
        nodes,
        Duration::from_secs(est),
        SimTime::from_secs(submit),
    )
}

fn t(s: f64) -> SimTime {
    SimTime::from_secs(s)
}

/// A scheduler double that admits jobs beyond the machine size: three
/// 2-node starts on a 4-node machine. The auditor must report the
/// oversubscription and carry the trace of the decisions leading there.
#[test]
fn capacity_oversubscription_is_detected_with_trace() {
    let mut a = Auditor::new();
    a.on_attach(0, 4, "BUGGY");
    for id in 1..=3 {
        a.on_submit(0, t(0.0), 0, &req(id, 2, 100.0, 0.0));
    }
    a.on_start(0, t(0.0), &req(1, 2, 100.0, 0.0), StartKind::FifoHead);
    a.on_start(0, t(0.0), &req(2, 2, 100.0, 0.0), StartKind::FifoHead);
    assert!(a.violations().is_empty(), "4 nodes hold two 2-node jobs");

    // The buggy double starts the third job anyway.
    a.on_start(0, t(0.0), &req(3, 2, 100.0, 0.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    let v = &violations[0];
    assert_eq!(v.kind, "capacity");
    assert_eq!(v.sched, 0);
    assert!(
        v.message.contains("oversubscribed by 2"),
        "message: {}",
        v.message
    );
    // The trace must show how the machine got here: the submits, the two
    // legitimate starts, and the offending start itself as the last line.
    assert!(!v.trace.is_empty());
    assert!(v.trace.iter().any(|l| l.contains("submit r1")));
    assert!(v.trace.iter().any(|l| l.contains("start r2")));
    let last = v.trace.last().expect("non-empty trace");
    assert!(last.contains("start r3"), "last trace line: {last}");
    // And the report renders with the trace inline.
    let report = v.to_string();
    assert!(report.contains("[capacity]"));
    assert!(report.contains("event trace"));
}

/// A double that starts a later arrival as "FIFO head" while an earlier
/// request is still waiting.
#[test]
fn fifo_order_violation_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY");
    a.on_submit(0, t(0.0), 0, &req(1, 8, 100.0, 0.0));
    a.on_submit(0, t(1.0), 0, &req(2, 4, 100.0, 1.0));
    a.on_start(0, t(1.0), &req(2, 4, 100.0, 1.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "fifo-order");
    assert!(violations[0].message.contains("request r1"));
}

/// The same out-of-order start declared as a backfill is legitimate —
/// only *head* starts claim FIFO rank.
#[test]
fn declared_backfills_are_exempt_from_fifo_order() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "EASY-LIKE");
    a.on_submit(0, t(0.0), 0, &req(1, 8, 100.0, 0.0));
    a.on_submit(0, t(1.0), 0, &req(2, 4, 100.0, 1.0));
    a.on_start(0, t(1.0), &req(2, 4, 100.0, 1.0), StartKind::Backfill);
    assert!(a.violations().is_empty());
}

/// A double whose backfilling delays the guaranteed head: the head's
/// shadow promised a start by t=100 but it only starts at t=150.
#[test]
fn easy_head_delay_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 10, "BUGGY-EASY");
    a.on_submit(0, t(0.0), 0, &req(1, 10, 100.0, 0.0));
    a.on_start(0, t(0.0), &req(1, 10, 100.0, 0.0), StartKind::FifoHead);
    a.on_submit(0, t(0.0), 0, &req(2, 10, 50.0, 0.0));
    a.on_shadow(0, t(0.0), &req(2, 10, 50.0, 0.0), t(100.0), 0);
    a.on_finish(0, t(100.0), RequestId(1), 10);
    a.on_start(0, t(150.0), &req(2, 10, 50.0, 0.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "easy-head-delay");
    assert!(violations[0].message.contains("100.000s"));
}

/// The head guarantee tracks the *tightest* shadow: a later, looser
/// recomputation must not launder an earlier promise.
#[test]
fn easy_head_bound_keeps_the_minimum_shadow() {
    let mut a = Auditor::new();
    a.on_attach(0, 10, "BUGGY-EASY");
    a.on_submit(0, t(0.0), 0, &req(1, 10, 200.0, 0.0));
    a.on_start(0, t(0.0), &req(1, 10, 200.0, 0.0), StartKind::FifoHead);
    a.on_submit(0, t(0.0), 0, &req(2, 10, 50.0, 0.0));
    a.on_shadow(0, t(0.0), &req(2, 10, 50.0, 0.0), t(100.0), 0);
    a.on_shadow(0, t(10.0), &req(2, 10, 50.0, 0.0), t(200.0), 0);
    a.on_finish(0, t(150.0), RequestId(1), 10);
    a.on_start(0, t(150.0), &req(2, 10, 50.0, 0.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "easy-head-delay");
}

/// A double that lets a CBF reservation slip with no compression to
/// excuse it: first reserved at 100, silently re-reserved at 200.
#[test]
fn cbf_reservation_slip_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY-CBF");
    a.on_submit(0, t(0.0), 0, &req(1, 4, 100.0, 0.0));
    a.on_reserve(0, t(0.0), RequestId(1), t(100.0));
    a.on_reserve(0, t(10.0), RequestId(1), t(200.0));
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "cbf-reservation");
    assert!(violations[0].message.contains("100.000s → 200.000s"));
}

/// The documented excuse: once a reservation's own anchor has passed
/// (the running job it stacked on outlived its phantom requested end),
/// re-anchoring later is legal, and so is the cascade it pushes at the
/// same compression instant.
#[test]
fn overdue_compression_cascade_is_excused() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "CBF");
    a.on_submit(0, t(0.0), 0, &req(1, 4, 100.0, 0.0));
    a.on_submit(0, t(0.0), 0, &req(2, 4, 100.0, 0.0));
    a.on_reserve(0, t(0.0), RequestId(1), t(50.0));
    a.on_reserve(0, t(0.0), RequestId(2), t(50.0));
    // t = 60: request 1's reservation (50) is overdue — the job ahead of
    // it ran past its estimate. Re-anchoring at now and pushing request 2
    // at the same instant is the compression cascade, not a violation.
    a.on_reserve(0, t(60.0), RequestId(1), t(60.0));
    a.on_reserve(0, t(60.0), RequestId(2), t(75.0));
    assert!(a.violations().is_empty(), "{:#?}", a.violations());
    // The excuse does not carry to later instants.
    a.on_reserve(0, t(70.0), RequestId(2), t(90.0));
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "cbf-reservation");
}

/// A submit-time reservation can fill a hole in the stale profile ahead
/// of earlier-submitted requests; the next compression re-reserves in
/// submission order and may legally hand that hole to an earlier
/// request, pushing the hole-filler later. Only re-reservations *after*
/// the first of a pass get this excuse — and an excused slip also
/// excuses the eventual late start.
#[test]
fn compression_may_displace_later_submissions_within_a_pass() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "CBF");
    a.on_submit(0, t(0.0), 0, &req(1, 8, 100.0, 0.0));
    a.on_reserve(0, t(0.0), RequestId(1), t(100.0));
    // Request 2 fills a hole the stale profile shows before request 1.
    a.on_submit(0, t(10.0), 0, &req(2, 4, 30.0, 10.0));
    a.on_reserve(0, t(10.0), RequestId(2), t(40.0));
    // Compression at t=20: request 1 re-reserved first (earlier, it may
    // only move up), then request 2 is displaced behind it.
    a.on_reserve(0, t(20.0), RequestId(1), t(40.0));
    a.on_reserve(0, t(20.0), RequestId(2), t(140.0));
    assert!(a.violations().is_empty(), "{:#?}", a.violations());
    // The displaced request starting past its first reservation is the
    // consequence of that excused slip, not a fresh violation.
    a.on_start(0, t(40.0), &req(1, 8, 100.0, 0.0), StartKind::Reservation);
    a.on_finish(0, t(140.0), RequestId(1), 8);
    a.on_reserve(0, t(140.0), RequestId(2), t(140.0));
    a.on_start(0, t(140.0), &req(2, 4, 30.0, 10.0), StartKind::Reservation);
    assert!(a.violations().is_empty(), "{:#?}", a.violations());
}

/// A start later than the first reservation with no slip history.
#[test]
fn cbf_late_start_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY-CBF");
    a.on_submit(0, t(0.0), 0, &req(1, 4, 100.0, 0.0));
    a.on_reserve(0, t(0.0), RequestId(1), t(50.0));
    a.on_reserve(0, t(20.0), RequestId(1), t(50.0));
    a.on_start(0, t(80.0), &req(1, 4, 100.0, 0.0), StartKind::Reservation);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "cbf-reservation");
    assert!(violations[0].message.contains("first"));
}

/// Releasing nodes twice (or for a request that never started) is how
/// free-node counters silently drift upward.
#[test]
fn unknown_finish_and_double_start_are_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY");
    a.on_submit(0, t(0.0), 0, &req(1, 4, 10.0, 0.0));
    a.on_start(0, t(0.0), &req(1, 4, 10.0, 0.0), StartKind::FifoHead);
    a.on_finish(0, t(10.0), RequestId(1), 4);
    a.on_finish(0, t(10.0), RequestId(1), 4);
    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "unknown-finish");

    a.on_submit(0, t(20.0), 0, &req(2, 4, 10.0, 20.0));
    a.on_start(0, t(20.0), &req(2, 4, 10.0, 20.0), StartKind::FifoHead);
    a.on_start(0, t(20.0), &req(2, 4, 10.0, 20.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert!(
        violations.iter().any(|v| v.kind == "duplicate-start"),
        "{violations:#?}"
    );
}

/// A start of a request the scheduler was never given.
#[test]
fn unknown_start_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY");
    a.on_start(0, t(0.0), &req(7, 2, 10.0, 0.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert!(
        violations.iter().any(|v| v.kind == "unknown-start"),
        "{violations:#?}"
    );
}

/// Starting before submission means time ran backwards somewhere.
#[test]
fn negative_wait_is_detected() {
    let mut a = Auditor::new();
    a.on_attach(0, 8, "BUGGY");
    a.on_submit(0, t(10.0), 0, &req(1, 2, 10.0, 10.0));
    // The double claims the start happened at t=5, before the submit
    // time carried by the request itself.
    a.on_start(0, t(5.0), &req(1, 2, 10.0, 10.0), StartKind::FifoHead);
    let violations = a.take_violations();
    assert!(
        violations.iter().any(|v| v.kind == "negative-wait"),
        "{violations:#?}"
    );
}

/// A completion-race double that forgets to cancel its losers: both
/// copies run to completion, but the run result accounts only the
/// winner's work and books no waste. The occupancy ledger must catch the
/// phantom node-seconds at run end.
#[test]
fn uncancelled_completion_race_losers_trip_the_ledger() {
    use rbr_grid::record::{JobRecord, RunResult};
    use rbr_grid::RunObserver;

    let mut a = Auditor::new();
    a.on_attach(0, 1, "FCFS");
    a.on_attach(1, 1, "FCFS");
    // One job, two identical 100 s copies racing on two 1-node servers.
    a.on_submit(0, t(0.0), 0, &req(1, 1, 100.0, 0.0));
    a.on_submit(1, t(0.0), 0, &req(2, 1, 100.0, 0.0));
    a.on_start(0, t(0.0), &req(1, 1, 100.0, 0.0), StartKind::FifoHead);
    a.on_start(1, t(0.0), &req(2, 1, 100.0, 0.0), StartKind::FifoHead);
    // Copy 1 wins. The buggy protocol never cancels copy 2, which burns
    // its full duplicate service before finishing too.
    a.on_finish(0, t(100.0), RequestId(1), 1);
    a.on_finish(1, t(100.0), RequestId(2), 1);

    // The driver's ledger knows only the winner: 100 useful node-secs,
    // zero waste — but the schedulers were occupied for 200.
    let mut result = RunResult::default();
    result.records.push(JobRecord {
        job: 0,
        home: 0,
        ran_on: 0,
        nodes: 1,
        arrival: t(0.0),
        start: t(0.0),
        completion: t(100.0),
        runtime: Duration::from_secs(100.0),
        redundant: true,
        copies: 2,
        predicted_wait: None,
    });
    result.submits = 2;
    result.makespan = t(100.0);
    a.on_job_record(&result.records[0]);
    a.on_run_end(&result);

    let violations = a.take_violations();
    assert_eq!(violations.len(), 1, "{violations:#?}");
    assert_eq!(violations[0].kind, "ledger");
    assert!(
        violations[0].message.contains("200.000000"),
        "message: {}",
        violations[0].message
    );
}

/// Scheduler indices are independent: cluster 1's load never counts
/// against cluster 0's capacity.
#[test]
fn clusters_are_audited_independently() {
    let mut a = Auditor::new();
    a.on_attach(0, 4, "FCFS");
    a.on_attach(1, 4, "FCFS");
    a.on_submit(0, t(0.0), 0, &req(1, 4, 10.0, 0.0));
    a.on_submit(1, t(0.0), 0, &req(2, 4, 10.0, 0.0));
    a.on_start(0, t(0.0), &req(1, 4, 10.0, 0.0), StartKind::FifoHead);
    a.on_start(1, t(0.0), &req(2, 4, 10.0, 0.0), StartKind::FifoHead);
    a.on_finish(0, t(10.0), RequestId(1), 4);
    a.on_finish(1, t(10.0), RequestId(2), 4);
    assert!(a.violations().is_empty(), "{:#?}", a.violations());
    assert!((a.occupied_node_secs() - 80.0).abs() < 1e-9);
}
