//! The pending-event set.
//!
//! Events are totally ordered by `(time, sequence)`: the sequence number
//! breaks timestamp ties in insertion order, which makes event processing
//! a total order — the property that turns a simulation run into a pure
//! function of its inputs.
//!
//! Two implementations share that contract:
//!
//! * [`QueueKind::Calendar`] (the default) — a calendar queue (Brown,
//!   CACM 1988): a circular array of day-buckets over a fixed time
//!   `width`, resized as the population grows and shrinks so the average
//!   bucket holds O(1) events. Push appends into a bucket (amortized
//!   O(1), no per-event allocation once bucket capacity has warmed up);
//!   pop scans the current day's bucket for the `(time, seq)` minimum
//!   and only walks forward on empty days. Events live inline in the
//!   bucket arenas — no boxing, and `swap_remove` recycles slots.
//! * [`QueueKind::Heap`] — the original `BinaryHeap` keyed on
//!   `(Reverse(time), Reverse(seq))`. Kept as the reference
//!   implementation: the equivalence suite drives both with identical
//!   schedules and demands identical pop sequences.
//!
//! Both deliver the exact same sequence for the same pushes — the
//! calendar queue selects the in-window minimum by `(time, seq)`, so
//! bucket-internal order (scrambled by `swap_remove`) never leaks into
//! pop order. [`with_queue_kind`] scopes a non-default choice to a
//! closure, which is how the determinism tests run one simulation on
//! each implementation and byte-compare the results.

use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Which pending-event-set implementation an [`EventQueue`] uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueKind {
    /// Bucketed calendar queue — the default; O(1) amortized push/pop.
    Calendar,
    /// Binary heap — the reference implementation; O(log n) push/pop.
    Heap,
}

thread_local! {
    static DEFAULT_KIND: Cell<QueueKind> = const { Cell::new(QueueKind::Calendar) };
}

/// Runs `f` with every [`EventQueue::new`] on this thread defaulting to
/// `kind`, restoring the previous default afterwards (also on panic).
///
/// This is the hook the queue-equivalence tests use to run a whole
/// simulation — engine and all — on the reference heap implementation
/// without threading a type parameter through every layer.
pub fn with_queue_kind<R>(kind: QueueKind, f: impl FnOnce() -> R) -> R {
    struct Restore(QueueKind);
    impl Drop for Restore {
        fn drop(&mut self) {
            DEFAULT_KIND.with(|k| k.set(self.0));
        }
    }
    let _restore = DEFAULT_KIND.with(|k| {
        let prev = k.get();
        k.set(kind);
        Restore(prev)
    });
    f()
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

// ---------------------------------------------------------------------
// Calendar queue.
// ---------------------------------------------------------------------

/// Smallest bucket count; always a power of two so the bucket index is a
/// mask, not a modulo.
const MIN_BUCKETS: usize = 4;

struct Calendar<E> {
    /// Day buckets; entries unordered within a bucket (pops select the
    /// `(time, seq)` minimum, so internal order is irrelevant).
    buckets: Vec<Vec<Entry<E>>>,
    /// Bucket width in microseconds (≥ 1).
    width: u64,
    /// Live entries across all buckets.
    len: usize,
    /// Bucket the next pop examines first.
    cursor: usize,
    /// Exclusive upper time bound of the cursor bucket's current day.
    /// Invariant between pops: every live entry's time is at or after
    /// this day's start (`cursor_end - width`), or a push has reset the
    /// cursor to cover it.
    cursor_end: u64,
    /// Lifetime count of [`Calendar::resize`] calls (growth, shrink,
    /// and lap rebuilds).
    resizes: u64,
    /// Lifetime count of full-empty-lap rebuilds in [`Calendar::pop`]
    /// (each also counts as a resize).
    lap_rebuilds: u64,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        Calendar {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            width: 1,
            len: 0,
            cursor: 0,
            cursor_end: 1,
            resizes: 0,
            lap_rebuilds: 0,
        }
    }

    fn bucket_of(&self, t: u64) -> usize {
        ((t / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// The exclusive end of the day containing `t`.
    fn day_end(&self, t: u64) -> u64 {
        (t / self.width)
            .saturating_add(1)
            .saturating_mul(self.width)
    }

    fn push(&mut self, time: SimTime, seq: u64, payload: E) {
        if self.len + 1 > self.buckets.len() * 2 {
            self.resize(self.buckets.len() * 2);
        }
        let t = time.as_micros();
        // A push before the cursor's day (legal for a standalone queue;
        // the engine's no-past-scheduling rule makes it unreachable in a
        // simulation) rewinds the cursor so the pop scan still starts at
        // or before the earliest event.
        if t < self.cursor_end.saturating_sub(self.width) {
            self.cursor = self.bucket_of(t);
            self.cursor_end = self.day_end(t);
        }
        let b = self.bucket_of(t);
        self.buckets[b].push(Entry { time, seq, payload });
        self.len += 1;
    }

    /// Index of the `(time, seq)`-minimum entry of `bucket` among entries
    /// strictly before `end`, if any.
    fn min_in_window(&self, bucket: usize, end: u64) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for (i, e) in self.buckets[bucket].iter().enumerate() {
            if e.time.as_micros() < end {
                let key = (e.time, e.seq);
                if best.is_none_or(|(t, s, _)| key < (t, s)) {
                    best = Some((e.time, e.seq, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Bucket and index of the global `(time, seq)` minimum.
    ///
    /// # Panics
    /// Panics if the queue is empty.
    fn global_min(&self) -> (usize, usize) {
        let mut best: Option<(SimTime, u64, usize, usize)> = None;
        for (b, bucket) in self.buckets.iter().enumerate() {
            for (i, e) in bucket.iter().enumerate() {
                let key = (e.time, e.seq);
                if best.is_none_or(|(t, s, _, _)| key < (t, s)) {
                    best = Some((e.time, e.seq, b, i));
                }
            }
        }
        let (_, _, b, i) = best.expect("global_min on an empty calendar");
        (b, i)
    }

    fn take(&mut self, bucket: usize, idx: usize) -> (SimTime, E) {
        let e = self.buckets[bucket].swap_remove(idx);
        self.len -= 1;
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        }
        (e.time, e.payload)
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        let mut bucket = self.cursor;
        let mut end = self.cursor_end;
        for _ in 0..self.buckets.len() {
            if let Some(idx) = self.min_in_window(bucket, end) {
                self.cursor = bucket;
                self.cursor_end = end;
                return Some(self.take(bucket, idx));
            }
            bucket = (bucket + 1) & (self.buckets.len() - 1);
            end = end.saturating_add(self.width);
        }
        // A full lap of empty days: the width (derived at the last
        // resize) has gone stale — the live population's span outgrew
        // one calendar lap. Re-derive the width from the live entries
        // and re-anchor the cursor at the earliest event; the scan of
        // its day is then a guaranteed hit, and subsequent pops are
        // local again until the span drifts another lap. The rebuild is
        // O(len), amortized over the pops that emptied the lap.
        self.lap_rebuilds += 1;
        self.resize(self.buckets.len());
        let bucket = self.cursor;
        let idx = self
            .min_in_window(bucket, self.cursor_end)
            .expect("resize anchors the cursor at the earliest event's day");
        Some(self.take(bucket, idx))
    }

    fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let mut bucket = self.cursor;
        let mut end = self.cursor_end;
        for _ in 0..self.buckets.len() {
            if let Some(idx) = self.min_in_window(bucket, end) {
                return Some(self.buckets[bucket][idx].time);
            }
            bucket = (bucket + 1) & (self.buckets.len() - 1);
            end = end.saturating_add(self.width);
        }
        let (b, i) = self.global_min();
        Some(self.buckets[b][i].time)
    }

    /// Rebuilds the calendar with `nbuckets` buckets and a width derived
    /// from the current population's time span (mean separation, doubled
    /// so a day comfortably holds a couple of events), then re-anchors
    /// the cursor at the earliest live event.
    fn resize(&mut self, nbuckets: usize) {
        self.resizes += 1;
        let entries: Vec<Entry<E>> = self.buckets.iter_mut().flat_map(std::mem::take).collect();
        if entries.is_empty() {
            self.buckets = (0..MIN_BUCKETS).map(|_| Vec::new()).collect();
            self.width = 1;
            self.cursor = 0;
            self.cursor_end = 1;
            return;
        }
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in &entries {
            lo = lo.min(e.time.as_micros());
            hi = hi.max(e.time.as_micros());
        }
        let span = hi - lo;
        self.width = (span / entries.len() as u64).saturating_mul(2).max(1);
        self.buckets = (0..nbuckets).map(|_| Vec::new()).collect();
        for e in entries {
            let b = self.bucket_of(e.time.as_micros());
            self.buckets[b].push(e);
        }
        self.cursor = self.bucket_of(lo);
        self.cursor_end = self.day_end(lo);
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.len = 0;
    }
}

// ---------------------------------------------------------------------
// The public queue.
// ---------------------------------------------------------------------

enum Pending<E> {
    Calendar(Calendar<E>),
    Heap(BinaryHeap<Entry<E>>),
}

/// Lifetime statistics of an [`EventQueue`] — always maintained (plain
/// integer bumps on fields the hot path already touches; no atomics, no
/// allocation) and read out once per run by the observability layer.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub pushes: u64,
    /// Events ever delivered.
    pub pops: u64,
    /// High-water mark of pending events.
    pub depth_hwm: u64,
    /// Calendar rebuilds (growth, shrink, and lap rebuilds); 0 for the
    /// heap implementation.
    pub resizes: u64,
    /// Calendar full-empty-lap rebuilds (stale-width recovery, a subset
    /// of `resizes`); 0 for the heap implementation.
    pub lap_rebuilds: u64,
}

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO within a timestamp), whichever [`QueueKind`]
/// backs the queue.
pub struct EventQueue<E> {
    pending: Pending<E>,
    next_seq: u64,
    pops: u64,
    depth_hwm: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue of the thread's default kind (the calendar
    /// queue, unless overridden by [`with_queue_kind`]).
    pub fn new() -> Self {
        Self::with_kind(DEFAULT_KIND.with(|k| k.get()))
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        if let Pending::Heap(heap) = &mut q.pending {
            heap.reserve(cap);
        }
        q
    }

    /// Creates an empty queue backed by the given implementation.
    pub fn with_kind(kind: QueueKind) -> Self {
        let pending = match kind {
            QueueKind::Calendar => Pending::Calendar(Calendar::new()),
            QueueKind::Heap => Pending::Heap(BinaryHeap::new()),
        };
        EventQueue {
            pending,
            next_seq: 0,
            pops: 0,
            depth_hwm: 0,
        }
    }

    /// The implementation backing this queue.
    pub fn kind(&self) -> QueueKind {
        match &self.pending {
            Pending::Calendar(_) => QueueKind::Calendar,
            Pending::Heap(_) => QueueKind::Heap,
        }
    }

    /// Schedules `payload` at instant `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.pending {
            Pending::Calendar(c) => c.push(time, seq, payload),
            Pending::Heap(h) => h.push(Entry { time, seq, payload }),
        }
        let depth = self.len() as u64;
        if depth > self.depth_hwm {
            self.depth_hwm = depth;
        }
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let popped = match &mut self.pending {
            Pending::Calendar(c) => c.pop(),
            Pending::Heap(h) => h.pop().map(|e| (e.time, e.payload)),
        };
        if popped.is_some() {
            self.pops += 1;
        }
        popped
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.pending {
            Pending::Calendar(c) => c.peek_time(),
            Pending::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.pending {
            Pending::Calendar(c) => c.len,
            Pending::Heap(h) => h.len(),
        }
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime statistics: pushes, pops, depth high-water mark, and
    /// (for the calendar) rebuild counts.
    pub fn stats(&self) -> QueueStats {
        let (resizes, lap_rebuilds) = match &self.pending {
            Pending::Calendar(c) => (c.resizes, c.lap_rebuilds),
            Pending::Heap(_) => (0, 0),
        };
        QueueStats {
            pushes: self.next_seq,
            pops: self.pops,
            depth_hwm: self.depth_hwm,
            resizes,
            lap_rebuilds,
        }
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        match &mut self.pending {
            Pending::Calendar(c) => c.clear(),
            Pending::Heap(h) => h.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds() -> [QueueKind; 2] {
        [QueueKind::Calendar, QueueKind::Heap]
    }

    #[test]
    fn pops_in_time_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_secs(3.0), "c");
            q.push(SimTime::from_secs(1.0), "a");
            q.push(SimTime::from_secs(2.0), "b");
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, vec!["a", "b", "c"], "{kind:?}");
        }
    }

    #[test]
    fn ties_break_in_insertion_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            let t = SimTime::from_secs(5.0);
            for i in 0..100 {
                q.push(t, i);
            }
            let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{kind:?}");
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            q.push(SimTime::from_secs(10.0), 10);
            q.push(SimTime::from_secs(1.0), 1);
            assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 1)));
            q.push(SimTime::from_secs(5.0), 5);
            assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), 5)));
            assert_eq!(q.pop(), Some((SimTime::from_secs(10.0), 10)));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn peek_time_matches_pop() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_secs(2.0), ());
            q.push(SimTime::from_secs(1.0), ());
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
        }
    }

    #[test]
    fn len_and_clear() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..10 {
                q.push(SimTime::from_micros(i), i);
            }
            assert_eq!(q.len(), 10);
            q.clear();
            assert!(q.is_empty());
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn default_kind_is_calendar_and_override_scopes() {
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
        with_queue_kind(QueueKind::Heap, || {
            assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Heap);
            with_queue_kind(QueueKind::Calendar, || {
                assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
            });
            assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Heap);
        });
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
    }

    #[test]
    fn override_restored_on_panic() {
        let result = std::panic::catch_unwind(|| {
            with_queue_kind(QueueKind::Heap, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(EventQueue::<()>::new().kind(), QueueKind::Calendar);
    }

    /// A push into a day the cursor has already moved past (possible only
    /// for a standalone queue — the engine forbids scheduling in the
    /// past) still pops in global order.
    #[test]
    fn calendar_handles_past_pushes() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        for i in 0..64u64 {
            q.push(SimTime::from_micros(1_000 + i * 100), i);
        }
        assert_eq!(q.pop().map(|(_, e)| e), Some(0));
        // Behind everything, including the popped event's day.
        q.push(SimTime::from_micros(0), 999);
        assert_eq!(q.pop(), Some((SimTime::from_micros(0), 999)));
        assert_eq!(q.pop().map(|(_, e)| e), Some(1));
    }

    /// Far-future events separated by much more than a full calendar lap
    /// exercise the sparse-queue jump.
    #[test]
    fn calendar_jumps_over_sparse_spans() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(SimTime::from_micros(3), "near");
        q.push(SimTime::from_micros(u64::MAX - 1), "far");
        q.push(SimTime::from_micros(1_000_000_000), "mid");
        assert_eq!(q.pop().map(|(_, e)| e), Some("near"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("mid"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("far"));
        assert_eq!(q.pop(), None);
    }

    /// Growth and shrink thresholds: a large population pushed and fully
    /// drained in random-ish order stays totally ordered throughout.
    #[test]
    fn calendar_resizes_keep_order() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        let mut expect: Vec<u64> = Vec::new();
        for i in 0..2_000u64 {
            let t = (i.wrapping_mul(2_654_435_761)) % 50_000;
            q.push(SimTime::from_micros(t), i);
            expect.push(t);
        }
        expect.sort_unstable();
        let got: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_micros())
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn stats_track_churn_and_high_water() {
        for kind in kinds() {
            let mut q = EventQueue::with_kind(kind);
            for i in 0..8u64 {
                q.push(SimTime::from_micros(i * 10), i);
            }
            for _ in 0..3 {
                q.pop();
            }
            q.push(SimTime::from_micros(1_000), 99);
            let stats = q.stats();
            assert_eq!(stats.pushes, 9, "{kind:?}");
            assert_eq!(stats.pops, 3, "{kind:?}");
            assert_eq!(stats.depth_hwm, 8, "{kind:?}");
            if kind == QueueKind::Heap {
                assert_eq!(stats.resizes, 0);
                assert_eq!(stats.lap_rebuilds, 0);
            }
        }
    }

    #[test]
    fn stats_count_calendar_lap_rebuilds() {
        let mut q = EventQueue::with_kind(QueueKind::Calendar);
        q.push(SimTime::from_micros(3), "near");
        q.push(SimTime::from_micros(u64::MAX - 1), "far");
        q.pop();
        q.pop();
        let stats = q.stats();
        assert!(
            stats.lap_rebuilds >= 1,
            "sparse span must trigger a lap rebuild: {stats:?}"
        );
        assert!(stats.resizes >= stats.lap_rebuilds);
    }

    /// Interleaved monotone pop/push churn at steady occupancy — the
    /// simulation's actual access pattern.
    #[test]
    fn calendar_steady_state_churn_matches_heap() {
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut clock = 0u64;
        let mut x = 88172645463325252u64;
        for i in 0..500u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let t = clock + x % 10_000;
            cal.push(SimTime::from_micros(t), i);
            heap.push(SimTime::from_micros(t), i);
            if i % 3 == 0 {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b);
                if let Some((t, _)) = a {
                    clock = t.as_micros();
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
