//! The pending-event set.
//!
//! A binary heap keyed on `(time, sequence)`. The sequence number breaks
//! timestamp ties in insertion order, which makes event processing a total
//! order — the property that turns a simulation run into a pure function
//! of its inputs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered queue of events of type `E`.
///
/// Events scheduled for the same instant are delivered in the order they
/// were scheduled (FIFO within a timestamp).
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at instant `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), "c");
        q.push(SimTime::from_secs(1.0), "a");
        q.push(SimTime::from_secs(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10.0), 10);
        q.push(SimTime::from_secs(1.0), 1);
        assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), 1)));
        q.push(SimTime::from_secs(5.0), 5);
        assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), 5)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(10.0), 10)));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(2.0), ());
        q.push(SimTime::from_secs(1.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2.0)));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(SimTime::from_micros(i), i);
        }
        assert_eq!(q.len(), 10);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }
}
