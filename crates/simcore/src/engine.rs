//! The simulation engine: a clock plus a pending-event set.
//!
//! `Engine` enforces the fundamental DES invariant — events may only be
//! scheduled at or after the current instant — and advances the clock as
//! events are popped. The domain layers (schedulers, grid, middleware)
//! drive their own event loops on top of this.

use crate::queue::{EventQueue, QueueStats};
use crate::time::{Duration, SimTime};

/// A discrete-event simulation engine carrying events of type `E`.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at `t = 0` with an empty event set.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Lifetime statistics of the pending-event set (pushes, pops,
    /// depth high-water mark, calendar rebuilds) — read by the
    /// observability layer at the end of a run.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Schedules `event` at absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling backwards in time is
    /// always a model bug.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event in the past: {at} < now {}",
            self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` after a relative delay from the current instant.
    pub fn schedule_after(&mut self, delay: Duration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    ///
    /// Returns `None` when no events remain (simulation has drained).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let (t, e) = self.queue.pop()?;
        debug_assert!(
            t >= self.now,
            "event queue delivered an event from the past"
        );
        self.now = t;
        self.processed += 1;
        Some((t, e))
    }

    /// The timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Runs until the event set is empty or `handler` returns `false`,
    /// feeding each event to `handler` together with a mutable reference to
    /// the engine so handlers can schedule follow-up events.
    pub fn run_with<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Engine<E>, SimTime, E) -> bool,
    {
        while let Some((t, e)) = self.pop() {
            if !handler(self, t, e) {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(SimTime::from_secs(5.0), 5);
        eng.schedule(SimTime::from_secs(2.0), 2);
        assert_eq!(eng.now(), SimTime::ZERO);
        assert_eq!(eng.pop(), Some((SimTime::from_secs(2.0), 2)));
        assert_eq!(eng.now(), SimTime::from_secs(2.0));
        assert_eq!(eng.pop(), Some((SimTime::from_secs(5.0), 5)));
        assert_eq!(eng.processed(), 2);
        assert_eq!(eng.pop(), None);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut eng: Engine<()> = Engine::new();
        eng.schedule(SimTime::from_secs(10.0), ());
        eng.pop();
        eng.schedule(SimTime::from_secs(1.0), ());
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut eng: Engine<&str> = Engine::new();
        eng.schedule(SimTime::from_secs(3.0), "base");
        eng.pop();
        eng.schedule_after(Duration::from_secs(2.0), "later");
        assert_eq!(eng.pop(), Some((SimTime::from_secs(5.0), "later")));
    }

    #[test]
    fn run_with_processes_cascading_events() {
        let mut eng: Engine<u32> = Engine::new();
        eng.schedule(SimTime::from_secs(1.0), 0);
        let mut seen = Vec::new();
        eng.run_with(|eng, _t, depth| {
            seen.push(depth);
            if depth < 3 {
                eng.schedule_after(Duration::from_secs(1.0), depth + 1);
            }
            true
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(eng.now(), SimTime::from_secs(4.0));
    }

    #[test]
    fn run_with_can_stop_early() {
        let mut eng: Engine<u32> = Engine::new();
        for i in 0..10 {
            eng.schedule(SimTime::from_micros(i), i as u32);
        }
        let mut count = 0;
        eng.run_with(|_, _, _| {
            count += 1;
            count < 3
        });
        assert_eq!(count, 3);
        assert_eq!(eng.pending(), 7);
    }
}
