//! Simulated time.
//!
//! Time is measured in integer microseconds from the start of the
//! simulation. Integer time gives the kernel a total order that is exact
//! and platform-independent, which floating-point timestamps cannot
//! guarantee once values are produced by transcendental sampling code.
//! One microsecond of resolution is far below anything the study measures
//! (queue waits are minutes to days), and `u64` microseconds overflow
//! after ~584 000 years of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const MICROS_PER_SEC: f64 = 1_000_000.0;

/// An absolute instant in simulated time (microseconds since t = 0).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinity" sentinel
    /// in availability profiles.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from (non-negative, finite) seconds, rounding to
    /// the nearest microsecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Raw microseconds since t = 0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated causality never
    /// runs backwards, so such a call is a logic error.
    pub fn since(self, earlier: SimTime) -> Duration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: {earlier} is after {self}"
        );
        Duration(self.0 - earlier.0)
    }

    /// Saturating addition of a span (saturates at `SimTime::MAX`).
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Builds a span from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a span from (non-negative, finite) seconds, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs(secs: f64) -> Self {
        Duration(secs_to_micros(secs))
    }

    /// Builds a span from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * 3_600 * 1_000_000)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This span expressed in seconds.
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two spans.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Multiplies the span by a non-negative factor, rounding to the
    /// nearest microsecond.
    ///
    /// # Panics
    /// Panics if `factor` is negative or NaN.
    pub fn scale(self, factor: f64) -> Duration {
        assert!(
            factor >= 0.0 && factor.is_finite(),
            "Duration::scale: invalid factor {factor}"
        );
        Duration((self.0 as f64 * factor).round() as u64)
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "simulated time must be finite and non-negative, got {secs}"
    );
    let us = (secs * MICROS_PER_SEC).round();
    assert!(us <= u64::MAX as f64, "simulated time overflow: {secs} s");
    us as u64
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(d.0)
                .expect("SimTime overflow: instant + span"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, d: Duration) {
        *self = *self + d;
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, d: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(d.0)
                .expect("SimTime underflow: span larger than instant"),
        )
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, other: Duration) -> Duration {
        Duration(
            self.0
                .checked_add(other.0)
                .expect("Duration overflow in addition"),
        )
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, other: Duration) {
        *self = *self + other;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, other: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(other.0)
                .expect("Duration underflow in subtraction"),
        )
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, other: Duration) {
        *self = *self - other;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, k: u64) -> Duration {
        Duration(self.0.checked_mul(k).expect("Duration overflow in mul"))
    }
}

impl Div<Duration> for Duration {
    /// Ratio of two spans, e.g. `turnaround / runtime` when computing
    /// stretch.
    type Output = f64;
    fn div(self, other: Duration) -> f64 {
        assert!(!other.is_zero(), "division by zero Duration");
        self.0 as f64 / other.0 as f64
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_seconds() {
        let t = SimTime::from_secs(12.345678);
        assert!((t.as_secs() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn rounding_to_nearest_microsecond() {
        assert_eq!(SimTime::from_secs(1e-7).as_micros(), 0);
        assert_eq!(SimTime::from_secs(6e-7).as_micros(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + Duration::from_secs(5.0);
        assert_eq!(t, SimTime::from_secs(15.0));
        assert_eq!(t.since(SimTime::from_secs(4.0)), Duration::from_secs(11.0));
        assert_eq!(Duration::from_secs(4.0) / Duration::from_secs(2.0), 2.0);
    }

    #[test]
    fn ordering_is_total_and_exact() {
        let a = SimTime::from_micros(1);
        let b = SimTime::from_micros(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    #[should_panic(expected = "since")]
    fn since_panics_on_backwards_time() {
        let _ = SimTime::from_secs(1.0).since(SimTime::from_secs(2.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = Duration::from_secs(-1.0);
    }

    #[test]
    fn scale_rounds() {
        let d = Duration::from_secs(10.0).scale(1.5);
        assert_eq!(d, Duration::from_secs(15.0));
        assert_eq!(Duration::from_secs(1.0).scale(0.0), Duration::ZERO);
    }

    #[test]
    fn hours_helper() {
        assert_eq!(Duration::from_hours(6), Duration::from_secs(21_600.0));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(Duration::from_secs(1.0)),
            SimTime::MAX
        );
    }
}
