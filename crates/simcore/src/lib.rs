//! # rbr-simcore
//!
//! A small, deterministic discrete-event simulation (DES) kernel.
//!
//! The original study was built on the SimGrid toolkit. Section 3 of the
//! paper deliberately models *no* network or processing overheads, so the
//! only SimGrid services the simulation actually needs are (a) a virtual
//! clock, (b) a totally ordered pending-event set, and (c) reproducible
//! random streams. This crate provides exactly those three, with two
//! properties the study depends on:
//!
//! * **Determinism** — simulated time is integer microseconds and events
//!   with equal timestamps are ordered by insertion sequence, so a run is a
//!   pure function of its seed.
//! * **Reproducible parallel replication** — independent random streams are
//!   derived from a master seed with a SplitMix64 mixer, so replication `k`
//!   of an experiment produces identical results whether replications run
//!   sequentially or as cells on the `rbr-exec` work-stealing pool.
//!
//! ```
//! use rbr_simcore::{Engine, SimTime, Duration};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule(SimTime::from_secs(2.0), "second");
//! engine.schedule(SimTime::from_secs(1.0), "first");
//! let (t, ev) = engine.pop().unwrap();
//! assert_eq!(ev, "first");
//! assert_eq!(t, SimTime::from_secs(1.0));
//! assert_eq!(engine.now(), SimTime::from_secs(1.0));
//! ```

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::Engine;
pub use queue::{with_queue_kind, EventQueue, QueueKind, QueueStats};
pub use rng::{derive_seed, stream_rng, unit, SeedSequence};
pub use time::{Duration, SimTime};
