//! Reproducible random streams.
//!
//! Experiment campaigns run 50 replications of many configurations, often
//! in parallel. To make every replication a pure function of
//! `(master seed, replication index, stream role)` regardless of execution
//! order, seeds are derived with a SplitMix64 mixer rather than drawn from
//! a shared generator.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// One round of the SplitMix64 output function — a strong 64-bit mixer.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a master seed and a stream identifier.
///
/// Distinct `stream` values yield statistically independent seeds; the
/// mapping is pure, so derivation order does not matter.
pub fn derive_seed(master: u64, stream: u64) -> u64 {
    // Two mixing rounds so that (master, stream) and (master', stream')
    // with master' = master ± small, stream' = stream ± small never
    // collide in practice.
    splitmix64(splitmix64(master ^ 0xA076_1D64_78BD_642F).wrapping_add(splitmix64(stream)))
}

/// Builds a seeded `StdRng` for a `(master, stream)` pair.
pub fn stream_rng(master: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, stream))
}

/// A uniform draw in `[0, 1)` with the full 53 bits of double precision.
///
/// Every sampler in the workspace (workload models, selection policies,
/// churn processes) uses this one mapping from generator output to the
/// unit interval, so distributional code never depends on which concrete
/// `Rng` drives it.
#[inline]
pub fn unit<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A hierarchical seed: experiments derive per-replication sequences, which
/// derive per-cluster / per-role streams, and so on.
///
/// ```
/// use rbr_simcore::SeedSequence;
/// let root = SeedSequence::new(42);
/// let rep3 = root.child(3);
/// let arrivals = rep3.child(0).rng();
/// let sizes = rep3.child(1).rng();
/// // `arrivals` and `sizes` are independent, and identical across runs.
/// # let _ = (arrivals, sizes);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Creates the root of a seed hierarchy.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            state: splitmix64(master ^ 0x5851_F42D_4C95_7F2D),
        }
    }

    /// Derives the `index`-th child sequence.
    pub fn child(self, index: u64) -> SeedSequence {
        SeedSequence {
            state: derive_seed(self.state, index),
        }
    }

    /// Derives the node at a whole `path` of child indices —
    /// `seq.path(&[a, b, c])` is `seq.child(a).child(b).child(c)`.
    ///
    /// Campaign cells use this to name their seed in one step: a cell
    /// identified by `(experiment, config point, replication)` derives
    /// `master.path(&[config, rep])` no matter which thread evaluates it
    /// or in what order, which is what makes parallel campaigns merge
    /// bit-identically to serial ones.
    ///
    /// ```
    /// use rbr_simcore::SeedSequence;
    /// let root = SeedSequence::new(42);
    /// assert_eq!(root.path(&[3, 1]), root.child(3).child(1));
    /// assert_eq!(root.path(&[]), root);
    /// ```
    pub fn path(self, indices: &[u64]) -> SeedSequence {
        indices.iter().fold(self, |seq, &i| seq.child(i))
    }

    /// The raw 64-bit seed of this node.
    pub fn seed(self) -> u64 {
        self.state
    }

    /// A generator seeded from this node.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
        let mut a = stream_rng(42, 7);
        let mut b = stream_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_streams_differ() {
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn no_collisions_on_small_grid() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..64u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(derive_seed(master, stream)));
            }
        }
    }

    #[test]
    fn seed_sequence_children_are_independent_of_sibling_order() {
        let root = SeedSequence::new(99);
        let c5_first = root.child(5);
        let _c1 = root.child(1);
        let c5_second = root.child(5);
        assert_eq!(c5_first, c5_second);
    }

    #[test]
    fn path_matches_chained_children() {
        let root = SeedSequence::new(123);
        assert_eq!(root.path(&[]), root);
        assert_eq!(root.path(&[4]), root.child(4));
        assert_eq!(root.path(&[4, 0, 9]), root.child(4).child(0).child(9));
        // Sibling paths differ, and a path is not its own prefix.
        assert_ne!(root.path(&[4, 0]), root.path(&[4, 1]));
        assert_ne!(root.path(&[4, 0]), root.path(&[4]));
    }

    #[test]
    fn seed_sequence_tree_levels_do_not_collide() {
        let root = SeedSequence::new(7);
        // child(a).child(b) should differ from child(b).child(a) in general.
        assert_ne!(root.child(1).child(2).seed(), root.child(2).child(1).seed());
        assert_ne!(root.child(0).seed(), root.seed());
    }

    #[test]
    fn unit_draws_stay_in_the_half_open_interval() {
        let mut rng = SeedSequence::new(7).rng();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let u = unit(&mut rng);
            min = min.min(u);
            max = max.max(u);
            assert!((0.0..1.0).contains(&u), "unit draw {u} out of range");
        }
        // With 10k draws the extremes should approach the interval ends.
        assert!(min < 0.01 && max > 0.99, "min {min}, max {max}");
    }

    #[test]
    fn unit_is_deterministic_per_seed() {
        let mut a = SeedSequence::new(11).rng();
        let mut b = SeedSequence::new(11).rng();
        for _ in 0..64 {
            assert_eq!(unit(&mut a).to_bits(), unit(&mut b).to_bits());
        }
    }

    #[test]
    fn stream_values_look_uniform() {
        // Crude sanity check: mean of u01 draws near 0.5.
        let mut rng = SeedSequence::new(2024).rng();
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
