//! Property tests for the DES kernel: total event order and time
//! arithmetic.

use proptest::prelude::*;
use rbr_simcore::{Duration, EventQueue, SimTime};

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO order
    /// within a timestamp, for any interleaving of pushes.
    #[test]
    fn event_queue_is_a_total_order(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), (t, i));
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, (orig, idx))) = q.pop() {
            prop_assert_eq!(t.as_micros(), orig);
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO within equal timestamps");
                }
            }
            last = Some((t, idx));
        }
    }

    /// Popping drains exactly what was pushed.
    #[test]
    fn event_queue_conserves_events(times in prop::collection::vec(0u64..10_000, 0..300)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.push(SimTime::from_micros(t), t);
        }
        let mut popped: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        let mut expected = times.clone();
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// Time arithmetic: (t + d) − d == t and since() inverts addition.
    #[test]
    fn time_arithmetic_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let base = SimTime::from_micros(t);
        let span = Duration::from_micros(d);
        let later = base + span;
        prop_assert_eq!(later - span, base);
        prop_assert_eq!(later.since(base), span);
    }

    /// Seconds ↔ micros conversions agree within half a microsecond.
    #[test]
    fn seconds_conversion_is_tight(us in 0u64..(1u64 << 52)) {
        let t = SimTime::from_micros(us);
        let back = SimTime::from_secs(t.as_secs());
        let diff = back.as_micros().abs_diff(us);
        prop_assert!(diff <= 1, "drift {diff} at {us}");
    }

    /// Duration scaling by 1.0 is the identity and by 0.0 is zero.
    #[test]
    fn duration_scale_identities(us in 0u64..(1u64 << 50)) {
        let d = Duration::from_micros(us);
        prop_assert_eq!(d.scale(1.0), d);
        prop_assert_eq!(d.scale(0.0), Duration::ZERO);
    }
}
