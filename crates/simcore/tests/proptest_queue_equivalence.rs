//! Calendar-queue ↔ binary-heap equivalence.
//!
//! The calendar queue is only admissible as the default pending-event set
//! if it pops the *exact* sequence — timestamps and FIFO tie order — that
//! the reference `BinaryHeap` implementation produces for the same pushes.
//! These properties drive both implementations with identical schedules,
//! including interleaved pops, timestamp ties, past-of-cursor pushes, and
//! populations large enough to cross the calendar's resize thresholds.

use proptest::prelude::*;
use rbr_simcore::{EventQueue, QueueKind, SimTime};

/// One step of an interleaved schedule: push at a time offset, or pop.
#[derive(Clone, Debug)]
enum Op {
    Push(u64),
    Pop,
}

fn op_strategy(max_t: u64) -> impl Strategy<Value = Op> {
    (0..max_t, 0u8..5).prop_map(|(t, k)| if k < 3 { Op::Push(t) } else { Op::Pop })
}

/// Runs a schedule against one queue kind, recording every observable:
/// pop results (with payload = push index), peeks, and lengths.
fn run_schedule(kind: QueueKind, ops: &[Op]) -> Vec<String> {
    let mut q = EventQueue::with_kind(kind);
    let mut trace = Vec::new();
    let mut pushed = 0u64;
    for op in ops {
        match op {
            Op::Push(t) => {
                q.push(SimTime::from_micros(*t), pushed);
                pushed += 1;
            }
            Op::Pop => {
                trace.push(format!("pop {:?}", q.pop()));
            }
        }
        trace.push(format!("peek {:?} len {}", q.peek_time(), q.len()));
    }
    while let Some((t, v)) = q.pop() {
        trace.push(format!("drain {} {}", t.as_micros(), v));
    }
    trace
}

proptest! {
    /// Arbitrary interleaved push/pop schedules over a narrow time range
    /// (dense ties) observe identically on both implementations.
    #[test]
    fn dense_schedules_match(ops in prop::collection::vec(op_strategy(50), 0..400)) {
        prop_assert_eq!(
            run_schedule(QueueKind::Calendar, &ops),
            run_schedule(QueueKind::Heap, &ops)
        );
    }

    /// Wide time ranges (sparse calendar, far-future jumps, resizes) also
    /// match exactly.
    #[test]
    fn sparse_schedules_match(ops in prop::collection::vec(op_strategy(u64::MAX / 2), 0..400)) {
        prop_assert_eq!(
            run_schedule(QueueKind::Calendar, &ops),
            run_schedule(QueueKind::Heap, &ops)
        );
    }

    /// Engine-disciplined schedules: every push is at or after the last
    /// popped time (the only pattern a simulation can produce). This is
    /// the regime the cursor invariant is designed for, so drive it hard
    /// with steady churn at realistic occupancy.
    #[test]
    fn monotone_churn_matches(
        gaps in prop::collection::vec((0u64..20_000, 0u8..3), 1..500)
    ) {
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        let mut now = 0u64;
        for (id, &(gap, pops)) in gaps.iter().enumerate() {
            let t = SimTime::from_micros(now.saturating_add(gap));
            cal.push(t, id as u64);
            heap.push(t, id as u64);
            for _ in 0..pops {
                let a = cal.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if let Some((t, _)) = a {
                    now = t.as_micros();
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Bulk loads with heavy timestamp ties drain in identical order.
    #[test]
    fn tied_bulk_loads_match(times in prop::collection::vec(0u64..8, 0..600)) {
        let mut cal = EventQueue::with_kind(QueueKind::Calendar);
        let mut heap = EventQueue::with_kind(QueueKind::Heap);
        for (i, &t) in times.iter().enumerate() {
            cal.push(SimTime::from_micros(t), i);
            heap.push(SimTime::from_micros(t), i);
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
