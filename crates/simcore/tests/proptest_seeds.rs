//! Property tests for the seed hierarchy: the paired-replication design
//! of every experiment rests on `derive_seed`/`SeedSequence::child`
//! being pure, order-independent, and collision-free over the index
//! ranges the simulator actually uses (cluster streams, replication
//! indices, the fault stream at `n + 1`).

use std::collections::HashSet;

use proptest::prelude::*;
use rbr_simcore::{derive_seed, SeedSequence};

proptest! {
    /// Derivation is a pure function: same inputs, same child seed,
    /// regardless of how many other derivations happen in between.
    #[test]
    fn child_derivation_is_pure_and_order_independent(
        master in 0u64..u64::MAX,
        a in 0u64..1_000,
        b in 0u64..1_000,
    ) {
        let root = SeedSequence::new(master);
        let first = root.child(a);
        // Interleave unrelated derivations; they must not perturb `a`.
        let _ = root.child(b);
        let _ = root.child(a.wrapping_add(b));
        prop_assert_eq!(first, root.child(a));
        prop_assert_eq!(
            derive_seed(master, a),
            derive_seed(master, a)
        );
    }

    /// Sibling streams never collide over a realistic index range — the
    /// grid simulator hands out `child(0..=n+1)` for workloads,
    /// selection, and the fault stream, so a collision would silently
    /// correlate two supposedly independent streams.
    #[test]
    fn sibling_streams_do_not_collide(master in 0u64..u64::MAX) {
        let root = SeedSequence::new(master);
        let mut seen = HashSet::new();
        for index in 0..512u64 {
            prop_assert!(
                seen.insert(root.child(index).seed()),
                "child({index}) collided under master {master}"
            );
        }
    }

    /// Distinct masters produce distinct roots and (overwhelmingly)
    /// distinct child grids — replications re-seeded from different
    /// masters must not share job streams.
    #[test]
    fn distinct_masters_diverge(master in 0u64..u64::MAX, offset in 1u64..1_000) {
        let a = SeedSequence::new(master);
        let b = SeedSequence::new(master.wrapping_add(offset));
        prop_assert_ne!(a.seed(), b.seed());
        for index in 0..16u64 {
            prop_assert_ne!(a.child(index).seed(), b.child(index).seed());
        }
    }

    /// Tree levels are distinguished: a node never equals its own child,
    /// and grandchildren via different paths differ (`child(a).child(b)`
    /// vs `child(b).child(a)` for a ≠ b).
    #[test]
    fn tree_paths_are_distinguished(
        master in 0u64..u64::MAX,
        a in 0u64..100,
        b in 0u64..100,
    ) {
        let root = SeedSequence::new(master);
        prop_assert_ne!(root.child(a).seed(), root.seed());
        if a != b {
            prop_assert_ne!(
                root.child(a).child(b).seed(),
                root.child(b).child(a).seed()
            );
        }
    }

    /// `path` is exactly iterated `child`: the campaign engine derives
    /// cell seeds by path, experiments derive them by chained children —
    /// both must name the same node, split anywhere.
    #[test]
    fn path_equals_iterated_children(
        master in 0u64..u64::MAX,
        a in 0u64..1_000,
        b in 0u64..1_000,
        c in 0u64..1_000,
    ) {
        let root = SeedSequence::new(master);
        prop_assert_eq!(root.path(&[a, b, c]), root.child(a).child(b).child(c));
        // Splitting a path anywhere is associative.
        prop_assert_eq!(root.path(&[a]).path(&[b, c]), root.path(&[a, b]).path(&[c]));
    }

    /// Identical sequences drive identical generators: the first draws
    /// of two independently constructed rngs from the same node agree.
    #[test]
    fn same_node_yields_identical_generators(master in 0u64..u64::MAX, index in 0u64..1_000) {
        use rand::Rng as _;
        let mut x = SeedSequence::new(master).child(index).rng();
        let mut y = SeedSequence::new(master).child(index).rng();
        for _ in 0..8 {
            prop_assert_eq!(x.next_u64(), y.next_u64());
        }
    }
}
