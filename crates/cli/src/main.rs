//! `rbr` — the command-line interface to the reproduction.
//!
//! ```text
//! rbr list                          list every experiment
//! rbr run <name> [--scale S]       run one experiment (fig1 … table4,
//!                                   queue-growth, conclusion, ablations,
//!                                   forecast, moldable, all)
//! rbr capacity [--iat SECS]        the Section 4 capacity arithmetic
//! rbr swf-export <path> [--hours H] export a synthetic SWF trace
//! rbr throughput                   native scheduler submit/cancel rates
//! ```
//!
//! `--scale` accepts `smoke`, `quick` (default), or `paper`.

use std::process::ExitCode;

use rbr::experiments::{
    ablation, conclusion, dual_queue, fig1, fig3, fig4, fig5, forecast, moldable, queue_growth,
    table1, table2, table3, table4, trace_check,
};
use rbr::grid::Scheme;
use rbr::middleware::{max_redundancy, steady_state_load, SystemCapacity};
use rbr::report::Table;
use rbr::sched::Algorithm;
use rbr::sim::{Duration, SeedSequence};
use rbr::workload::{EstimateModel, LublinConfig, LublinModel, SwfTrace};
use rbr::Scale;

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "Figure 1: relative average stretch vs number of clusters"),
    ("fig2", "Figure 2: relative CV of stretches vs number of clusters"),
    ("fig3", "Figure 3: relative stretch vs job interarrival time"),
    ("fig4", "Figure 4: r-jobs vs n-r jobs vs fraction using redundancy"),
    ("fig5", "Figure 5: scheduler throughput vs queue size"),
    ("table1", "Table 1: EASY/CBF/FCFS x exact/real estimates"),
    ("table2", "Table 2: non-uniform redundant request distribution"),
    ("table3", "Table 3: heterogeneous platforms"),
    ("table4", "Table 4: queue-wait over-prediction"),
    ("queue-growth", "§4.1: maximum queue size, ALL vs NONE"),
    ("conclusion", "Conclusion scenario: N=20, 80% redundant"),
    ("ablations", "Beyond the paper: load regime, CBF cycle, selection, inflation"),
    ("forecast", "Beyond the paper: statistical wait forecasting under redundancy"),
    ("moldable", "Beyond the paper: option (iv) moldable shape redundancy"),
    ("dual-queue", "Beyond the paper: option (iii) premium/standard queue racing"),
    ("trace-check", "§3.1.1 cross-check: replay an SWF trace split across clusters"),
    ("all", "Everything above, in paper order"),
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            let mut t = Table::new(vec!["name", "description"]);
            for (name, desc) in EXPERIMENTS {
                t.push(vec![name.to_string(), desc.to_string()]);
            }
            print!("{}", t.render());
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = it.next() else {
                eprintln!("usage: rbr run <experiment> [--scale smoke|quick|paper]");
                return ExitCode::FAILURE;
            };
            let scale = match parse_scale(&args) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            run_experiment(name, scale)
        }
        Some("capacity") => {
            let iat = parse_flag_value(&args, "--iat").unwrap_or(5.0);
            capacity(iat);
            ExitCode::SUCCESS
        }
        Some("swf-export") => {
            let Some(path) = it.next() else {
                eprintln!("usage: rbr swf-export <path> [--hours H]");
                return ExitCode::FAILURE;
            };
            let hours = parse_flag_value(&args, "--hours").unwrap_or(1.0);
            swf_export(path, hours)
        }
        Some("throughput") => {
            throughput();
            ExitCode::SUCCESS
        }
        Some("--help") | Some("-h") | None => {
            println!(
                "rbr — reproduction of 'On the Harmfulness of Redundant Batch Requests' (HPDC'06)\n\n\
                 commands:\n  \
                 list                           list experiments\n  \
                 run <name> [--scale S]         run an experiment (S: smoke|quick|paper)\n  \
                 capacity [--iat SECS]          Section 4 capacity arithmetic\n  \
                 swf-export <path> [--hours H]  export a synthetic SWF trace\n  \
                 throughput                     native scheduler throughput sweep"
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try `rbr --help`");
            ExitCode::FAILURE
        }
    }
}

fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match flag_value(args, "--scale") {
        None => Ok(Scale::from_env(Scale::Quick)),
        Some("smoke") => Ok(Scale::Smoke),
        Some("quick") => Ok(Scale::Quick),
        Some("paper") => Ok(Scale::Paper),
        Some(other) => Err(format!("unknown scale {other:?} (smoke|quick|paper)")),
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag_value(args: &[String], flag: &str) -> Option<f64> {
    flag_value(args, flag).and_then(|v| v.parse().ok())
}

fn run_experiment(name: &str, scale: Scale) -> ExitCode {
    eprintln!("running {name} at {scale:?} scale...");
    match name {
        "fig1" => print!("{}", fig1::render(&fig1::run(&fig1::Config::at_scale(scale)))),
        "fig2" => {
            let rows = fig1::run(&fig1::Config::at_scale(scale));
            let mut t = Table::new(vec!["N", "scheme", "rel CV"]);
            for r in &rows {
                t.push(vec![r.n.to_string(), r.scheme.to_string(), format!("{:.3}", r.rel_cv)]);
            }
            print!("{}", t.render());
        }
        "fig3" => print!("{}", fig3::render(&fig3::run(&fig3::Config::at_scale(scale)))),
        "fig4" => print!("{}", fig4::render(&fig4::run(&fig4::Config::at_scale(scale)))),
        "fig5" => print!("{}", fig5::render(&fig5::run(&fig5::Config::at_scale(scale)))),
        "table1" => print!("{}", table1::render(&table1::run(&table1::Config::at_scale(scale)))),
        "table2" => print!("{}", table2::render(&table2::run(&table2::Config::at_scale(scale)))),
        "table3" => print!("{}", table3::render(&table3::run(&table3::Config::at_scale(scale)))),
        "table4" => print!("{}", table4::render(&table4::run(&table4::Config::at_scale(scale)))),
        "queue-growth" => print!(
            "{}",
            queue_growth::render(&queue_growth::run(&queue_growth::Config::at_scale(scale)))
        ),
        "conclusion" => print!(
            "{}",
            conclusion::render(&conclusion::run(&conclusion::Config::at_scale(scale)))
        ),
        "ablations" => {
            print!(
                "{}",
                ablation::render(
                    "load",
                    &ablation::load_sweep(scale, Scheme::All, &[0.9, 1.0, 1.1, 1.2]),
                )
            );
            print!(
                "{}",
                ablation::render("cycle", &ablation::cbf_cycle_sweep(scale, &[0.0, 30.0, 300.0]))
            );
            print!(
                "{}",
                ablation::render("policy", &ablation::selection_sweep(scale, Scheme::R(2)))
            );
            print!(
                "{}",
                ablation::render("inflation", &ablation::inflation_sweep(scale, Scheme::Half))
            );
        }
        "forecast" => print!(
            "{}",
            forecast::render(&forecast::run(&forecast::Config::at_scale(scale)))
        ),
        "moldable" => print!(
            "{}",
            moldable::render(&moldable::run(&moldable::Config::at_scale(scale)))
        ),
        "dual-queue" => print!(
            "{}",
            dual_queue::render(&dual_queue::run(&dual_queue::Config::at_scale(scale)))
        ),
        "trace-check" => print!(
            "{}",
            trace_check::render(&trace_check::run(&trace_check::Config::at_scale(scale)))
        ),
        "all" => {
            for (name, _) in EXPERIMENTS.iter().filter(|(n, _)| *n != "all") {
                println!("\n=== {name} ===");
                run_experiment(name, scale);
            }
        }
        other => {
            eprintln!("unknown experiment {other:?}; try `rbr list`");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn capacity(iat: f64) {
    let sys = SystemCapacity::paper_2006();
    println!("interarrival time: {iat} s per cluster\n");
    let mut t = Table::new(vec!["component", "max sustainable redundancy r"]);
    for (component, r) in sys.max_redundancy_per_component(iat) {
        t.push(vec![format!("{component:?}"), format!("{r:.1}")]);
    }
    print!("{}", t.render());
    let (bottleneck, rate) = sys.bottleneck();
    println!("\nbottleneck: {bottleneck:?} ({rate:.2} submissions/s)");
    println!("system-wide: r < {:.1}", sys.max_redundancy(iat));
    println!();
    for r in [1.0, 3.0, 30.0] {
        let load = steady_state_load(r, iat);
        println!(
            "r = {r:2.0}: {:.2} submissions/s + {:.2} cancellations/s per cluster",
            load.submissions_per_sec, load.cancellations_per_sec
        );
    }
    let _ = max_redundancy(iat, 6.0);
}

fn swf_export(path: &str, hours: f64) -> ExitCode {
    let model = LublinModel::new(LublinConfig::paper_2006());
    let jobs = model.generate(
        &mut SeedSequence::new(2006).rng(),
        Duration::from_secs(hours * 3600.0),
        &EstimateModel::paper_real(),
    );
    let trace = SwfTrace::from_jobs(
        &jobs,
        vec![
            "Synthetic trace from the calibrated Lublin model".to_string(),
            "Computer: rbr 128-node cluster".to_string(),
            format!("Hours: {hours}"),
        ],
    );
    match std::fs::write(path, trace.to_swf()) {
        Ok(()) => {
            println!("wrote {} jobs to {path}", jobs.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn throughput() {
    let mut t = Table::new(vec!["queue size", "EASY pairs/s", "CBF pairs/s", "FCFS pairs/s"]);
    for q in [0usize, 1_000, 5_000, 10_000] {
        let mut row = vec![q.to_string()];
        for alg in [Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs] {
            row.push(format!("{:.0}", fig5::native_throughput(alg, q, 500, 7)));
        }
        t.push(row);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_following_token() {
        let a = args(&["run", "fig1", "--scale", "paper"]);
        assert_eq!(flag_value(&a, "--scale"), Some("paper"));
        assert_eq!(flag_value(&a, "--iat"), None);
        // Flag at the end with no value.
        let b = args(&["capacity", "--iat"]);
        assert_eq!(flag_value(&b, "--iat"), None);
    }

    #[test]
    fn parse_scale_accepts_all_levels() {
        assert_eq!(parse_scale(&args(&["--scale", "smoke"])).unwrap(), Scale::Smoke);
        assert_eq!(parse_scale(&args(&["--scale", "quick"])).unwrap(), Scale::Quick);
        assert_eq!(parse_scale(&args(&["--scale", "paper"])).unwrap(), Scale::Paper);
        assert!(parse_scale(&args(&["--scale", "huge"])).is_err());
    }

    #[test]
    fn parse_flag_value_parses_numbers() {
        assert_eq!(parse_flag_value(&args(&["--iat", "2.5"]), "--iat"), Some(2.5));
        assert_eq!(parse_flag_value(&args(&["--iat", "x"]), "--iat"), None);
    }

    #[test]
    fn experiment_registry_is_complete() {
        // Every named experiment should be unique.
        let mut names: Vec<&str> = EXPERIMENTS.iter().map(|(n, _)| *n).collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), before);
        assert!(names.contains(&"all"));
    }
}
