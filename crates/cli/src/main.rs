//! `rbr` — the command-line interface to the reproduction.
//!
//! ```text
//! rbr list                          list every registered experiment
//! rbr run <name|all> [options]      run experiments through the registry
//!     --scale smoke|quick|paper     fidelity (default: quick)
//!     --seed N                      override the experiment's master seed
//!     --reps N                      override replications per configuration
//!     --format text|csv|json        output format (default: text)
//!     --jobs N                      parallel execution lanes (default:
//!                                   available parallelism; 1 = serial)
//!     --out DIR                     campaign directory: write <name>.<ext>
//!                                   files + a crash-safe journal there
//!     --resume DIR                  resume an interrupted campaign, replaying
//!                                   journalled cells and running the rest
//!     --cache DIR                   shared cell cache: reuse identical cells
//!                                   computed by any previous campaign
//! rbr audit <name|all> [options]    run experiments under the invariant
//!     --scale smoke|quick|paper     auditor and report any violations
//!     --seed N                      (default scale: smoke)
//! rbr obs trace <file>              fold a trace into a phase breakdown
//! rbr obs metrics <file> [--format] render a metrics snapshot
//! rbr capacity [--iat SECS]        the Section 4 capacity arithmetic
//! rbr swf-export <path> [--hours H] export a synthetic SWF trace
//! rbr throughput                   native scheduler submit/cancel rates
//! rbr serve [options]              run the batching metascheduler service
//!     --addr HOST:PORT              listen address (default 127.0.0.1:7206)
//!     --batch N                     ops per transaction (default 8)
//!     --deadline SECS               batch flush deadline (default 30)
//!     --clock virtual|wall          service clock (default virtual)
//!     --log PATH                    write the admission log here (default stdout)
//! rbr loadgen [options]            replay Lublin arrivals against the service
//!     --addr HOST:PORT              server address (default 127.0.0.1:7206)
//!     --jobs N                      jobs to replay (default 1000)
//!     --rate M                      arrival-rate multiple (default 1.0)
//!     --seed N                      workload seed (default 2006)
//! ```
//!
//! `run`, `audit`, and `serve` additionally accept the observability
//! flags `--trace FILE` (append JSONL trace records from `rbr-obs`) and
//! `--metrics FILE` (enable the metrics registry and write a JSON
//! snapshot at exit). Both are side channels: reports, admission logs,
//! and exit codes are byte-identical with or without them.
//!
//! Every experiment — name, description, seed, tables — comes from
//! [`Registry::standard`]; the CLI holds no experiment list of its own.
//! `run` executes on the `rbr-exec` campaign engine: experiments and
//! their replications become work-stealing cells, merged in a fixed
//! order, so any `--jobs` count produces byte-identical reports.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use rbr::experiments::campaign::{Plan, RunOptions};
use rbr::experiments::{fig5, Experiment, Registry};
use rbr::middleware::{max_redundancy, steady_state_load, SystemCapacity};
use rbr::report::{Format, Table};
use rbr::sched::Algorithm;
use rbr::sim::{Duration, SeedSequence};
use rbr::workload::{EstimateModel, LublinConfig, LublinModel, SwfTrace};
use rbr::Scale;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("list") => {
            let registry = Registry::standard();
            let mut t = Table::new(vec!["name", "section", "description"]);
            for e in registry.iter() {
                t.push(vec![e.name(), e.paper_section(), e.description()]);
            }
            print!("{}", t.render());
            println!("\nrun one with `rbr run <name>`, or everything with `rbr run all`");
            ExitCode::SUCCESS
        }
        Some("run") => {
            let Some(name) = it.next() else {
                eprintln!(
                    "usage: rbr run <name|all> [--scale S] [--seed N] [--reps N] [--format F] \
                     [--jobs N] [--out DIR] [--resume DIR] [--cache DIR]"
                );
                return ExitCode::FAILURE;
            };
            match run_command(name, &args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("audit") => {
            let Some(name) = it.next() else {
                eprintln!("usage: rbr audit <name|all> [--scale S] [--seed N]");
                return ExitCode::FAILURE;
            };
            match audit_command(name, &args) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("{e}");
                    ExitCode::FAILURE
                }
            }
        }
        Some("capacity") => {
            let iat = parse_flag_value(&args, "--iat").unwrap_or(5.0);
            capacity(iat);
            ExitCode::SUCCESS
        }
        Some("swf-export") => {
            let Some(path) = it.next() else {
                eprintln!("usage: rbr swf-export <path> [--hours H]");
                return ExitCode::FAILURE;
            };
            let hours = parse_flag_value(&args, "--hours").unwrap_or(1.0);
            swf_export(path, hours)
        }
        Some("throughput") => {
            throughput();
            ExitCode::SUCCESS
        }
        Some("obs") => match obs_command(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match serve_command(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("loadgen") => match loadgen_command(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
        Some("--help") | Some("-h") | None => {
            println!(
                "rbr — reproduction of 'On the Harmfulness of Redundant Batch Requests' (HPDC'06)\n\n\
                 commands:\n  \
                 list                           list registered experiments\n  \
                 run <name|all> [options]       run experiments via the registry\n    \
                 --scale smoke|quick|paper    fidelity (default: quick)\n    \
                 --seed N                     override the master seed\n    \
                 --reps N                     override replications per config\n    \
                 --format text|csv|json       output format (default: text)\n    \
                 --jobs N                     parallel lanes (default: available cores)\n    \
                 --out DIR                    campaign dir: <name>.<ext> files + journal\n    \
                 --resume DIR                 resume an interrupted campaign from its journal\n    \
                 --cache DIR                  shared cell cache across campaigns\n  \
                 audit <name|all> [options]     run experiments under the invariant auditor\n    \
                 --scale smoke|quick|paper    fidelity (default: smoke)\n    \
                 --seed N                     override the master seed\n  \
                 obs trace <file>               fold a --trace file into a phase breakdown\n  \
                 obs metrics <file> [--format]  render a --metrics snapshot (text|csv|json)\n  \
                 capacity [--iat SECS]          Section 4 capacity arithmetic\n  \
                 swf-export <path> [--hours H]  export a synthetic SWF trace\n  \
                 throughput                     native scheduler throughput sweep\n  \
                 serve [options]                batching metascheduler service\n    \
                 --addr HOST:PORT             listen address (default 127.0.0.1:7206)\n    \
                 --batch N                    ops per transaction (default 8)\n    \
                 --deadline SECS              batch flush deadline (default 30)\n    \
                 --clock virtual|wall         service clock (default virtual)\n    \
                 --log PATH                   admission log file (default stdout)\n  \
                 loadgen [options]              replay Lublin arrivals against serve\n    \
                 --addr HOST:PORT             server address (default 127.0.0.1:7206)\n    \
                 --jobs N                     jobs to replay (default 1000)\n    \
                 --rate M                     arrival-rate multiple (default 1.0)\n    \
                 --seed N                     workload seed (default 2006)\n\n\
                 run, audit, and serve also accept --trace FILE (JSONL trace records)\n\
                 and --metrics FILE (JSON metrics snapshot at exit); both are side\n\
                 channels that never change reports or exit codes."
            );
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command {other:?}; try `rbr --help`");
            ExitCode::FAILURE
        }
    }
}

/// Resolves the run flags and dispatches `name` (or every entry, for
/// `all`) through the registry, as one campaign on the `rbr-exec`
/// engine: each experiment is a cell, journalled under `--out`/`--resume`
/// and executed across `--jobs` lanes with a fixed merge order.
fn run_command(name: &str, args: &[String]) -> Result<(), String> {
    let obs_metrics = obs_setup(args)?;
    let scale = parse_scale(args)?;
    let format = parse_format(args)?;
    let seed = parse_seed(args)?;
    let reps = parse_reps(args)?;
    if let Some(jobs) = parse_jobs(args)? {
        if !rbr_exec::configure(jobs) {
            return Err("--jobs must be set before the execution pool starts".to_string());
        }
    }
    let (dir, resume) = campaign_dir(args)?;
    let cache = match flag_value(args, "--cache") {
        None => None,
        Some(c) => {
            std::fs::create_dir_all(c).map_err(|e| format!("cannot create {c}: {e}"))?;
            Some(PathBuf::from(c))
        }
    };
    let registry = Registry::standard();

    let experiments: Vec<&dyn Experiment> = if name == "all" {
        registry.iter().collect()
    } else {
        match registry.get(name) {
            Some(e) => vec![e],
            None => return Err(format!("unknown experiment {name:?}; try `rbr list`")),
        }
    };
    let plan = Plan {
        experiments,
        scale,
        seed,
        reps,
        format,
    };
    let total = plan.experiments.len();
    eprintln!(
        "campaign: {total} experiment(s) at {} scale, {} lane(s){}",
        scale.name(),
        rbr_exec::pool::global().jobs(),
        match &dir {
            Some(d) if resume => format!(", resuming from {}", d.display()),
            Some(d) => format!(", journal in {}", d.display()),
            None => String::new(),
        }
    );

    let options = RunOptions {
        dir: dir.clone(),
        resume,
        cell_budget: None,
        cache: cache.clone(),
    };
    let before = rbr_exec::pool::global().metrics();
    // Stream the campaign: each cell's payload is written (or printed)
    // the moment it is delivered in cell order, so `rbr run` never holds
    // the full result set in memory.
    let stats = rbr::experiments::campaign::run_streaming(
        &plan,
        &options,
        |outcome: rbr_exec::CellOutcome| match &dir {
            None => {
                print!("{}", outcome.payload);
                Ok(())
            }
            Some(d) => {
                let path = d.join(format!("{}.{}", outcome.key, format.extension()));
                std::fs::write(&path, &outcome.payload)
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                eprintln!("wrote {}", path.display());
                Ok(())
            }
        },
        &|p| {
            if p.replayed {
                progress_line(format!(
                    "[{}/{}] {} replayed from journal",
                    p.done, p.total, p.key
                ));
            } else if p.cached {
                progress_line(format!(
                    "[{}/{}] {} served from cell cache",
                    p.done, p.total, p.key
                ));
            } else {
                progress_line(format!(
                    "[{}/{}] {} finished in {:.2}s ({:.2} cells/s, ETA {:.0}s)",
                    p.done, p.total, p.key, p.cell_secs, p.cells_per_sec, p.eta_secs
                ));
            }
        },
    )?;
    let after = rbr_exec::pool::global().metrics();

    if stats.replayed > 0 {
        eprintln!(
            "resume: {} cell(s) replayed ({} via footer index, {} by segment scan)",
            stats.replayed, stats.replay_indexed, stats.replay_scanned
        );
    }
    if cache.is_some() {
        eprintln!(
            "cell cache: {} hit(s), {} computed",
            stats.cache_hits,
            stats.executed - stats.cache_hits
        );
    }
    if after.jobs > 1 {
        after.publish();
        let busy = after.since(&before);
        eprintln!(
            "pool: {} lanes, {} cell(s) executed, {} replayed",
            after.jobs, stats.executed, stats.replayed
        );
        for (w, frac) in busy.iter().enumerate() {
            let cells = after.cells_executed.get(w).copied().unwrap_or(0)
                - before.cells_executed.get(w).copied().unwrap_or(0);
            let stolen = after.cells_stolen.get(w).copied().unwrap_or(0)
                - before.cells_stolen.get(w).copied().unwrap_or(0);
            eprintln!(
                "  worker {w}: {:3.0}% busy, {cells} cell(s), {stolen} stolen",
                frac * 100.0
            );
        }
    }
    obs_finish(obs_metrics)
}

/// Resolves `--out`/`--resume` into the campaign directory and whether
/// to replay its journal. `--resume DIR` implies `--out DIR`; giving
/// both with different directories is an error.
fn campaign_dir(args: &[String]) -> Result<(Option<PathBuf>, bool), String> {
    let out = flag_value(args, "--out");
    let resume = flag_value(args, "--resume");
    match (out, resume) {
        (Some(o), Some(r)) if o != r => Err(format!(
            "--out {o} and --resume {r} name different directories; pass just --resume"
        )),
        (_, Some(r)) => {
            std::fs::create_dir_all(r).map_err(|e| format!("cannot create {r}: {e}"))?;
            Ok((Some(PathBuf::from(r)), true))
        }
        (Some(o), None) => {
            std::fs::create_dir_all(o).map_err(|e| format!("cannot create {o}: {e}"))?;
            Ok((Some(PathBuf::from(o)), false))
        }
        (None, None) => Ok((None, false)),
    }
}

/// Runs `name` (or every registry entry, for `all`) with the runtime
/// invariant auditor attached, printing any violations with their event
/// traces. Exits non-zero when any run is dirty. Audits default to smoke
/// scale: the auditor checks every scheduling decision, so the cheapest
/// fidelity already exercises every invariant.
fn audit_command(name: &str, args: &[String]) -> Result<(), String> {
    let obs_metrics = obs_setup(args)?;
    let scale = match flag_value(args, "--scale") {
        None => Scale::Smoke,
        Some(s) => {
            Scale::parse(s).ok_or_else(|| format!("unknown scale {s:?} (smoke|quick|paper)"))?
        }
    };
    let seed = parse_seed(args)?;
    let registry = Registry::standard();
    if name != "all" && registry.get(name).is_none() {
        return Err(format!("unknown experiment {name:?}; try `rbr list`"));
    }

    rbr_audit::sink::install();
    let mut total_violations = 0usize;
    for exp in registry.iter() {
        if name != "all" && registry.get(name).map(|e| e.name()) != Some(exp.name()) {
            continue;
        }
        let seed = seed.unwrap_or_else(|| exp.default_seed());
        eprintln!(
            "auditing {} at {} scale (seed {seed})...",
            exp.name(),
            scale.name()
        );
        let _ = exp.run_with(scale, seed, None);
        let violations = rbr_audit::sink::harvest();
        if violations.is_empty() {
            println!("{}: clean", exp.name());
        } else {
            total_violations += violations.len();
            println!(
                "{}: {} invariant violation(s)",
                exp.name(),
                violations.len()
            );
            for v in &violations {
                println!("{v}");
            }
        }
    }
    rbr_audit::sink::uninstall();
    obs_finish(obs_metrics)?;
    if total_violations > 0 {
        Err(format!(
            "{total_violations} invariant violation(s) detected"
        ))
    } else {
        Ok(())
    }
}

fn parse_scale(args: &[String]) -> Result<Scale, String> {
    match flag_value(args, "--scale") {
        None => Ok(Scale::from_env(Scale::Quick)),
        Some(s) => {
            Scale::parse(s).ok_or_else(|| format!("unknown scale {s:?} (smoke|quick|paper)"))
        }
    }
}

fn parse_format(args: &[String]) -> Result<Format, String> {
    match flag_value(args, "--format") {
        None => Ok(Format::Text),
        Some(f) => Format::parse(f).ok_or_else(|| format!("unknown format {f:?} (text|csv|json)")),
    }
}

fn parse_seed(args: &[String]) -> Result<Option<u64>, String> {
    match flag_value(args, "--seed") {
        None => Ok(None),
        Some(s) => s
            .parse::<u64>()
            .map(Some)
            .map_err(|e| format!("bad seed {s:?}: {e}")),
    }
}

fn parse_reps(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--reps") {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err("--reps must be at least 1".to_string()),
            Ok(n) => Ok(Some(n)),
            Err(e) => Err(format!("bad rep count {s:?}: {e}")),
        },
    }
}

fn parse_jobs(args: &[String]) -> Result<Option<usize>, String> {
    match flag_value(args, "--jobs") {
        None => Ok(None),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Err("--jobs must be at least 1".to_string()),
            Ok(n) => Ok(Some(n)),
            Err(e) => Err(format!("bad job count {s:?}: {e}")),
        },
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag_value(args: &[String], flag: &str) -> Option<f64> {
    flag_value(args, flag).and_then(|v| v.parse().ok())
}

/// Resolves the shared observability flags: `--trace FILE` attaches the
/// JSONL trace sink, `--metrics FILE` enables the metrics registry.
/// Returns the metrics path for [`obs_finish`] to snapshot into.
fn obs_setup(args: &[String]) -> Result<Option<PathBuf>, String> {
    if let Some(path) = flag_value(args, "--trace") {
        rbr_obs::trace::start_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open trace file {path}: {e}"))?;
    }
    let metrics = flag_value(args, "--metrics").map(PathBuf::from);
    if metrics.is_some() {
        rbr_obs::metrics::set_enabled(true);
    }
    Ok(metrics)
}

/// Detaches the trace sink and writes the metrics snapshot (as JSON,
/// the format `rbr obs metrics` reads back) if `--metrics` was given.
fn obs_finish(metrics: Option<PathBuf>) -> Result<(), String> {
    rbr_obs::trace::stop().map_err(|e| format!("cannot flush trace: {e}"))?;
    if let Some(path) = metrics {
        let snap = rbr_obs::metrics::snapshot();
        std::fs::write(&path, snap.render_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        progress_line(format!("wrote metrics snapshot to {}", path.display()));
    }
    Ok(())
}

/// `rbr obs trace <file>` folds a trace into a per-phase time
/// breakdown; `rbr obs metrics <file> [--format F]` renders a snapshot.
fn obs_command(args: &[String]) -> Result<(), String> {
    let usage = "usage: rbr obs trace <file> | rbr obs metrics <file> [--format text|csv|json]";
    let mut it = args.iter().skip(1);
    match (it.next().map(String::as_str), it.next()) {
        (Some("trace"), Some(path)) => {
            let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            let summary = rbr_obs::report::fold_trace(std::io::BufReader::new(file))
                .map_err(|e| format!("cannot read {path}: {e}"))?;
            print!("{}", summary.render());
            Ok(())
        }
        (Some("metrics"), Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let snap = rbr_obs::report::parse_snapshot(&text)
                .map_err(|e| format!("{path} is not a metrics snapshot: {e}"))?;
            match parse_format(args)? {
                Format::Text => print!("{}", snap.render_text()),
                Format::Csv => print!("{}", snap.render_csv()),
                Format::Json => print!("{}", snap.render_json()),
            }
            Ok(())
        }
        _ => Err(usage.to_string()),
    }
}

/// Emits one progress line as a single `write` syscall on the locked
/// stderr handle. `eprintln!` renders its format arguments piecewise,
/// so concurrent writers (campaign lanes, a piped `rbr serve`) can
/// interleave mid-line; staging the full line first keeps logs atomic.
fn progress_line(line: String) {
    let mut err = std::io::stderr().lock();
    let _ = err.write_all(format!("{line}\n").as_bytes());
    let _ = err.flush();
}

/// Runs the batching metascheduler service until a client drains it.
fn serve_command(args: &[String]) -> Result<(), String> {
    let obs_metrics = obs_setup(args)?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7206");
    let batch = match flag_value(args, "--batch") {
        None => 8u32,
        Some(s) => match s.parse::<u32>() {
            Ok(0) => return Err("--batch must be at least 1".to_string()),
            Ok(n) => n,
            Err(e) => return Err(format!("bad batch size {s:?}: {e}")),
        },
    };
    let deadline = parse_flag_value(args, "--deadline").unwrap_or(30.0);
    if batch > 1 && deadline <= 0.0 {
        return Err("--deadline must be positive when --batch > 1".to_string());
    }
    let clock = match flag_value(args, "--clock") {
        None => rbr_serve::ClockMode::Virtual,
        Some(s) => rbr_serve::ClockMode::parse(s)
            .ok_or_else(|| format!("unknown clock {s:?} (virtual|wall)"))?,
    };
    let spec = if batch > 1 {
        rbr::grid::BatchSpec::of(batch, Duration::from_secs(deadline))
    } else {
        rbr::grid::BatchSpec::default()
    };
    let config = rbr_serve::ServerConfig {
        batch: spec,
        admission: rbr_serve::AdmissionConfig {
            batch,
            ..rbr_serve::AdmissionConfig::default()
        },
        clock,
    };
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    progress_line(format!(
        "serving on {local} (batch {batch}, deadline {deadline}s, {clock:?} clock, \
         {:.3} copies/s budget)",
        rbr_serve::AdmissionController::new(config.admission.clone()).rate()
    ));
    // A drain-leak error must still flush the trace and snapshot (the
    // leak count lives in the `serve.drain_leaks` metric).
    let stats = match rbr_serve::serve(listener, &config) {
        Ok(stats) => stats,
        Err(e) => {
            obs_finish(obs_metrics)?;
            return Err(e);
        }
    };
    progress_line(format!(
        "drained: {} submit(s), {} cancel(s), {} ack(s), {} transaction(s), {} shed",
        stats.submits, stats.cancels, stats.acks, stats.transactions, stats.shed
    ));
    let log = stats.admission_log.join("\n") + "\n";
    match flag_value(args, "--log") {
        None => print!("{log}"),
        Some(path) => {
            std::fs::write(path, log).map_err(|e| format!("cannot write {path}: {e}"))?;
            progress_line(format!("wrote admission log to {path}"));
        }
    }
    obs_finish(obs_metrics)
}

/// Replays a Lublin arrival stream against a running service.
fn loadgen_command(args: &[String]) -> Result<(), String> {
    let jobs = match flag_value(args, "--jobs") {
        None => 1_000usize,
        Some(s) => match s.parse::<usize>() {
            Ok(0) => return Err("--jobs must be at least 1".to_string()),
            Ok(n) => n,
            Err(e) => return Err(format!("bad job count {s:?}: {e}")),
        },
    };
    let rate = parse_flag_value(args, "--rate").unwrap_or(1.0);
    if rate <= 0.0 {
        return Err("--rate must be positive".to_string());
    }
    let config = rbr_serve::LoadgenConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7206")
            .to_string(),
        jobs,
        rate,
        seed: parse_seed(args)?.unwrap_or(2006),
    };
    let stats = rbr_serve::loadgen::run(&config)?;
    progress_line(format!(
        "replayed {} job(s) at {rate}x: {} redundant, {} single, {} shed, \
         {} transaction(s), clean drain",
        stats.submits, stats.redundant, stats.single, stats.shed, stats.transactions
    ));
    Ok(())
}

fn capacity(iat: f64) {
    let sys = SystemCapacity::paper_2006();
    println!("interarrival time: {iat} s per cluster\n");
    let mut t = Table::new(vec!["component", "max sustainable redundancy r"]);
    for (component, r) in sys.max_redundancy_per_component(iat) {
        t.push(vec![format!("{component:?}"), format!("{r:.1}")]);
    }
    print!("{}", t.render());
    let (bottleneck, rate) = sys.bottleneck();
    println!("\nbottleneck: {bottleneck:?} ({rate:.2} submissions/s)");
    println!("system-wide: r < {:.1}", sys.max_redundancy(iat));
    println!();
    for r in [1.0, 3.0, 30.0] {
        let load = steady_state_load(r, iat);
        println!(
            "r = {r:2.0}: {:.2} submissions/s + {:.2} cancellations/s per cluster",
            load.submissions_per_sec, load.cancellations_per_sec
        );
    }
    let _ = max_redundancy(iat, 6.0);
}

fn swf_export(path: &str, hours: f64) -> ExitCode {
    let model = LublinModel::new(LublinConfig::paper_2006());
    let jobs = model.generate(
        &mut SeedSequence::new(2006).rng(),
        Duration::from_secs(hours * 3600.0),
        &EstimateModel::paper_real(),
    );
    let trace = SwfTrace::from_jobs(
        &jobs,
        vec![
            "Synthetic trace from the calibrated Lublin model".to_string(),
            "Computer: rbr 128-node cluster".to_string(),
            format!("Hours: {hours}"),
        ],
    );
    match std::fs::write(path, trace.to_swf()) {
        Ok(()) => {
            println!("wrote {} jobs to {path}", jobs.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn throughput() {
    let mut t = Table::new(vec![
        "queue size",
        "EASY pairs/s",
        "CBF pairs/s",
        "FCFS pairs/s",
    ]);
    for q in [0usize, 1_000, 5_000, 10_000] {
        let mut row = vec![q.to_string()];
        for alg in [Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs] {
            row.push(format!("{:.0}", fig5::native_throughput(alg, q, 500, 7)));
        }
        t.push(row);
    }
    print!("{}", t.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flag_value_finds_following_token() {
        let a = args(&["run", "fig1", "--scale", "paper"]);
        assert_eq!(flag_value(&a, "--scale"), Some("paper"));
        assert_eq!(flag_value(&a, "--iat"), None);
        // Flag at the end with no value.
        let b = args(&["capacity", "--iat"]);
        assert_eq!(flag_value(&b, "--iat"), None);
    }

    #[test]
    fn parse_scale_accepts_all_levels() {
        assert_eq!(
            parse_scale(&args(&["--scale", "smoke"])).unwrap(),
            Scale::Smoke
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "quick"])).unwrap(),
            Scale::Quick
        );
        assert_eq!(
            parse_scale(&args(&["--scale", "paper"])).unwrap(),
            Scale::Paper
        );
        assert!(parse_scale(&args(&["--scale", "huge"])).is_err());
    }

    #[test]
    fn parse_format_accepts_all_formats() {
        assert_eq!(parse_format(&args(&[])).unwrap(), Format::Text);
        assert_eq!(
            parse_format(&args(&["--format", "csv"])).unwrap(),
            Format::Csv
        );
        assert_eq!(
            parse_format(&args(&["--format", "json"])).unwrap(),
            Format::Json
        );
        assert!(parse_format(&args(&["--format", "xml"])).is_err());
    }

    #[test]
    fn parse_seed_accepts_integers_only() {
        assert_eq!(parse_seed(&args(&[])).unwrap(), None);
        assert_eq!(parse_seed(&args(&["--seed", "7"])).unwrap(), Some(7));
        assert!(parse_seed(&args(&["--seed", "x"])).is_err());
    }

    #[test]
    fn parse_reps_accepts_positive_integers_only() {
        assert_eq!(parse_reps(&args(&[])).unwrap(), None);
        assert_eq!(parse_reps(&args(&["--reps", "12"])).unwrap(), Some(12));
        assert!(parse_reps(&args(&["--reps", "0"])).is_err());
        assert!(parse_reps(&args(&["--reps", "x"])).is_err());
    }

    #[test]
    fn parse_flag_value_parses_numbers() {
        assert_eq!(
            parse_flag_value(&args(&["--iat", "2.5"]), "--iat"),
            Some(2.5)
        );
        assert_eq!(parse_flag_value(&args(&["--iat", "x"]), "--iat"), None);
    }

    #[test]
    fn parse_jobs_accepts_positive_integers_only() {
        assert_eq!(parse_jobs(&args(&[])).unwrap(), None);
        assert_eq!(parse_jobs(&args(&["--jobs", "4"])).unwrap(), Some(4));
        assert!(parse_jobs(&args(&["--jobs", "0"])).is_err());
        assert!(parse_jobs(&args(&["--jobs", "x"])).is_err());
    }

    #[test]
    fn campaign_dir_resolves_out_and_resume() {
        let base = std::env::temp_dir().join(format!("rbr-cli-campaign-{}", std::process::id()));
        let dir = base.to_string_lossy().into_owned();
        assert_eq!(campaign_dir(&args(&[])).unwrap(), (None, false));
        assert_eq!(
            campaign_dir(&args(&["--out", &dir])).unwrap(),
            (Some(base.clone()), false)
        );
        assert_eq!(
            campaign_dir(&args(&["--resume", &dir])).unwrap(),
            (Some(base.clone()), true)
        );
        // --resume implies --out of the same directory; both is fine…
        assert_eq!(
            campaign_dir(&args(&["--out", &dir, "--resume", &dir])).unwrap(),
            (Some(base.clone()), true)
        );
        // …but two different directories is a contradiction.
        assert!(campaign_dir(&args(&["--out", &dir, "--resume", "/elsewhere"])).is_err());
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn run_command_rejects_unknown_names() {
        assert!(run_command("nope", &args(&["run", "nope"])).is_err());
    }

    #[test]
    fn audit_command_rejects_unknown_names_and_scales() {
        assert!(audit_command("nope", &args(&["audit", "nope"])).is_err());
        assert!(audit_command("fig1", &args(&["audit", "fig1", "--scale", "huge"])).is_err());
    }

    #[test]
    fn the_old_cli_names_still_resolve() {
        // Every name the pre-registry CLI accepted must keep working.
        let registry = Registry::standard();
        for name in [
            "fig1",
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "table1",
            "table2",
            "table3",
            "table4",
            "queue-growth",
            "conclusion",
            "ablations",
            "forecast",
            "moldable",
            "dual-queue",
            "trace-check",
        ] {
            assert!(
                registry.get(name).is_some(),
                "{name} fell out of the registry"
            );
        }
    }
}
