//! The zero-cost contract, enforced by a counting allocator: once a
//! metric handle exists, updating it never allocates — not with the
//! registry disabled (the default: one relaxed load and an untaken
//! branch) and not with it enabled (plain atomic updates on the
//! handle's interior). Detached trace emits are equally allocation-free.
//!
//! Registration (`counter()`/`gauge()`/`histogram()`) is allowed to
//! allocate — it interns the name and takes the registry lock — which
//! is why the instrumented hot paths in grid/exec/serve all resolve
//! their handles once, up front.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocation count attributable to `f` (this binary holds exactly one
/// test, so no other thread is allocating concurrently).
fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::SeqCst);
    f();
    ALLOCS.load(Ordering::SeqCst) - before
}

#[test]
fn handle_updates_and_detached_emits_never_allocate() {
    // Registration allocates; do it before counting.
    let c = rbr_obs::metrics::counter("zero_alloc.counter");
    let g = rbr_obs::metrics::gauge("zero_alloc.gauge");
    let h = rbr_obs::metrics::histogram("zero_alloc.histogram");

    let hammer = |c: &rbr_obs::Counter, g: &rbr_obs::Gauge, h: &rbr_obs::Histogram| {
        for i in 0..1_000u64 {
            c.inc();
            c.add(3);
            g.set(i as f64);
            g.add(0.5);
            g.max(i as f64);
            h.observe(i);
        }
    };

    // Disabled — the default state every simulation runs in.
    rbr_obs::metrics::set_enabled(false);
    assert_eq!(
        allocs_during(|| hammer(&c, &g, &h)),
        0,
        "disabled metric updates must not allocate"
    );

    // Enabled — updates are atomic ops on the handle's interior.
    rbr_obs::metrics::set_enabled(true);
    let n = allocs_during(|| hammer(&c, &g, &h));
    rbr_obs::metrics::set_enabled(false);
    assert_eq!(n, 0, "enabled metric updates must not allocate");

    // Detached trace emits are a relaxed load and an untaken branch.
    assert!(!rbr_obs::trace::enabled());
    assert_eq!(
        allocs_during(|| {
            for _ in 0..1_000 {
                rbr_obs::trace::event(
                    rbr_obs::Clock::Sim,
                    1.5,
                    "zero_alloc.event",
                    &[("k", rbr_obs::trace::Field::U64(7))],
                );
                rbr_obs::trace::phase("zero_alloc", "phase", 0.25);
                assert!(rbr_obs::trace::span("zero_alloc.span").is_none());
            }
        }),
        0,
        "detached trace emits must not allocate"
    );
}
