//! `rbr-obs` — the deterministic observability subsystem.
//!
//! Every layer of the stack (simcore, sched, grid, exec, serve) can tell
//! you *what it computed*; until this crate none of them could tell you
//! *where the time, queue mass, or waste went* while it ran. `rbr-obs`
//! adds that visibility under one hard constraint inherited from the
//! campaign engine: **observation must never perturb results**. Goldens,
//! audits, and the `--jobs 1` vs `--jobs 2` byte gate all hold with
//! observability enabled, because nothing in this crate touches an RNG,
//! an event queue, or an experiment's data path — instrumentation only
//! *reads* program state and writes to side channels (an in-process
//! metrics registry, an append-only trace file).
//!
//! Three pillars:
//!
//! * [`metrics`] — a process-wide registry of named counters, gauges,
//!   and fixed-bucket log₂ histograms. Handles are cheap clones of
//!   atomics: updating one is a relaxed atomic op and **allocates
//!   nothing**, and while the registry is disabled (the default) every
//!   update is a single relaxed load and branch. Snapshots render to
//!   text, CSV, or JSON ([`metrics::Snapshot`]).
//! * [`trace`] — a structured JSONL trace: one self-contained record
//!   per line (`event`, `span`, or `phase`), stamped on the simulators'
//!   virtual clock or the wall clock of exec/serve. The sink follows
//!   the `ObserverSlot` precedent from `rbr-audit`: detached, the hot
//!   path sees one relaxed load; attached, records are serialized
//!   through a buffered writer without touching simulation state.
//! * [`report`] — the consumer side: fold a trace file into a per-phase
//!   time breakdown, or re-render a metrics snapshot — what `rbr obs`
//!   serves on the command line.
//!
//! The crate is dependency-free (std only) so every other crate in the
//! workspace can instrument itself without a cycle.

pub mod metrics;
pub mod report;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, Snapshot};
pub use trace::Clock;
