//! The structured trace: self-contained JSONL records on a virtual or
//! wall clock.
//!
//! The sink follows the `ObserverSlot` precedent from `rbr-audit`: a
//! process-wide slot that is empty by default. Detached, every emit
//! call is one relaxed load and an untaken branch. Attached (via
//! [`start_file`], i.e. `--trace FILE` on the CLI), records are
//! serialized through a buffered writer. Emitting a record reads the
//! caller's state and writes bytes to the side channel — it never
//! touches an RNG, an event queue, or a report, which is why every
//! byte-identity gate in the workspace holds with tracing on.
//!
//! Three record kinds, one JSON object per line:
//!
//! * `event` — a point in (virtual or wall) time with free-form fields:
//!   `{"kind":"event","clock":"sim","t":12.5,"name":"grid.submit","fields":{...}}`
//! * `span` — one timed wall-clock region (from [`span`]):
//!   `{"kind":"span","name":"exec.fold","secs":0.0012}`
//! * `phase` — aggregated time attributed to a named phase of a scope
//!   (from [`phase`]), the input to `rbr obs trace`'s breakdown:
//!   `{"kind":"phase","scope":"grid.run","name":"queue-ops","secs":0.42}`

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<BufWriter<File>>> = Mutex::new(None);

/// Which clock a trace record's `t` was read from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Virtual time of a simulation (deterministic).
    Sim,
    /// Wall-clock seconds since an arbitrary process epoch.
    Wall,
}

impl Clock {
    fn label(self) -> &'static str {
        match self {
            Clock::Sim => "sim",
            Clock::Wall => "wall",
        }
    }
}

/// A field value on an [`event`] record.
#[derive(Clone, Copy, Debug)]
pub enum Field<'a> {
    /// An unsigned integer field.
    U64(u64),
    /// A signed integer field.
    I64(i64),
    /// A float field (non-finite renders as `0`).
    F64(f64),
    /// A string field (JSON-escaped).
    Str(&'a str),
}

/// True when a trace sink is attached; emit calls are no-ops otherwise.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Attaches the trace sink to `path` (truncating it). Subsequent
/// [`event`]/[`span`]/[`phase`] calls append records until [`stop`].
pub fn start_file(path: &Path) -> io::Result<()> {
    let file = File::create(path)?;
    let mut sink = SINK.lock().expect("trace sink lock");
    *sink = Some(BufWriter::new(file));
    ENABLED.store(true, Ordering::Relaxed);
    Ok(())
}

/// Detaches the sink, flushing buffered records. Harmless when already
/// detached.
pub fn stop() -> io::Result<()> {
    ENABLED.store(false, Ordering::Relaxed);
    let mut sink = SINK.lock().expect("trace sink lock");
    if let Some(mut writer) = sink.take() {
        writer.flush()?;
    }
    Ok(())
}

/// Flushes buffered records without detaching.
pub fn flush() -> io::Result<()> {
    let mut sink = SINK.lock().expect("trace sink lock");
    if let Some(writer) = sink.as_mut() {
        writer.flush()?;
    }
    Ok(())
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v:?}"));
    } else {
        out.push('0');
    }
}

fn write_line(line: &str) {
    let mut sink = SINK.lock().expect("trace sink lock");
    if let Some(writer) = sink.as_mut() {
        // A failed trace write must not abort the run it is observing;
        // drop the record and carry on.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
    }
}

/// Emits an `event` record at time `t` on `clock` with `fields`.
/// No-op (one relaxed load) when no sink is attached.
pub fn event(clock: Clock, t: f64, name: &str, fields: &[(&str, Field<'_>)]) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(96);
    line.push_str("{\"kind\":\"event\",\"clock\":\"");
    line.push_str(clock.label());
    line.push_str("\",\"t\":");
    push_f64(&mut line, t);
    line.push_str(",\"name\":\"");
    push_escaped(&mut line, name);
    line.push('"');
    if !fields.is_empty() {
        line.push_str(",\"fields\":{");
        for (i, (key, value)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            push_escaped(&mut line, key);
            line.push_str("\":");
            match value {
                Field::U64(v) => line.push_str(&format!("{v}")),
                Field::I64(v) => line.push_str(&format!("{v}")),
                Field::F64(v) => push_f64(&mut line, *v),
                Field::Str(s) => {
                    line.push('"');
                    push_escaped(&mut line, s);
                    line.push('"');
                }
            }
        }
        line.push('}');
    }
    line.push('}');
    write_line(&line);
}

/// Emits a `phase` record: `secs` of wall time attributed to phase
/// `name` of `scope`. Callers accumulate locally (plain `f64` adds)
/// and emit once, so the hot path pays timers, not serialization.
pub fn phase(scope: &str, name: &str, secs: f64) {
    if !enabled() {
        return;
    }
    let mut line = String::with_capacity(64);
    line.push_str("{\"kind\":\"phase\",\"scope\":\"");
    push_escaped(&mut line, scope);
    line.push_str("\",\"name\":\"");
    push_escaped(&mut line, name);
    line.push_str("\",\"secs\":");
    push_f64(&mut line, secs);
    line.push('}');
    write_line(&line);
}

/// A wall-clock span guard from [`span`]; emits a `span` record with
/// the elapsed seconds when dropped.
pub struct SpanGuard {
    name: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let secs = self.start.elapsed().as_secs_f64();
        let mut line = String::with_capacity(64);
        line.push_str("{\"kind\":\"span\",\"name\":\"");
        push_escaped(&mut line, &self.name);
        line.push_str("\",\"secs\":");
        push_f64(&mut line, secs);
        line.push('}');
        write_line(&line);
    }
}

/// Starts a wall-clock span named `name`. Returns `None` (for free)
/// when no sink is attached; hold the guard for the region's lifetime.
pub fn span(name: &str) -> Option<SpanGuard> {
    if !enabled() {
        return None;
    }
    Some(SpanGuard {
        name: name.to_string(),
        start: Instant::now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The sink is process-global; serialize tests that attach it.
    static GATE: StdMutex<()> = StdMutex::new(());

    fn with_trace_file(name: &str, f: impl FnOnce()) -> String {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        let path =
            std::env::temp_dir().join(format!("rbr-obs-test-{name}-{}.jsonl", std::process::id()));
        start_file(&path).expect("attach trace sink");
        f();
        stop().expect("detach trace sink");
        let out = std::fs::read_to_string(&path).expect("read trace back");
        let _ = std::fs::remove_file(&path);
        out
    }

    #[test]
    fn detached_emits_nothing_and_costs_nothing() {
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        event(Clock::Sim, 1.0, "noop", &[]);
        phase("x", "y", 0.5);
        assert!(span("z").is_none());
    }

    #[test]
    fn records_are_one_json_object_per_line() {
        let out = with_trace_file("records", || {
            event(
                Clock::Sim,
                12.5,
                "grid.submit",
                &[
                    ("cluster", Field::U64(3)),
                    ("proto", Field::Str("R2")),
                    ("load", Field::F64(0.75)),
                    ("delta", Field::I64(-2)),
                ],
            );
            phase("grid.run", "queue-ops", 0.042);
            let _s = span("exec.fold");
        });
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(
            lines[0],
            "{\"kind\":\"event\",\"clock\":\"sim\",\"t\":12.5,\"name\":\"grid.submit\",\
             \"fields\":{\"cluster\":3,\"proto\":\"R2\",\"load\":0.75,\"delta\":-2}}"
        );
        assert_eq!(
            lines[1],
            "{\"kind\":\"phase\",\"scope\":\"grid.run\",\"name\":\"queue-ops\",\"secs\":0.042}"
        );
        assert!(lines[2].starts_with("{\"kind\":\"span\",\"name\":\"exec.fold\",\"secs\":"));
        assert!(lines[2].ends_with('}'));
    }

    #[test]
    fn strings_are_escaped() {
        let out = with_trace_file("escape", || {
            event(
                Clock::Wall,
                0.0,
                "weird\"name\\with\nnewline",
                &[("path", Field::Str("a\tb"))],
            );
        });
        assert!(out.contains("weird\\\"name\\\\with\\nnewline"));
        assert!(out.contains("a\\tb"));
    }
}
