//! The metrics registry: named counters, gauges, and log₂ histograms.
//!
//! Metrics are registered by name ([`counter`], [`gauge`],
//! [`histogram`]); registration returns a handle that is a cheap clone
//! of the underlying atomics. The intended pattern for hot paths is to
//! register once (e.g. in a `OnceLock`) and update through the handle:
//! an update is one relaxed load (the enable gate) plus one relaxed
//! atomic op, and **never allocates** — the disabled path is the load
//! and a predictable branch, nothing else. The registry itself is only
//! locked at registration and snapshot time.
//!
//! Determinism: metrics are pure side-channel output. Updating a
//! counter cannot reorder events, advance a clock, or draw randomness,
//! so every byte-identity gate in the workspace holds with metrics
//! enabled. Counter *values* aggregated across a parallel campaign are
//! still deterministic (each cell contributes a fixed amount); gauges
//! that track "latest" values are last-writer-wins and are only
//! deterministic on one thread.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Histogram bucket count: bucket 0 holds zero values, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)` — 64 value buckets cover all of
/// `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off process-wide. Off (the default),
/// every handle update is a relaxed load and an untaken branch.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when metric updates are being recorded.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistogramInner>),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
        }
    }
}

struct Entry {
    name: String,
    slot: Slot,
}

static REGISTRY: Mutex<Vec<Entry>> = Mutex::new(Vec::new());

/// A monotonically increasing event count.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when metrics are enabled. Lock-free, allocation-free.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when metrics are enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A floating-point level: set, accumulated, or max-tracked.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge (last writer wins) when metrics are enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Accumulates `v` into the gauge when metrics are enabled.
    #[inline]
    pub fn add(&self, v: f64) {
        if !enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Raises the gauge to `v` if larger, when metrics are enabled.
    #[inline]
    pub fn max(&self, v: f64) {
        if !enabled() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.0.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current level.
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log₂ histogram of `u64` samples.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Records one sample when metrics are enabled. Lock-free,
    /// allocation-free: the bucket index is a leading-zeros count.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.0.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

/// The bucket index of sample `v`: 0 for zero, else `i` such that
/// `2^(i-1) <= v < 2^i`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Lower bound of bucket `i` (its label in snapshots).
fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

fn register(name: &str, make: impl FnOnce() -> Slot, want: &'static str) -> Slot {
    let mut reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entry) = reg.iter().find(|e| e.name == name) {
        assert_eq!(
            entry.slot.kind(),
            want,
            "metric {name:?} already registered as a {}",
            entry.slot.kind()
        );
        return match &entry.slot {
            Slot::Counter(a) => Slot::Counter(Arc::clone(a)),
            Slot::Gauge(a) => Slot::Gauge(Arc::clone(a)),
            Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
        };
    }
    let slot = make();
    let clone = match &slot {
        Slot::Counter(a) => Slot::Counter(Arc::clone(a)),
        Slot::Gauge(a) => Slot::Gauge(Arc::clone(a)),
        Slot::Histogram(h) => Slot::Histogram(Arc::clone(h)),
    };
    reg.push(Entry {
        name: name.to_string(),
        slot,
    });
    clone
}

/// Registers (or finds) the counter `name` and returns a handle.
///
/// # Panics
/// Panics if `name` is already registered as a different kind.
pub fn counter(name: &str) -> Counter {
    match register(
        name,
        || Slot::Counter(Arc::new(AtomicU64::new(0))),
        "counter",
    ) {
        Slot::Counter(a) => Counter(a),
        _ => unreachable!(),
    }
}

/// Registers (or finds) the gauge `name` and returns a handle.
///
/// # Panics
/// Panics if `name` is already registered as a different kind.
pub fn gauge(name: &str) -> Gauge {
    match register(
        name,
        || Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))),
        "gauge",
    ) {
        Slot::Gauge(a) => Gauge(a),
        _ => unreachable!(),
    }
}

/// Registers (or finds) the histogram `name` and returns a handle.
///
/// # Panics
/// Panics if `name` is already registered as a different kind.
pub fn histogram(name: &str) -> Histogram {
    match register(
        name,
        || {
            Slot::Histogram(Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        },
        "histogram",
    ) {
        Slot::Histogram(h) => Histogram(h),
        _ => unreachable!(),
    }
}

/// Zeroes every registered metric (the registrations themselves stay).
/// Benches use this to meter one phase; tests use it for isolation.
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for entry in reg.iter() {
        match &entry.slot {
            Slot::Counter(a) => a.store(0, Ordering::Relaxed),
            Slot::Gauge(a) => a.store(0f64.to_bits(), Ordering::Relaxed),
            Slot::Histogram(h) => {
                for b in &h.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                h.count.store(0, Ordering::Relaxed);
                h.sum.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// One metric's value in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// A counter's count.
    Counter(u64),
    /// A gauge's level.
    Gauge(f64),
    /// A histogram: total count, total sum, and the non-empty buckets
    /// as `(bucket floor, count)` pairs in ascending floor order.
    Histogram {
        /// Total samples.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Non-empty `(floor, count)` buckets.
        buckets: Vec<(u64, u64)>,
    },
}

/// A point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, Value)>,
}

/// Snapshots the registry (sorted by name, so renders are stable).
pub fn snapshot() -> Snapshot {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    let mut entries: Vec<(String, Value)> = reg
        .iter()
        .map(|e| {
            let value = match &e.slot {
                Slot::Counter(a) => Value::Counter(a.load(Ordering::Relaxed)),
                Slot::Gauge(a) => Value::Gauge(f64::from_bits(a.load(Ordering::Relaxed))),
                Slot::Histogram(h) => Value::Histogram {
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets: h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| (bucket_floor(i), n))
                        })
                        .collect(),
                },
            };
            (e.name.clone(), value)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Snapshot { entries }
}

/// Formats an `f64` for snapshot output: plain decimal, finite only
/// (non-finite gauges render as `0`, which cannot occur from the handle
/// API but keeps the JSON valid under arbitrary bit patterns).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "0".to_string()
    }
}

impl Snapshot {
    /// Renders as an aligned text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self.entries.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
        for (name, value) in &self.entries {
            match value {
                Value::Counter(n) => out.push_str(&format!("{name:width$}  {n}\n")),
                Value::Gauge(v) => out.push_str(&format!("{name:width$}  {}\n", fmt_f64(*v))),
                Value::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let mean = if *count > 0 {
                        *sum as f64 / *count as f64
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "{name:width$}  count={count} sum={sum} mean={mean:.2}\n"
                    ));
                    for (floor, n) in buckets {
                        out.push_str(&format!("{:width$}    >= {floor}: {n}\n", ""));
                    }
                }
            }
        }
        out
    }

    /// Renders as CSV (`name,kind,value` rows; histograms add one row
    /// per non-empty bucket).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("name,kind,value\n");
        for (name, value) in &self.entries {
            match value {
                Value::Counter(n) => out.push_str(&format!("{name},counter,{n}\n")),
                Value::Gauge(v) => out.push_str(&format!("{name},gauge,{}\n", fmt_f64(*v))),
                Value::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!("{name},histogram_count,{count}\n"));
                    out.push_str(&format!("{name},histogram_sum,{sum}\n"));
                    for (floor, n) in buckets {
                        out.push_str(&format!("{name},histogram_bucket_{floor},{n}\n"));
                    }
                }
            }
        }
        out
    }

    /// Renders as a single JSON object — the canonical on-disk snapshot
    /// format, parsed back by [`crate::report::parse_snapshot`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match value {
                Value::Counter(n) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"kind\":\"counter\",\"value\":{n}}}"
                    ));
                }
                Value::Gauge(v) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"value\":{}}}",
                        fmt_f64(*v)
                    ));
                }
                Value::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"count\":{count},\
                         \"sum\":{sum},\"buckets\":["
                    ));
                    for (j, (floor, n)) in buckets.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("[{floor},{n}]"));
                    }
                    out.push_str("]}");
                }
            }
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every test touching the global enable flag runs under this lock
    /// so parallel tests cannot observe each other's toggles.
    fn with_metrics_on(f: impl FnOnce()) {
        static GATE: Mutex<()> = Mutex::new(());
        let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(true);
        f();
        set_enabled(false);
    }

    #[test]
    fn counters_count_only_while_enabled() {
        let c = counter("test.metrics.counter");
        let before = c.value();
        set_enabled(false);
        c.add(5);
        assert_eq!(c.value(), before, "disabled counter must not move");
        with_metrics_on(|| {
            c.inc();
            c.add(4);
            assert_eq!(c.value(), before + 5);
        });
    }

    #[test]
    fn gauges_set_add_and_max() {
        let g = gauge("test.metrics.gauge");
        with_metrics_on(|| {
            g.set(1.5);
            assert_eq!(g.value(), 1.5);
            g.add(2.5);
            assert_eq!(g.value(), 4.0);
            g.max(3.0);
            assert_eq!(g.value(), 4.0, "max below current must not lower");
            g.max(9.0);
            assert_eq!(g.value(), 9.0);
        });
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..HISTOGRAM_BUCKETS {
            let floor = bucket_floor(i);
            assert_eq!(bucket_of(floor), i, "floor of bucket {i} maps back");
        }
    }

    #[test]
    fn histogram_observe_and_snapshot() {
        let h = histogram("test.metrics.hist");
        with_metrics_on(|| {
            let base_count = h.count();
            for v in [0u64, 1, 2, 3, 1000] {
                h.observe(v);
            }
            assert_eq!(h.count(), base_count + 5);
            let snap = snapshot();
            let (_, value) = snap
                .entries
                .iter()
                .find(|(n, _)| n == "test.metrics.hist")
                .expect("registered histogram in snapshot");
            match value {
                Value::Histogram { count, sum, .. } => {
                    assert!(*count >= 5);
                    assert!(*sum >= 1006);
                }
                other => panic!("wrong kind {other:?}"),
            }
        });
    }

    #[test]
    fn same_name_returns_the_same_metric() {
        let a = counter("test.metrics.same");
        let b = counter("test.metrics.same");
        with_metrics_on(|| {
            let before = a.value();
            b.add(3);
            assert_eq!(a.value(), before + 3);
        });
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let _ = counter("test.metrics.mismatch");
        let _ = gauge("test.metrics.mismatch");
    }

    #[test]
    fn snapshot_renders_all_formats() {
        let c = counter("test.render.a");
        let g = gauge("test.render.b");
        with_metrics_on(|| {
            c.add(7);
            g.set(2.25);
        });
        let snap = snapshot();
        let text = snap.render_text();
        assert!(text.contains("test.render.a"));
        let csv = snap.render_csv();
        assert!(csv.starts_with("name,kind,value\n"));
        assert!(csv.contains("test.render.b,gauge,"));
        let json = snap.render_json();
        assert!(json.contains("\"name\":\"test.render.a\",\"kind\":\"counter\""));
        // Sorted by name: a before b.
        assert!(json.find("test.render.a").unwrap() < json.find("test.render.b").unwrap());
    }
}
