//! The consumer side of observability: fold a JSONL trace into a
//! per-phase time breakdown, and parse a metrics snapshot back from its
//! JSON form — what the `rbr obs` subcommand serves.
//!
//! Includes a small self-contained JSON reader (the crate is
//! dependency-free); it accepts the canonical output of
//! [`crate::trace`] and [`crate::metrics::Snapshot::render_json`] and
//! any equivalent JSON, and skips lines it cannot parse (counted, so
//! truncated traces degrade instead of failing).

use std::collections::BTreeMap;
use std::io::{self, BufRead};

use crate::metrics::{Snapshot, Value as MetricValue};

/// A parsed JSON value (just enough for traces and snapshots).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key order preserved by sorting (BTreeMap).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// This value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as a number, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a u64, if a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".to_string()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str upstream).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }
}

/// Parses one JSON document from `text`.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data at byte {}", parser.pos));
    }
    Ok(value)
}

/// Aggregate of one named span or phase across a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeAgg {
    /// Records folded in.
    pub count: u64,
    /// Total seconds.
    pub secs: f64,
    /// Largest single record, seconds.
    pub max_secs: f64,
}

impl TimeAgg {
    fn fold(&mut self, secs: f64) {
        self.count += 1;
        self.secs += secs;
        if secs > self.max_secs {
            self.max_secs = secs;
        }
    }
}

/// Aggregate of one named event across a trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EventAgg {
    /// Records folded in.
    pub count: u64,
    /// Earliest `t` seen.
    pub first_t: f64,
    /// Latest `t` seen.
    pub last_t: f64,
}

/// The fold of a whole trace file: per-phase time per scope, span
/// aggregates, event counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Lines read.
    pub lines: u64,
    /// Lines that failed to parse or lacked a known `kind` (a
    /// truncated tail shows up here, not as an error).
    pub skipped: u64,
    /// `scope -> phase name -> aggregate`, the per-phase breakdown.
    pub phases: BTreeMap<String, BTreeMap<String, TimeAgg>>,
    /// `span name -> aggregate`.
    pub spans: BTreeMap<String, TimeAgg>,
    /// `(clock label, event name) -> aggregate`.
    pub events: BTreeMap<(String, String), EventAgg>,
}

/// Folds a JSONL trace into a [`TraceSummary`]. IO errors propagate;
/// malformed lines are counted in `skipped`.
pub fn fold_trace(reader: impl BufRead) -> io::Result<TraceSummary> {
    let mut summary = TraceSummary::default();
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.lines += 1;
        let Ok(record) = parse_json(&line) else {
            summary.skipped += 1;
            continue;
        };
        let kind = record.get("kind").and_then(Json::as_str);
        match kind {
            Some("phase") => {
                let (Some(scope), Some(name), Some(secs)) = (
                    record.get("scope").and_then(Json::as_str),
                    record.get("name").and_then(Json::as_str),
                    record.get("secs").and_then(Json::as_f64),
                ) else {
                    summary.skipped += 1;
                    continue;
                };
                summary
                    .phases
                    .entry(scope.to_string())
                    .or_default()
                    .entry(name.to_string())
                    .or_default()
                    .fold(secs);
            }
            Some("span") => {
                let (Some(name), Some(secs)) = (
                    record.get("name").and_then(Json::as_str),
                    record.get("secs").and_then(Json::as_f64),
                ) else {
                    summary.skipped += 1;
                    continue;
                };
                summary
                    .spans
                    .entry(name.to_string())
                    .or_default()
                    .fold(secs);
            }
            Some("event") => {
                let (Some(clock), Some(name), Some(t)) = (
                    record.get("clock").and_then(Json::as_str),
                    record.get("name").and_then(Json::as_str),
                    record.get("t").and_then(Json::as_f64),
                ) else {
                    summary.skipped += 1;
                    continue;
                };
                let agg = summary
                    .events
                    .entry((clock.to_string(), name.to_string()))
                    .or_default();
                if agg.count == 0 || t < agg.first_t {
                    agg.first_t = t;
                }
                if agg.count == 0 || t > agg.last_t {
                    agg.last_t = t;
                }
                agg.count += 1;
            }
            _ => summary.skipped += 1,
        }
    }
    Ok(summary)
}

impl TraceSummary {
    /// Renders the per-phase breakdown (with in-scope percentages),
    /// span table, and event counts as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "trace: {} record(s), {} skipped\n",
            self.lines, self.skipped
        ));
        for (scope, phases) in &self.phases {
            let total: f64 = phases.values().map(|a| a.secs).sum();
            out.push_str(&format!(
                "\nphase breakdown [{scope}] — {total:.6}s total\n"
            ));
            let mut rows: Vec<(&String, &TimeAgg)> = phases.iter().collect();
            rows.sort_by(|a, b| b.1.secs.total_cmp(&a.1.secs).then(a.0.cmp(b.0)));
            for (name, agg) in rows {
                let pct = if total > 0.0 {
                    100.0 * agg.secs / total
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {name:<16} {secs:>12.6}s  {pct:>5.1}%  ({count} record(s))\n",
                    secs = agg.secs,
                    count = agg.count,
                ));
            }
        }
        if !self.spans.is_empty() {
            out.push_str("\nspans\n");
            let mut rows: Vec<(&String, &TimeAgg)> = self.spans.iter().collect();
            rows.sort_by(|a, b| b.1.secs.total_cmp(&a.1.secs).then(a.0.cmp(b.0)));
            for (name, agg) in rows {
                let mean = if agg.count > 0 {
                    agg.secs / agg.count as f64
                } else {
                    0.0
                };
                out.push_str(&format!(
                    "  {name:<24} n={count:<8} total={secs:.6}s mean={mean:.9}s max={max:.9}s\n",
                    count = agg.count,
                    secs = agg.secs,
                    max = agg.max_secs,
                ));
            }
        }
        if !self.events.is_empty() {
            out.push_str("\nevents\n");
            for ((clock, name), agg) in &self.events {
                out.push_str(&format!(
                    "  {name:<24} n={count:<8} clock={clock} t=[{first:.3}, {last:.3}]\n",
                    count = agg.count,
                    first = agg.first_t,
                    last = agg.last_t,
                ));
            }
        }
        out
    }
}

/// Parses a snapshot previously written by
/// [`Snapshot::render_json`] back into a [`Snapshot`].
pub fn parse_snapshot(text: &str) -> Result<Snapshot, String> {
    let root = parse_json(text)?;
    let Some(Json::Arr(metrics)) = root.get("metrics") else {
        return Err("snapshot JSON lacks a \"metrics\" array".to_string());
    };
    let mut entries = Vec::with_capacity(metrics.len());
    for m in metrics {
        let name = m
            .get("name")
            .and_then(Json::as_str)
            .ok_or("metric without a name")?
            .to_string();
        let kind = m
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("metric without a kind")?;
        let value = match kind {
            "counter" => MetricValue::Counter(
                m.get("value")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("counter {name} without an integer value"))?,
            ),
            "gauge" => MetricValue::Gauge(
                m.get("value")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("gauge {name} without a numeric value"))?,
            ),
            "histogram" => {
                let count = m
                    .get("count")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("histogram {name} without a count"))?;
                let sum = m
                    .get("sum")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("histogram {name} without a sum"))?;
                let mut buckets = Vec::new();
                if let Some(Json::Arr(pairs)) = m.get("buckets") {
                    for pair in pairs {
                        let Json::Arr(items) = pair else {
                            return Err(format!("histogram {name} bucket is not a pair"));
                        };
                        let (Some(floor), Some(n)) = (
                            items.first().and_then(Json::as_u64),
                            items.get(1).and_then(Json::as_u64),
                        ) else {
                            return Err(format!("histogram {name} bucket is not numeric"));
                        };
                        buckets.push((floor, n));
                    }
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                }
            }
            other => return Err(format!("metric {name} has unknown kind {other:?}")),
        };
        entries.push((name, value));
    }
    entries.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(Snapshot { entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn json_parser_round_trips_trace_lines() {
        let line = "{\"kind\":\"event\",\"clock\":\"sim\",\"t\":12.5,\"name\":\"x\",\
                    \"fields\":{\"a\":3,\"b\":\"s\",\"c\":-1.5}}";
        let v = parse_json(line).expect("parse");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some("event"));
        assert_eq!(v.get("t").and_then(Json::as_f64), Some(12.5));
        let fields = v.get("fields").expect("fields");
        assert_eq!(fields.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(fields.get("b").and_then(Json::as_str), Some("s"));
        assert_eq!(fields.get("c").and_then(Json::as_f64), Some(-1.5));
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("{\"a\":").is_err());
        assert!(parse_json("nope").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("").is_err());
    }

    #[test]
    fn fold_aggregates_phases_spans_events() {
        let trace = "\
{\"kind\":\"phase\",\"scope\":\"grid.run\",\"name\":\"queue-ops\",\"secs\":0.25}\n\
{\"kind\":\"phase\",\"scope\":\"grid.run\",\"name\":\"protocol\",\"secs\":0.75}\n\
{\"kind\":\"phase\",\"scope\":\"grid.run\",\"name\":\"queue-ops\",\"secs\":0.25}\n\
{\"kind\":\"span\",\"name\":\"exec.fold\",\"secs\":0.1}\n\
{\"kind\":\"span\",\"name\":\"exec.fold\",\"secs\":0.3}\n\
{\"kind\":\"event\",\"clock\":\"sim\",\"t\":5.0,\"name\":\"grid.queue_depth\"}\n\
{\"kind\":\"event\",\"clock\":\"sim\",\"t\":1.0,\"name\":\"grid.queue_depth\"}\n\
not json at all\n";
        let summary = fold_trace(Cursor::new(trace)).expect("fold");
        assert_eq!(summary.lines, 8);
        assert_eq!(summary.skipped, 1);
        let grid = &summary.phases["grid.run"];
        assert_eq!(grid["queue-ops"].count, 2);
        assert!((grid["queue-ops"].secs - 0.5).abs() < 1e-12);
        assert!((grid["protocol"].secs - 0.75).abs() < 1e-12);
        let fold = &summary.spans["exec.fold"];
        assert_eq!(fold.count, 2);
        assert!((fold.max_secs - 0.3).abs() < 1e-12);
        let depth = &summary.events[&("sim".to_string(), "grid.queue_depth".to_string())];
        assert_eq!(depth.count, 2);
        assert_eq!(depth.first_t, 1.0);
        assert_eq!(depth.last_t, 5.0);
        let rendered = summary.render();
        assert!(rendered.contains("phase breakdown [grid.run]"));
        assert!(rendered.contains("protocol"));
        assert!(
            rendered.contains("60.0%"),
            "protocol is 0.75 of 1.25s:\n{rendered}"
        );
    }

    #[test]
    fn snapshot_json_round_trips() {
        use crate::metrics::Value;
        let snap = Snapshot {
            entries: vec![
                ("a.count".to_string(), Value::Counter(42)),
                ("b.level".to_string(), Value::Gauge(2.25)),
                (
                    "c.hist".to_string(),
                    Value::Histogram {
                        count: 3,
                        sum: 7,
                        buckets: vec![(1, 1), (2, 2)],
                    },
                ),
            ],
        };
        let json = snap.render_json();
        let back = parse_snapshot(&json).expect("parse snapshot");
        assert_eq!(back, snap);
    }
}
