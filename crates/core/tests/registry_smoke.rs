//! End-to-end smoke test of the experiment registry: every entry must
//! complete at smoke scale, stamp its provenance, emit non-empty tables
//! whose metric cells are finite, and survive a JSON round trip.

use rbr::experiments::Registry;
use rbr::report::{Cell, Format, Report};
use rbr::Scale;

#[test]
fn every_registry_entry_completes_at_smoke_scale() {
    let registry = Registry::standard();
    assert!(!registry.is_empty());
    for exp in registry.iter() {
        let report = exp.run(Scale::Smoke, exp.default_seed());

        assert_eq!(report.meta.experiment, exp.name());
        assert_eq!(report.meta.paper_section, exp.paper_section());
        assert_eq!(report.meta.scale, "smoke");
        assert_eq!(report.meta.seed, exp.default_seed());
        assert!(report.meta.replications > 0, "{}", exp.name());
        assert!(report.meta.wall_time_secs >= 0.0, "{}", exp.name());

        assert!(
            !report.tables.is_empty(),
            "{} produced no tables",
            exp.name()
        );
        for table in &report.tables {
            assert!(
                !table.rows.is_empty(),
                "{}: table {:?} has no rows",
                exp.name(),
                table.name
            );
            for row in &table.rows {
                for cell in row {
                    if let Cell::Float { value, .. } | Cell::Percent { value, .. } = cell {
                        assert!(
                            value.is_finite(),
                            "{}: non-finite metric cell in table {:?}",
                            exp.name(),
                            table.name
                        );
                    }
                }
            }
        }

        // Every renderer must produce something.
        assert!(!report.render(Format::Text).is_empty());
        assert!(!report.render(Format::Csv).is_empty());

        // The JSON form must parse back to a report that re-serializes
        // byte-identically.
        let json = report.render(Format::Json);
        let back = Report::from_json(&json)
            .unwrap_or_else(|e| panic!("{}: JSON does not parse back: {e}", exp.name()));
        assert_eq!(
            back.render(Format::Json),
            json,
            "{}: JSON round trip is lossy",
            exp.name()
        );
    }
}

#[test]
fn fig1_entry_emits_both_figures() {
    let registry = Registry::standard();
    let exp = registry.get("fig2").expect("fig2 resolves via alias");
    assert_eq!(exp.name(), "fig1");
    let report = exp.run(Scale::Smoke, exp.default_seed());
    assert_eq!(
        report.tables.len(),
        2,
        "fig1 must emit Figure 1 and Figure 2"
    );
    assert!(report.tables[0].name.contains("Figure 1"));
    assert!(report.tables[1].name.contains("Figure 2"));
}
