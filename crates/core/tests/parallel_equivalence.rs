//! The campaign engine's core guarantee, proven over the whole registry:
//! every experiment's JSON report is byte-identical for `--jobs 1` and
//! `--jobs 4` at the same `(scale, seed, reps)`.
//!
//! Wall time is the one legitimately nondeterministic field in a report,
//! so the test pins it with `RBR_FIXED_WALL_TIME` — the same override the
//! CI determinism gate uses. Everything else (tables, sim accounting)
//! must come out identical however the cells interleave.
//!
//! A second pass re-proves the gate with the `rbr-obs` metrics registry
//! enabled and a trace sink attached: observability is a side channel,
//! so 1-vs-2-lane reports must stay byte-identical — and identical to
//! the obs-off baseline.

use rbr::experiments::Registry;
use rbr::report::Format;
use rbr::Scale;
use rbr_exec::{with_pool, Pool};

#[test]
fn every_experiment_is_byte_identical_across_job_counts() {
    // Must precede the first report: the override is read once per
    // process. This test is the binary's only test, so no other thread
    // is concurrently reading the environment.
    std::env::set_var("RBR_FIXED_WALL_TIME", "0");

    let registry = Registry::standard();
    let serial = Pool::new(1);
    let parallel = Pool::new(4);
    let mut baseline = std::collections::BTreeMap::new();
    for exp in registry.iter() {
        let seed = exp.default_seed();
        let a = with_pool(&serial, || {
            exp.run_with(Scale::Smoke, seed, None).render(Format::Json)
        });
        let b = with_pool(&parallel, || {
            exp.run_with(Scale::Smoke, seed, None).render(Format::Json)
        });
        assert_eq!(a, b, "{}: serial and 4-lane reports diverged", exp.name());
        // The fixed-wall-time override reached the report.
        assert!(
            a.contains("\"wall_time_secs\":0"),
            "{}: RBR_FIXED_WALL_TIME override missing from {a}",
            exp.name()
        );
        baseline.insert(exp.name().to_string(), a);
    }

    // Second pass — the same gate with observability fully enabled
    // (metrics registry on, trace sink attached): 1 vs 2 lanes must
    // stay byte-identical, and must match the obs-off baseline too.
    // Same test function on purpose: the env override above is
    // process-global, so this file holds exactly one test.
    let trace_path = std::env::temp_dir().join(format!(
        "rbr-parallel-equivalence-trace-{}.jsonl",
        std::process::id()
    ));
    rbr_obs::metrics::set_enabled(true);
    rbr_obs::trace::start_file(&trace_path).expect("attach trace sink");
    let two = Pool::new(2);
    for exp in registry.iter() {
        let seed = exp.default_seed();
        let a = with_pool(&serial, || {
            exp.run_with(Scale::Smoke, seed, None).render(Format::Json)
        });
        let b = with_pool(&two, || {
            exp.run_with(Scale::Smoke, seed, None).render(Format::Json)
        });
        assert_eq!(
            a,
            b,
            "{}: serial and 2-lane reports diverged with obs enabled",
            exp.name()
        );
        assert_eq!(
            Some(&a),
            baseline.get(exp.name()),
            "{}: enabling observability changed report bytes",
            exp.name()
        );
    }
    rbr_obs::trace::stop().expect("detach trace sink");
    rbr_obs::metrics::set_enabled(false);
    let _ = std::fs::remove_file(&trace_path);
}
