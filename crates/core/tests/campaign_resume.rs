//! Crash-recovery proof for registry campaigns: a campaign killed
//! mid-flight (simulated with a cell budget), whose journal then loses
//! part of its trailing record (simulated by truncating the file), must
//! resume to a final report byte-identical to an uninterrupted run.

use rbr::experiments::campaign::{run, Plan, RunOptions};
use rbr::experiments::Registry;
use rbr::report::Format;
use rbr::Scale;
use rbr_exec::{with_pool, Pool};

#[test]
fn interrupted_campaign_resumes_byte_identically() {
    // Pin wall time before the first report; this is the binary's only
    // test, so nothing else reads the environment concurrently.
    std::env::set_var("RBR_FIXED_WALL_TIME", "0");

    let registry = Registry::standard();
    let dir = std::env::temp_dir().join(format!("rbr-campaign-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let plan = Plan {
        experiments: registry.iter().take(6).collect(),
        scale: Scale::Smoke,
        seed: Some(5),
        reps: Some(2),
        format: Format::Json,
    };

    // The reference: one uninterrupted, unjournalled run.
    let uninterrupted = run(&plan, &RunOptions::default(), &|_| {}).unwrap();
    assert!(uninterrupted.complete);

    // "Kill" a journalled campaign after 3 cells. A serial pool makes
    // the journal's contents deterministic: exactly cells 0..3.
    let serial = Pool::new(1);
    let interrupted = with_pool(&serial, || {
        run(
            &plan,
            &RunOptions {
                dir: Some(dir.clone()),
                resume: false,
                cell_budget: Some(3),
                cache: None,
            },
            &|_| {},
        )
    })
    .unwrap();
    assert!(!interrupted.complete);
    assert_eq!(interrupted.executed, 3);

    // The kill landed mid-append: chop bytes off the trailing record of
    // the journal's active segment.
    let journal = dir.join(rbr_exec::journal::segment_file(0));
    let bytes = std::fs::read(&journal).unwrap();
    std::fs::write(&journal, &bytes[..bytes.len() - 25]).unwrap();

    // Resume. The truncated third record is gone, so it re-executes.
    let mut events = Vec::new();
    let resumed = {
        let events = std::sync::Mutex::new(&mut events);
        run(
            &plan,
            &RunOptions {
                dir: Some(dir.clone()),
                resume: true,
                cell_budget: None,
                cache: None,
            },
            &|p| events.lock().unwrap().push((p.cell, p.replayed)),
        )
        .unwrap()
    };
    assert!(resumed.complete);
    assert_eq!(resumed.replayed, 2, "cells 0 and 1 replay from the journal");
    assert_eq!(resumed.executed, 4, "cells 2..6 re-execute");
    let replays: Vec<u64> = events
        .iter()
        .filter(|(_, replayed)| *replayed)
        .map(|(cell, _)| *cell)
        .collect();
    assert_eq!(replays.len(), 2);
    assert!(replays.contains(&0) && replays.contains(&1));

    // The acceptance criterion: resumed output == uninterrupted output,
    // byte for byte, cell by cell.
    assert_eq!(uninterrupted.outcomes.len(), resumed.outcomes.len());
    for (a, b) in uninterrupted.outcomes.iter().zip(&resumed.outcomes) {
        assert_eq!(a.key, b.key);
        assert_eq!(a.payload, b.payload, "{}: resume diverged", a.key);
    }

    // A second resume replays everything and re-executes nothing.
    let replay_only = run(
        &plan,
        &RunOptions {
            dir: Some(dir.clone()),
            resume: true,
            cell_budget: None,
            cache: None,
        },
        &|_| {},
    )
    .unwrap();
    assert!(replay_only.complete);
    assert_eq!(replay_only.executed, 0);
    assert_eq!(replay_only.replayed, 6);
    for (a, b) in uninterrupted.outcomes.iter().zip(&replay_only.outcomes) {
        assert_eq!(a.payload, b.payload);
    }

    std::fs::remove_dir_all(&dir).unwrap();
}
