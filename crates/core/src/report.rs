//! Structured experiment results and their renderers.
//!
//! Two layers live here:
//!
//! * [`Table`] — a plain string table, used for ad-hoc CLI output
//!   (capacity arithmetic, throughput probes) and as the text-alignment
//!   backend of the typed layer.
//! * [`Report`] — the structured result of one experiment run: named
//!   [`TypedTable`]s of typed [`Cell`]s plus [`RunMeta`] provenance
//!   (scale, seed, replication and simulation counts, wall time). A
//!   report renders to aligned text, CSV, or JSON ([`Format`]), and JSON
//!   reports parse back with [`Report::from_json`] so downstream tooling
//!   can consume artifacts mechanically instead of scraping stdout.
//!
//! JSON is the *data* interchange form: it carries cell values, not
//! presentation precision. Percent cells serialize as raw fractions,
//! non-finite floats as `null`, and a reparsed report re-serializes to
//! the identical JSON string.

/// A rectangular table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned monospace table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align everything else.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.');
                if numeric {
                    line.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio the way the paper's tables do (two decimals).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// One typed value in a [`TypedTable`].
#[derive(Clone, Debug, PartialEq)]
pub enum Cell {
    /// A label (scheme name, policy, metric description, ...).
    Text(String),
    /// An integer quantity (cluster count, job count, queue size).
    Int(i64),
    /// A real-valued metric, displayed with `prec` decimals.
    Float {
        /// The value.
        value: f64,
        /// Decimals shown by the text renderer (JSON keeps full precision).
        prec: u8,
    },
    /// A fraction in `[0, 1]` displayed as a percentage with `prec`
    /// decimals; JSON serializes the raw fraction.
    Percent {
        /// The raw fraction.
        value: f64,
        /// Decimals shown by the text renderer.
        prec: u8,
    },
    /// A metric that does not exist for this row (e.g. redundant-job
    /// stretch when the redundant fraction is zero).
    Missing,
}

impl Cell {
    /// A text cell.
    pub fn text(s: impl Into<String>) -> Cell {
        Cell::Text(s.into())
    }

    /// An integer cell.
    pub fn int(value: i64) -> Cell {
        Cell::Int(value)
    }

    /// A float cell. The value is stored as-is — experiments that can
    /// legitimately produce a non-finite value (an undefined population
    /// mean, say) should use [`Cell::float_or_missing`] so the framework
    /// smoke test can keep asserting that every `Float` cell is finite.
    pub fn float(value: f64, prec: u8) -> Cell {
        Cell::Float { value, prec }
    }

    /// A float cell for an *optional* metric: non-finite values become
    /// [`Cell::Missing`] instead of poisoning the table.
    pub fn float_or_missing(value: f64, prec: u8) -> Cell {
        if value.is_finite() {
            Cell::Float { value, prec }
        } else {
            Cell::Missing
        }
    }

    /// A percent cell (raw fraction in, `xx.x%` out).
    pub fn percent(value: f64, prec: u8) -> Cell {
        Cell::Percent { value, prec }
    }

    /// A percent cell for an optional metric; non-finite → missing.
    pub fn percent_or_missing(value: f64, prec: u8) -> Cell {
        if value.is_finite() {
            Cell::Percent { value, prec }
        } else {
            Cell::Missing
        }
    }

    /// The aligned-text form.
    fn to_text(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, prec } if value.is_finite() => {
                let p = *prec as usize;
                format!("{value:.p$}")
            }
            Cell::Percent { value, prec } if value.is_finite() => {
                let p = *prec as usize;
                format!("{:.p$}%", value * 100.0)
            }
            Cell::Float { .. } | Cell::Percent { .. } | Cell::Missing => "-".to_string(),
        }
    }

    /// The raw CSV form (full precision, empty string for missing).
    fn to_csv(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Int(v) => v.to_string(),
            Cell::Float { value, .. } | Cell::Percent { value, .. } if value.is_finite() => {
                format!("{value}")
            }
            Cell::Float { .. } | Cell::Percent { .. } | Cell::Missing => String::new(),
        }
    }

    /// Appends the JSON form.
    fn write_json(&self, out: &mut String) {
        match self {
            Cell::Text(s) => write_json_string(out, s),
            Cell::Int(v) => out.push_str(&v.to_string()),
            Cell::Float { value, .. } | Cell::Percent { value, .. } if value.is_finite() => {
                out.push_str(&format!("{value}"));
            }
            Cell::Float { .. } | Cell::Percent { .. } | Cell::Missing => out.push_str("null"),
        }
    }

    /// Rebuilds a cell from a parsed JSON value. Number tokens without a
    /// fractional or exponent part come back as `Int`; everything else
    /// numeric comes back as `Float` with default display precision
    /// (precision is presentation state and is not serialized).
    fn from_value(v: &Json) -> Result<Cell, String> {
        match v {
            Json::Null => Ok(Cell::Missing),
            Json::Str(s) => Ok(Cell::Text(s.clone())),
            Json::Num(tok) => {
                if !tok.contains(['.', 'e', 'E']) {
                    if let Ok(i) = tok.parse::<i64>() {
                        return Ok(Cell::Int(i));
                    }
                }
                tok.parse::<f64>()
                    .map(|value| Cell::Float { value, prec: 3 })
                    .map_err(|e| format!("bad number {tok:?}: {e}"))
            }
            other => Err(format!("cell must be null/string/number, got {other:?}")),
        }
    }
}

/// A named table of typed cells — one logical figure or table of output.
#[derive(Clone, Debug, PartialEq)]
pub struct TypedTable {
    /// Table name, e.g. `"Figure 1 — relative average stretch"`.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Data rows; every row has exactly `columns.len()` cells.
    pub rows: Vec<Vec<Cell>>,
}

impl TypedTable {
    /// Creates an empty table with the given name and column headers.
    pub fn new(name: impl Into<String>, columns: Vec<impl Into<String>>) -> Self {
        TypedTable {
            name: name.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the column count.
    pub fn push(&mut self, row: Vec<Cell>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {} in table {:?}",
            row.len(),
            self.columns.len(),
            self.name
        );
        self.rows.push(row);
    }

    /// Renders as an aligned monospace table (no name line).
    pub fn to_text(&self) -> String {
        let mut t = Table::new(self.columns.clone());
        for row in &self.rows {
            t.push(row.iter().map(Cell::to_text).collect::<Vec<_>>());
        }
        t.render()
    }

    /// Renders as CSV with raw (full-precision) values.
    pub fn to_csv(&self) -> String {
        let mut t = Table::new(self.columns.clone());
        for row in &self.rows {
            t.push(row.iter().map(Cell::to_csv).collect::<Vec<_>>());
        }
        t.to_csv()
    }

    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        write_json_string(out, &self.name);
        out.push_str(",\"columns\":[");
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_string(out, c);
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, cell) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                cell.write_json(out);
            }
            out.push(']');
        }
        out.push_str("]}");
    }

    fn from_value(v: &Json) -> Result<TypedTable, String> {
        let name = v.get("name")?.str_()?.to_string();
        let columns: Vec<String> = v
            .get("columns")?
            .arr()?
            .iter()
            .map(|c| c.str_().map(str::to_string))
            .collect::<Result<_, _>>()?;
        let mut rows = Vec::new();
        for row in v.get("rows")?.arr()? {
            let cells: Vec<Cell> = row
                .arr()?
                .iter()
                .map(Cell::from_value)
                .collect::<Result<_, _>>()?;
            if cells.len() != columns.len() {
                return Err(format!(
                    "table {name:?}: row width {} != column count {}",
                    cells.len(),
                    columns.len()
                ));
            }
            rows.push(cells);
        }
        Ok(TypedTable {
            name,
            columns,
            rows,
        })
    }
}

/// Provenance of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Registry name of the experiment.
    pub experiment: String,
    /// Paper section the experiment reproduces.
    pub paper_section: String,
    /// Scale name (`"smoke"` / `"quick"` / `"paper"`).
    pub scale: String,
    /// Master seed the run was derived from.
    pub seed: u64,
    /// Replications per configuration at this scale.
    pub replications: usize,
    /// Grid-simulator executions performed (0 for experiments that drive
    /// the moldable, dual-queue, or middleware simulators instead).
    pub sim_runs: u64,
    /// Jobs completed across those grid-simulator executions.
    pub jobs: u64,
    /// Discrete events processed across those executions.
    pub events: u64,
    /// Wall-clock time of the run in seconds.
    pub wall_time_secs: f64,
}

impl RunMeta {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"experiment\":");
        write_json_string(out, &self.experiment);
        out.push_str(",\"paper_section\":");
        write_json_string(out, &self.paper_section);
        out.push_str(",\"scale\":");
        write_json_string(out, &self.scale);
        out.push_str(&format!(
            ",\"seed\":{},\"replications\":{},\"sim_runs\":{},\"jobs\":{},\"events\":{}",
            self.seed, self.replications, self.sim_runs, self.jobs, self.events
        ));
        out.push_str(",\"wall_time_secs\":");
        if self.wall_time_secs.is_finite() {
            out.push_str(&format!("{}", self.wall_time_secs));
        } else {
            out.push_str("null");
        }
        out.push('}');
    }

    fn from_value(v: &Json) -> Result<RunMeta, String> {
        Ok(RunMeta {
            experiment: v.get("experiment")?.str_()?.to_string(),
            paper_section: v.get("paper_section")?.str_()?.to_string(),
            scale: v.get("scale")?.str_()?.to_string(),
            seed: v.get("seed")?.u64_()?,
            replications: v.get("replications")?.u64_()? as usize,
            sim_runs: v.get("sim_runs")?.u64_()?,
            jobs: v.get("jobs")?.u64_()?,
            events: v.get("events")?.u64_()?,
            wall_time_secs: match v.get("wall_time_secs")? {
                Json::Null => f64::NAN,
                other => other.f64_()?,
            },
        })
    }

    /// One-line human summary, used as the text footer.
    fn summary_line(&self) -> String {
        format!(
            "# {} · {} · {} scale · seed {} · {} reps · {} sim runs · {} jobs · {} events · {:.2} s",
            self.experiment,
            self.paper_section,
            self.scale,
            self.seed,
            self.replications,
            self.sim_runs,
            self.jobs,
            self.events,
            self.wall_time_secs
        )
    }
}

/// Output format of a rendered [`Report`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Aligned monospace tables with a provenance footer.
    Text,
    /// Comment-prefixed metadata followed by one CSV block per table.
    Csv,
    /// A single JSON object (`{"meta": ..., "tables": [...]}`).
    Json,
}

impl Format {
    /// Parses a format name (case-insensitive); `txt` is accepted for
    /// `text`.
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" | "txt" => Some(Format::Text),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            _ => None,
        }
    }

    /// File extension used by `--out`.
    pub fn extension(self) -> &'static str {
        match self {
            Format::Text => "txt",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }
}

/// The structured result of one experiment run.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Provenance of the run.
    pub meta: RunMeta,
    /// The experiment's output tables, in presentation order.
    pub tables: Vec<TypedTable>,
}

impl Report {
    /// Renders in the requested format.
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Text => self.render_text(),
            Format::Csv => self.render_csv(),
            Format::Json => self.render_json(),
        }
    }

    /// Aligned text: each table under a `== name ==` banner, then the
    /// provenance footer.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for table in &self.tables {
            out.push_str(&format!("== {} ==\n", table.name));
            out.push_str(&table.to_text());
            out.push('\n');
        }
        out.push_str(&self.meta.summary_line());
        out.push('\n');
        out
    }

    /// CSV: `# key: value` metadata comments, then one `# table: name`
    /// block per table, separated by blank lines.
    pub fn render_csv(&self) -> String {
        let m = &self.meta;
        let mut out = format!(
            "# experiment: {}\n# paper_section: {}\n# scale: {}\n# seed: {}\n\
             # replications: {}\n# sim_runs: {}\n# jobs: {}\n# events: {}\n\
             # wall_time_secs: {}\n",
            m.experiment,
            m.paper_section,
            m.scale,
            m.seed,
            m.replications,
            m.sim_runs,
            m.jobs,
            m.events,
            m.wall_time_secs
        );
        for table in &self.tables {
            out.push_str(&format!("\n# table: {}\n", table.name));
            out.push_str(&table.to_csv());
        }
        out
    }

    /// Compact JSON, deterministic key order. Parse it back with
    /// [`Report::from_json`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"meta\":");
        self.meta.write_json(&mut out);
        out.push_str(",\"tables\":[");
        for (i, table) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            table.write_json(&mut out);
        }
        out.push_str("]}");
        out
    }

    /// Parses a report from its JSON rendering.
    pub fn from_json(s: &str) -> Result<Report, String> {
        let v = parse_json(s)?;
        let meta = RunMeta::from_value(v.get("meta")?)?;
        let tables = v
            .get("tables")?
            .arr()?
            .iter()
            .map(TypedTable::from_value)
            .collect::<Result<_, _>>()?;
        Ok(Report { meta, tables })
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON support. The workspace deliberately carries no JSON crate;
// reports only need objects/arrays/strings/numbers/null, so a ~150-line
// recursive-descent parser keeps the renderer round-trippable without a
// new dependency.
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw token so integer-ness and
/// full precision survive until a consumer picks a type.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key {key:?}")),
            other => Err(format!("expected object with key {key:?}, got {other:?}")),
        }
    }

    fn str_(&self) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("expected string, got {other:?}")),
        }
    }

    fn arr(&self) -> Result<&[Json], String> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(format!("expected array, got {other:?}")),
        }
    }

    fn u64_(&self) -> Result<u64, String> {
        match self {
            Json::Num(tok) => tok
                .parse::<u64>()
                .map_err(|e| format!("expected unsigned integer, got {tok:?}: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn f64_(&self) -> Result<f64, String> {
        match self {
            Json::Num(tok) => tok
                .parse::<f64>()
                .map_err(|e| format!("expected number, got {tok:?}: {e}")),
            other => Err(format!("expected number, got {other:?}")),
        }
    }
}

/// Appends `s` as a JSON string literal.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn parse_json(src: &str) -> Result<Json, String> {
    let mut p = JsonParser { src, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct JsonParser<'a> {
    src: &'a str,
    pos: usize,
}

impl JsonParser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.src.as_bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.src[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected exponent digits"));
            }
        }
        Ok(Json::Num(self.src[start..self.pos].to_string()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let bytes = self.src.as_bytes();
            let run_start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c != b'"' && c != b'\\' && c >= 0x20)
            {
                self.pos += 1;
            }
            if self.pos > run_start {
                // Safe slice: '"' and '\\' are ASCII, so run boundaries
                // fall on UTF-8 character boundaries.
                out.push_str(&self.src[run_start..self.pos]);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a following \uXXXX.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let Some(hex) = self.src.get(self.pos..end) else {
            return Err(self.err("truncated unicode escape"));
        };
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["scheme", "rel"]);
        t.push(vec!["R2".to_string(), "0.94".to_string()]);
        t.push(vec!["HALF".to_string(), "0.86".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[2].contains("R2"));
        // Numeric column right-aligned to equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["x,y".to_string(), "say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only one".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.8567), "0.86");
        assert_eq!(percent(0.123), "12.3%");
    }

    fn sample_report() -> Report {
        let mut t = TypedTable::new("Sample — \"quoted\", comma", vec!["label", "n", "metric"]);
        t.push(vec![
            Cell::text("plain"),
            Cell::int(42),
            Cell::float(0.8125, 3),
        ]);
        t.push(vec![
            Cell::text("esc \\ \"\n\ttab · π"),
            Cell::int(-7),
            Cell::float_or_missing(f64::NAN, 2),
        ]);
        t.push(vec![
            Cell::text("pct"),
            Cell::int(0),
            Cell::percent(0.875, 1),
        ]);
        Report {
            meta: RunMeta {
                experiment: "sample".to_string(),
                paper_section: "§0".to_string(),
                scale: "smoke".to_string(),
                seed: u64::MAX,
                replications: 2,
                sim_runs: 4,
                jobs: 123,
                events: 4567,
                wall_time_secs: 0.25,
            },
            tables: vec![t],
        }
    }

    #[test]
    fn cell_text_forms() {
        assert_eq!(Cell::float(1.5, 2).to_text(), "1.50");
        assert_eq!(Cell::percent(0.1234, 1).to_text(), "12.3%");
        assert_eq!(Cell::float_or_missing(f64::NAN, 2), Cell::Missing);
        assert_eq!(Cell::Missing.to_text(), "-");
        assert_eq!(Cell::int(-3).to_csv(), "-3");
        assert_eq!(Cell::percent(0.5, 0).to_csv(), "0.5");
    }

    #[test]
    fn report_text_has_banners_and_footer() {
        let text = sample_report().render_text();
        assert!(text.contains("== Sample"));
        assert!(text.contains("0.812"));
        assert!(text.contains("87.5%"));
        assert!(text.lines().last().unwrap().starts_with("# sample"));
    }

    #[test]
    fn report_csv_carries_metadata_comments() {
        let csv = sample_report().render_csv();
        assert!(csv.starts_with("# experiment: sample\n"));
        assert!(csv.contains("# seed: 18446744073709551615"));
        assert!(csv.contains("# table: Sample"));
        assert!(csv.contains("label,n,metric"));
        assert!(csv.contains("0.8125"));
    }

    #[test]
    fn json_round_trips_exactly() {
        let report = sample_report();
        let json = report.render_json();
        let reparsed = Report::from_json(&json).expect("parse back");
        assert_eq!(reparsed.render_json(), json);
        assert_eq!(reparsed.meta, report.meta);
        assert_eq!(reparsed.tables[0].name, report.tables[0].name);
        assert_eq!(reparsed.tables[0].rows[0][1], Cell::Int(42));
        // NaN serialized as null comes back as Missing.
        assert_eq!(reparsed.tables[0].rows[1][2], Cell::Missing);
        // Full float precision survives.
        match reparsed.tables[0].rows[0][2] {
            Cell::Float { value, .. } => assert_eq!(value, 0.8125),
            ref other => panic!("expected float, got {other:?}"),
        }
        // String escapes survive.
        assert_eq!(
            reparsed.tables[0].rows[1][0],
            Cell::Text("esc \\ \"\n\ttab · π".to_string())
        );
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(Report::from_json("").is_err());
        assert!(Report::from_json("{\"meta\":{}}").is_err());
        assert!(Report::from_json("{\"meta\":null,\"tables\":[]} trailing").is_err());
    }

    #[test]
    fn json_parser_accepts_unicode_escapes() {
        let report = Report::from_json(
            "{\"meta\":{\"experiment\":\"\\u00e9\\ud83d\\ude00\",\"paper_section\":\"s\",\
             \"scale\":\"smoke\",\"seed\":1,\"replications\":1,\"sim_runs\":0,\"jobs\":0,\
             \"events\":0,\"wall_time_secs\":1.5},\"tables\":[]}",
        )
        .expect("parse");
        assert_eq!(report.meta.experiment, "é😀");
    }

    #[test]
    fn format_parsing() {
        assert_eq!(Format::parse("json"), Some(Format::Json));
        assert_eq!(Format::parse("TEXT"), Some(Format::Text));
        assert_eq!(Format::parse("txt"), Some(Format::Text));
        assert_eq!(Format::parse("csv"), Some(Format::Csv));
        assert_eq!(Format::parse("yaml"), None);
        assert_eq!(Format::Json.extension(), "json");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn typed_table_rejects_ragged_rows() {
        let mut t = TypedTable::new("t", vec!["a", "b"]);
        t.push(vec![Cell::int(1)]);
    }
}
