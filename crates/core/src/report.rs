//! Plain-text and CSV rendering of experiment results.

/// A rectangular table with a header row.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the header width.
    pub fn push<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned monospace table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numbers, left-align everything else.
                let numeric = cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+' || c == '.');
                if numeric {
                    line.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                    line.push_str(cell);
                } else {
                    line.push_str(cell);
                    line.push_str(&" ".repeat(w.saturating_sub(cell.chars().count())));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as RFC-4180-ish CSV (quotes cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio the way the paper's tables do (two decimals).
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a percentage with one decimal.
pub fn percent(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["scheme", "rel"]);
        t.push(vec!["R2".to_string(), "0.94".to_string()]);
        t.push(vec!["HALF".to_string(), "0.86".to_string()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("scheme"));
        assert!(lines[2].contains("R2"));
        // Numeric column right-aligned to equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_properly() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["x,y".to_string(), "say \"hi\"".to_string()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push(vec!["only one".to_string()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(0.8567), "0.86");
        assert_eq!(percent(0.123), "12.3%");
    }
}
