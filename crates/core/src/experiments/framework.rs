//! The declarative experiment framework.
//!
//! Every figure, table, and ablation is an [`Experiment`]: a named,
//! self-describing unit that turns `(scale, seed)` into a structured
//! [`Report`]. The trait carries the shared scaffolding that each module
//! used to hand-roll — provenance stamping, wall-time measurement, and
//! simulation accounting — so a module only supplies its metadata and
//! its table builder. [`Comparison`] hoists the paired relative-metric
//! reduction (treatment over baseline on identical seeds) that most of
//! the paper's results are expressed in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rbr_grid::RunResult;
use rbr_stats::RelativeSeries;

use super::{mean_ratio, RunMetrics};
use crate::report::{Report, RunMeta, TypedTable};
use crate::scale::Scale;

/// Process-wide tally of grid-simulator executions, used to stamp
/// [`RunMeta`] with how much simulation a report cost. The counters are
/// monotonic; [`Experiment::run`] reports the delta across its table
/// build. Concurrent runs in one process may attribute each other's work —
/// the counts are provenance metadata, not metrics.
static SIM_RUNS: AtomicU64 = AtomicU64::new(0);
static SIM_JOBS: AtomicU64 = AtomicU64::new(0);
static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Records one completed grid-simulator run in the global tally.
pub(crate) fn record_sim(run: &RunResult) {
    SIM_RUNS.fetch_add(1, Ordering::Relaxed);
    SIM_JOBS.fetch_add(run.records.len() as u64, Ordering::Relaxed);
    SIM_EVENTS.fetch_add(run.events, Ordering::Relaxed);
}

fn sim_counters() -> (u64, u64, u64) {
    (
        SIM_RUNS.load(Ordering::Relaxed),
        SIM_JOBS.load(Ordering::Relaxed),
        SIM_EVENTS.load(Ordering::Relaxed),
    )
}

/// One registered experiment: a figure, table, or ablation that maps
/// `(scale, seed)` to a [`Report`].
///
/// Implementations provide metadata and [`Experiment::tables`]; the
/// provided [`Experiment::run`] wraps the table build with wall-time
/// measurement and simulation accounting and stamps the result with
/// [`RunMeta`]. Registering the implementation in
/// [`Registry::standard`](super::Registry::standard) is all it takes to
/// appear in `rbr list`, `rbr run`, the benches, and the framework smoke
/// test.
pub trait Experiment: Send + Sync {
    /// Canonical registry name (`"fig1"`, `"table3"`, `"queue-growth"`).
    fn name(&self) -> &'static str;

    /// Alternative names this entry answers to (`fig1` owns `fig2`
    /// because one sweep produces both figures).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description shown by `rbr list`.
    fn description(&self) -> &'static str;

    /// Paper section (or "beyond the paper" tag) the experiment belongs
    /// to.
    fn paper_section(&self) -> &'static str;

    /// Master seed used when the caller does not supply one.
    fn default_seed(&self) -> u64;

    /// Replications per configuration at the given scale, for the
    /// provenance stamp.
    fn replications(&self, scale: Scale) -> usize {
        scale.reps()
    }

    /// Builds the experiment's output tables at the given scale and
    /// master seed. A `Some(reps)` overrides the scale's replication
    /// count for every configuration the experiment sweeps (the CLI's
    /// `--reps` flag).
    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable>;

    /// Runs the experiment and stamps the result with provenance.
    fn run(&self, scale: Scale, seed: u64) -> Report {
        self.run_with(scale, seed, None)
    }

    /// [`Experiment::run`] with an explicit replication override, which
    /// is stamped into [`RunMeta::replications`] in place of the scale
    /// preset.
    fn run_with(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Report {
        let (runs0, jobs0, events0) = sim_counters();
        let start = Instant::now();
        let tables = self.tables(scale, seed, reps);
        let wall_time_secs = start.elapsed().as_secs_f64();
        let (runs1, jobs1, events1) = sim_counters();
        Report {
            meta: RunMeta {
                experiment: self.name().to_string(),
                paper_section: self.paper_section().to_string(),
                scale: scale.name().to_string(),
                seed,
                replications: reps.unwrap_or_else(|| self.replications(scale)),
                sim_runs: runs1 - runs0,
                jobs: jobs1 - jobs0,
                events: events1 - events0,
                wall_time_secs,
            },
            tables,
        }
    }
}

/// A paired baseline/treatment pair of replication series, reduced with
/// the paper's relative metrics. Replication `k` of both series ran on
/// identical seeds, so per-replication ratios are meaningful.
///
/// When several treatments share one baseline (every scheme against
/// `Scheme::None` at the same N), run the baseline once and clone its
/// metrics into each `Comparison` — `RunMetrics` is `Copy`, so that is a
/// flat memcpy.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-replication metrics of the unmodified platform.
    pub baseline: Vec<RunMetrics>,
    /// Per-replication metrics of the platform under the treatment.
    pub treatment: Vec<RunMetrics>,
}

impl Comparison {
    /// Pairs two already-computed replication series.
    pub fn new(baseline: Vec<RunMetrics>, treatment: Vec<RunMetrics>) -> Self {
        assert_eq!(
            baseline.len(),
            treatment.len(),
            "paired series must have equal length"
        );
        Comparison {
            baseline,
            treatment,
        }
    }

    fn rel<F: Fn(&RunMetrics) -> f64>(&self, metric: F) -> f64 {
        let t: Vec<f64> = self.treatment.iter().map(&metric).collect();
        let b: Vec<f64> = self.baseline.iter().map(&metric).collect();
        mean_ratio(&t, &b)
    }

    /// Mean relative average stretch (the paper's headline metric).
    pub fn rel_stretch(&self) -> f64 {
        self.rel(|m| m.stretch_mean)
    }

    /// Mean relative CV of stretches (the fairness metric).
    pub fn rel_cv(&self) -> f64 {
        self.rel(|m| m.stretch_cv)
    }

    /// Mean relative maximum stretch.
    pub fn rel_max_stretch(&self) -> f64 {
        self.rel(|m| m.stretch_max)
    }

    /// Mean relative average turnaround.
    pub fn rel_turnaround(&self) -> f64 {
        self.rel(|m| m.turnaround_mean)
    }

    /// Mean baseline average stretch (the paper quotes it for context).
    pub fn baseline_stretch(&self) -> f64 {
        self.baseline.iter().map(|m| m.stretch_mean).sum::<f64>() / self.baseline.len() as f64
    }

    /// The per-replication stretch-ratio series, for win-fraction and
    /// worst-case statistics.
    pub fn stretch_series(&self) -> RelativeSeries {
        RelativeSeries::from_ratios(
            self.treatment
                .iter()
                .zip(&self.baseline)
                .map(|(t, b)| t.stretch_mean / b.stretch_mean)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    struct Dummy;

    impl Experiment for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn description(&self) -> &'static str {
            "a framework test double"
        }
        fn paper_section(&self) -> &'static str {
            "§0"
        }
        fn default_seed(&self) -> u64 {
            1
        }
        fn tables(&self, _scale: Scale, seed: u64, _reps: Option<usize>) -> Vec<TypedTable> {
            let mut t = TypedTable::new("dummy", vec!["seed"]);
            t.push(vec![Cell::int(seed as i64)]);
            vec![t]
        }
    }

    #[test]
    fn provided_run_stamps_provenance() {
        let report = Dummy.run(Scale::Smoke, 77);
        assert_eq!(report.meta.experiment, "dummy");
        assert_eq!(report.meta.scale, "smoke");
        assert_eq!(report.meta.seed, 77);
        assert_eq!(report.meta.replications, Scale::Smoke.reps());
        assert!(report.meta.wall_time_secs >= 0.0);
        assert_eq!(report.tables[0].rows[0][0], Cell::Int(77));
    }

    #[test]
    fn reps_override_is_stamped_into_meta() {
        let report = Dummy.run_with(Scale::Smoke, 77, Some(9));
        assert_eq!(report.meta.replications, 9);
        let default = Dummy.run_with(Scale::Smoke, 77, None);
        assert_eq!(default.meta.replications, Scale::Smoke.reps());
    }

    #[test]
    fn comparison_reduces_paired_metrics() {
        let m = |stretch: f64| RunMetrics {
            stretch_mean: stretch,
            stretch_cv: 0.5,
            stretch_max: 2.0 * stretch,
            turnaround_mean: 100.0 * stretch,
            stretch_redundant: f64::NAN,
            stretch_non_redundant: stretch,
            max_queue_avg: 10.0,
            wasted_node_secs: 0.0,
            waste_fraction: 0.0,
            zombie_starts: 0.0,
            useful_node_secs: 1_000.0 * stretch,
            utilization: 0.5,
        };
        let cmp = Comparison::new(vec![m(2.0), m(4.0)], vec![m(1.0), m(2.0)]);
        assert!((cmp.rel_stretch() - 0.5).abs() < 1e-12);
        assert!((cmp.rel_cv() - 1.0).abs() < 1e-12);
        assert!((cmp.baseline_stretch() - 3.0).abs() < 1e-12);
        let series = cmp.stretch_series();
        assert_eq!(series.ratios().len(), 2);
        assert!((series.win_fraction() - 1.0).abs() < 1e-12);
    }
}
