//! The declarative experiment framework.
//!
//! Every figure, table, and ablation is an [`Experiment`]: a named,
//! self-describing unit that turns `(scale, seed)` into a structured
//! [`Report`]. The trait carries the shared scaffolding that each module
//! used to hand-roll — provenance stamping, wall-time measurement, and
//! simulation accounting — so a module only supplies its metadata and
//! its table builder. [`Comparison`] hoists the paired relative-metric
//! reduction (treatment over baseline on identical seeds) that most of
//! the paper's results are expressed in.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use rbr_grid::RunResult;
use rbr_stats::RelativeSeries;

use super::{mean_ratio, RunMetrics};
use crate::report::{Report, RunMeta, TypedTable};
use crate::scale::Scale;

/// Per-experiment tally of grid-simulator executions, used to stamp
/// [`RunMeta`] with how much simulation a report cost. Each
/// [`Experiment::run_with`] owns one tally; the replication fan-out in
/// `run_reps` carries it onto pool worker threads, so counts attribute to
/// the experiment that caused them even when several experiments run
/// concurrently on the campaign engine — and sum identically for any job
/// count.
#[derive(Default)]
pub(crate) struct SimTally {
    runs: AtomicU64,
    jobs: AtomicU64,
    events: AtomicU64,
}

impl SimTally {
    fn counters(&self) -> (u64, u64, u64) {
        (
            self.runs.load(Ordering::Relaxed),
            self.jobs.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
        )
    }
}

thread_local! {
    /// Stack of tallies active on this thread: `run_with` pushes its own
    /// around the table build, and each pool cell re-installs the
    /// submitting experiment's tally around its body.
    static TALLY: std::cell::RefCell<Vec<Arc<SimTally>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The tally simulator runs on this thread currently attribute to.
pub(crate) fn current_tally() -> Option<Arc<SimTally>> {
    TALLY.with(|t| t.borrow().last().cloned())
}

/// Installs `tally` (when present) as this thread's current tally until
/// the returned guard drops. Pool cells use this to carry the submitting
/// experiment's tally across threads.
pub(crate) fn install_tally(tally: Option<Arc<SimTally>>) -> TallyGuard {
    let installed = tally.is_some();
    if let Some(tally) = tally {
        TALLY.with(|t| t.borrow_mut().push(tally));
    }
    TallyGuard { installed }
}

pub(crate) struct TallyGuard {
    installed: bool,
}

impl Drop for TallyGuard {
    fn drop(&mut self) {
        if self.installed {
            TALLY.with(|t| {
                t.borrow_mut().pop();
            });
        }
    }
}

/// Records one completed grid-simulator run against the current tally.
pub(crate) fn record_sim(run: &RunResult) {
    if let Some(tally) = current_tally() {
        tally.runs.fetch_add(1, Ordering::Relaxed);
        tally
            .jobs
            .fetch_add(run.records.len() as u64, Ordering::Relaxed);
        tally.events.fetch_add(run.events, Ordering::Relaxed);
    }
}

/// The `RBR_FIXED_WALL_TIME` override: when set (e.g. by the CI
/// determinism gate or the equivalence tests), every report stamps this
/// value as its wall time, making reports byte-comparable across runs.
fn fixed_wall_time() -> Option<f64> {
    static FIXED: OnceLock<Option<f64>> = OnceLock::new();
    *FIXED.get_or_init(|| {
        std::env::var("RBR_FIXED_WALL_TIME")
            .ok()
            .and_then(|v| v.trim().parse::<f64>().ok())
    })
}

/// One registered experiment: a figure, table, or ablation that maps
/// `(scale, seed)` to a [`Report`].
///
/// Implementations provide metadata and [`Experiment::tables`]; the
/// provided [`Experiment::run`] wraps the table build with wall-time
/// measurement and simulation accounting and stamps the result with
/// [`RunMeta`]. Registering the implementation in
/// [`Registry::standard`](super::Registry::standard) is all it takes to
/// appear in `rbr list`, `rbr run`, the benches, and the framework smoke
/// test.
pub trait Experiment: Send + Sync {
    /// Canonical registry name (`"fig1"`, `"table3"`, `"queue-growth"`).
    fn name(&self) -> &'static str;

    /// Alternative names this entry answers to (`fig1` owns `fig2`
    /// because one sweep produces both figures).
    fn aliases(&self) -> &'static [&'static str] {
        &[]
    }

    /// One-line description shown by `rbr list`.
    fn description(&self) -> &'static str;

    /// Paper section (or "beyond the paper" tag) the experiment belongs
    /// to.
    fn paper_section(&self) -> &'static str;

    /// Master seed used when the caller does not supply one.
    fn default_seed(&self) -> u64;

    /// Replications per configuration at the given scale, for the
    /// provenance stamp.
    fn replications(&self, scale: Scale) -> usize {
        scale.reps()
    }

    /// Builds the experiment's output tables at the given scale and
    /// master seed. A `Some(reps)` overrides the scale's replication
    /// count for every configuration the experiment sweeps (the CLI's
    /// `--reps` flag).
    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable>;

    /// Runs the experiment and stamps the result with provenance.
    fn run(&self, scale: Scale, seed: u64) -> Report {
        self.run_with(scale, seed, None)
    }

    /// [`Experiment::run`] with an explicit replication override, which
    /// is stamped into [`RunMeta::replications`] in place of the scale
    /// preset.
    fn run_with(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Report {
        let tally = Arc::new(SimTally::default());
        let start = Instant::now();
        let tables = {
            let _guard = install_tally(Some(Arc::clone(&tally)));
            self.tables(scale, seed, reps)
        };
        let wall_time_secs = fixed_wall_time().unwrap_or_else(|| start.elapsed().as_secs_f64());
        let (runs, jobs, events) = tally.counters();
        Report {
            meta: RunMeta {
                experiment: self.name().to_string(),
                paper_section: self.paper_section().to_string(),
                scale: scale.name().to_string(),
                seed,
                replications: reps.unwrap_or_else(|| self.replications(scale)),
                sim_runs: runs,
                jobs,
                events,
                wall_time_secs,
            },
            tables,
        }
    }
}

/// A paired baseline/treatment pair of replication series, reduced with
/// the paper's relative metrics. Replication `k` of both series ran on
/// identical seeds, so per-replication ratios are meaningful.
///
/// When several treatments share one baseline (every scheme against
/// `Scheme::None` at the same N), run the baseline once and clone its
/// metrics into each `Comparison` — `RunMetrics` is `Copy`, so that is a
/// flat memcpy.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Per-replication metrics of the unmodified platform.
    pub baseline: Vec<RunMetrics>,
    /// Per-replication metrics of the platform under the treatment.
    pub treatment: Vec<RunMetrics>,
}

impl Comparison {
    /// Pairs two already-computed replication series.
    pub fn new(baseline: Vec<RunMetrics>, treatment: Vec<RunMetrics>) -> Self {
        assert_eq!(
            baseline.len(),
            treatment.len(),
            "paired series must have equal length"
        );
        Comparison {
            baseline,
            treatment,
        }
    }

    fn rel<F: Fn(&RunMetrics) -> f64>(&self, metric: F) -> f64 {
        let t: Vec<f64> = self.treatment.iter().map(&metric).collect();
        let b: Vec<f64> = self.baseline.iter().map(&metric).collect();
        mean_ratio(&t, &b)
    }

    /// Mean relative average stretch (the paper's headline metric).
    pub fn rel_stretch(&self) -> f64 {
        self.rel(|m| m.stretch_mean)
    }

    /// Mean relative CV of stretches (the fairness metric).
    pub fn rel_cv(&self) -> f64 {
        self.rel(|m| m.stretch_cv)
    }

    /// Mean relative maximum stretch.
    pub fn rel_max_stretch(&self) -> f64 {
        self.rel(|m| m.stretch_max)
    }

    /// Mean relative average turnaround.
    pub fn rel_turnaround(&self) -> f64 {
        self.rel(|m| m.turnaround_mean)
    }

    /// Mean baseline average stretch (the paper quotes it for context).
    pub fn baseline_stretch(&self) -> f64 {
        self.baseline.iter().map(|m| m.stretch_mean).sum::<f64>() / self.baseline.len() as f64
    }

    /// The per-replication stretch-ratio series, for win-fraction and
    /// worst-case statistics.
    pub fn stretch_series(&self) -> RelativeSeries {
        RelativeSeries::from_ratios(
            self.treatment
                .iter()
                .zip(&self.baseline)
                .map(|(t, b)| t.stretch_mean / b.stretch_mean)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    struct Dummy;

    impl Experiment for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn description(&self) -> &'static str {
            "a framework test double"
        }
        fn paper_section(&self) -> &'static str {
            "§0"
        }
        fn default_seed(&self) -> u64 {
            1
        }
        fn tables(&self, _scale: Scale, seed: u64, _reps: Option<usize>) -> Vec<TypedTable> {
            let mut t = TypedTable::new("dummy", vec!["seed"]);
            t.push(vec![Cell::int(seed as i64)]);
            vec![t]
        }
    }

    #[test]
    fn provided_run_stamps_provenance() {
        let report = Dummy.run(Scale::Smoke, 77);
        assert_eq!(report.meta.experiment, "dummy");
        assert_eq!(report.meta.scale, "smoke");
        assert_eq!(report.meta.seed, 77);
        assert_eq!(report.meta.replications, Scale::Smoke.reps());
        assert!(report.meta.wall_time_secs >= 0.0);
        assert_eq!(report.tables[0].rows[0][0], Cell::Int(77));
    }

    #[test]
    fn reps_override_is_stamped_into_meta() {
        let report = Dummy.run_with(Scale::Smoke, 77, Some(9));
        assert_eq!(report.meta.replications, 9);
        let default = Dummy.run_with(Scale::Smoke, 77, None);
        assert_eq!(default.meta.replications, Scale::Smoke.reps());
    }

    #[test]
    fn comparison_reduces_paired_metrics() {
        let m = |stretch: f64| RunMetrics {
            stretch_mean: stretch,
            stretch_cv: 0.5,
            stretch_max: 2.0 * stretch,
            turnaround_mean: 100.0 * stretch,
            stretch_redundant: f64::NAN,
            stretch_non_redundant: stretch,
            max_queue_avg: 10.0,
            wasted_node_secs: 0.0,
            waste_fraction: 0.0,
            zombie_starts: 0.0,
            useful_node_secs: 1_000.0 * stretch,
            utilization: 0.5,
        };
        let cmp = Comparison::new(vec![m(2.0), m(4.0)], vec![m(1.0), m(2.0)]);
        assert!((cmp.rel_stretch() - 0.5).abs() < 1e-12);
        assert!((cmp.rel_cv() - 1.0).abs() < 1e-12);
        assert!((cmp.baseline_stretch() - 3.0).abs() < 1e-12);
        let series = cmp.stretch_series();
        assert_eq!(series.ratios().len(), 2);
        assert!((series.win_fraction() - 1.0).abs() < 1e-12);
    }
}
