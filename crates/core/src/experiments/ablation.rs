//! Ablations beyond the paper.
//!
//! Four sensitivity studies that the reproduction surfaced as important
//! (discussed in EXPERIMENTS.md):
//!
//! * [`load_sweep`] — the offered-load regime. Whether redundancy helps
//!   or harms average stretch flips sharply around ρ ≈ 1.1; the paper's
//!   reported band (10–25 % improvement) corresponds to the calibrated
//!   operating point.
//! * [`cbf_cycle_sweep`] — the CBF scheduling-cycle approximation: the
//!   batched-compression scheduler versus textbook
//!   compress-on-every-event.
//! * [`selection_sweep`] — user-blind uniform selection versus the
//!   metascheduler-style least-loaded selection of the related work.
//! * [`inflation_sweep`] — the §3.1.2 sensitivity check: inflating
//!   remote requests by 10 % / 50 % for late binding of input data
//!   ("interestingly observed no difference in our results").

use rbr_grid::{GridConfig, Scheme, SelectionPolicy};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{mean_ratio, run_reps, Experiment, RunMetrics};

/// A generic (label, relative stretch, relative CV) ablation row.
#[derive(Clone, Debug)]
pub struct Row {
    /// What was varied.
    pub label: String,
    /// Relative average stretch vs the matching NONE baseline.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs the matching NONE baseline.
    pub rel_cv: f64,
    /// Absolute baseline stretch, for context.
    pub baseline_stretch: f64,
}

/// The backfill-mechanism sweep as a typed table (columns differ from
/// the generic ablation rows).
pub fn backfills_table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Backfill mechanism — backfilled starts per job by scheme",
        vec!["scheme", "backfills/job", "avg stretch"],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.label.clone()),
            Cell::float(r.rel_stretch, 2),
            Cell::float(r.rel_cv, 1),
        ]);
    }
    t
}

/// Renders the backfill-mechanism sweep.
pub fn render_backfills(rows: &[Row]) -> String {
    backfills_table(rows).to_text()
}

/// Ablation rows as a typed table; `label` heads the first column.
pub fn table(name: &str, label: &str, rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(name, vec![label, "rel stretch", "rel CV", "base stretch"]);
    for r in rows {
        t.push(vec![
            Cell::text(r.label.clone()),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
            Cell::float(r.baseline_stretch, 1),
        ]);
    }
    t
}

/// Renders ablation rows.
pub fn render(title: &str, rows: &[Row]) -> String {
    table(title, title, rows).to_text()
}

fn relative_rows(
    label: String,
    base: &GridConfig,
    treat: &GridConfig,
    reps: usize,
    seed: SeedSequence,
) -> Row {
    let b = run_reps(base, reps, seed, RunMetrics::from_run);
    let t = run_reps(treat, reps, seed, RunMetrics::from_run);
    let bs: Vec<f64> = b.iter().map(|m| m.stretch_mean).collect();
    Row {
        label,
        rel_stretch: mean_ratio(&t.iter().map(|m| m.stretch_mean).collect::<Vec<_>>(), &bs),
        rel_cv: mean_ratio(
            &t.iter().map(|m| m.stretch_cv).collect::<Vec<_>>(),
            &b.iter().map(|m| m.stretch_cv).collect::<Vec<_>>(),
        ),
        baseline_stretch: bs.iter().sum::<f64>() / bs.len() as f64,
    }
}

/// Sweeps the workload's `runtime_scale` (offered load ρ scales with it)
/// and reports the relative stretch of `scheme` at each point.
pub fn load_sweep(
    scale: Scale,
    scheme: Scheme,
    scales: &[f64],
    seed: u64,
    reps: Option<usize>,
) -> Vec<Row> {
    let seed = SeedSequence::new(seed);
    scales
        .iter()
        .enumerate()
        .map(|(i, &rts)| {
            let mut base = GridConfig::homogeneous(10, Scheme::None);
            base.window = scale.window();
            for c in &mut base.clusters {
                c.workload.runtime_scale = rts;
            }
            let mut treat = base.clone();
            treat.scheme = scheme;
            relative_rows(
                format!("runtime_scale={rts:.2}"),
                &base,
                &treat,
                reps.unwrap_or(scale.reps()),
                seed.child(i as u64),
            )
        })
        .collect()
}

/// Compares CBF scheduling-cycle lengths against the textbook
/// (zero-cycle) scheduler on a small platform.
pub fn cbf_cycle_sweep(
    scale: Scale,
    cycles_secs: &[f64],
    seed: u64,
    reps: Option<usize>,
) -> Vec<Row> {
    let seed = SeedSequence::new(seed);
    let mut base = GridConfig::homogeneous(4, Scheme::None);
    base.algorithm = Algorithm::Cbf;
    base.window = scale.window().min(Duration::from_hours(1));
    base.cbf_cycle = Duration::ZERO;
    cycles_secs
        .iter()
        .enumerate()
        .map(|(i, &cycle)| {
            let mut treat = base.clone();
            treat.scheme = Scheme::Half;
            treat.cbf_cycle = Duration::from_secs(cycle);
            relative_rows(
                format!("cycle={cycle:.0}s"),
                &base,
                &treat,
                reps.unwrap_or(scale.cbf_reps()),
                seed.child(i as u64),
            )
        })
        .collect()
}

/// Compares selection policies for a fixed scheme (the metascheduler
/// baseline of Subramani et al. picks the least-loaded clusters).
pub fn selection_sweep(scale: Scale, scheme: Scheme, seed: u64, reps: Option<usize>) -> Vec<Row> {
    let seed = SeedSequence::new(seed);
    let policies: [(&str, SelectionPolicy); 3] = [
        ("uniform", SelectionPolicy::Uniform),
        ("biased(2)", SelectionPolicy::Biased { ratio: 2.0 }),
        ("least-loaded", SelectionPolicy::LeastLoaded),
    ];
    // All policies share one seed so the rows are directly comparable
    // (identical baselines and job streams).
    policies
        .iter()
        .map(|(name, policy)| {
            let mut base = GridConfig::homogeneous(10, Scheme::None);
            base.window = scale.window();
            let mut treat = base.clone();
            treat.scheme = scheme;
            treat.selection = *policy;
            relative_rows(
                name.to_string(),
                &base,
                &treat,
                reps.unwrap_or(scale.reps()),
                seed,
            )
        })
        .collect()
}

/// The backfilling mechanism check: §3.3 attributes the small-N stretch
/// penalty to "a few lost opportunities for backfilling". This sweep
/// counts actual backfilled starts per job under each scheme, making the
/// mechanism observable instead of conjectural.
pub fn backfill_sweep(scale: Scale, n: usize, seed: u64, reps: Option<usize>) -> Vec<Row> {
    use rbr_grid::GridSim;
    let seed = SeedSequence::new(seed);
    let mut out = Vec::new();
    let schemes = [Scheme::None, Scheme::R(2), Scheme::Half, Scheme::All];
    for scheme in schemes {
        let mut cfg = GridConfig::homogeneous(n, scheme);
        cfg.window = scale.window();
        let [per_job, stretch] = super::summarize_cells(reps.unwrap_or(scale.reps()), |rep| {
            let run = GridSim::execute(cfg.clone(), seed.child(rep as u64));
            let per_job = run.backfills as f64 / run.records.len() as f64;
            let stretch = run.stretch(rbr_grid::record::JobClass::All).mean();
            [per_job, stretch]
        });
        out.push(Row {
            label: format!("{scheme}"),
            // Reuse the generic row: "rel stretch" column carries the
            // backfills-per-job figure here, "rel CV" the absolute stretch.
            rel_stretch: per_job.mean(),
            rel_cv: stretch.mean(),
            baseline_stretch: f64::NAN,
        });
    }
    out
}

/// The §3.1.2 remote-request inflation check: +0 %, +10 %, +50 %
/// requested time on remote copies.
pub fn inflation_sweep(scale: Scale, scheme: Scheme, seed: u64, reps: Option<usize>) -> Vec<Row> {
    let seed = SeedSequence::new(seed);
    // One shared seed: the three rows differ only in the inflation factor.
    [0.0, 0.1, 0.5]
        .iter()
        .map(|&inflation| {
            let mut base = GridConfig::homogeneous(10, Scheme::None);
            base.window = scale.window();
            let mut treat = base.clone();
            treat.scheme = scheme;
            treat.remote_inflation = inflation;
            relative_rows(
                format!("+{:.0}%", inflation * 100.0),
                &base,
                &treat,
                reps.unwrap_or(scale.reps()),
                seed,
            )
        })
        .collect()
}

/// The ablations' registry entry: the four sensitivity studies the old
/// CLI bundled under `rbr run ablations`, one table each. The sweeps use
/// `seed`, `seed+1`, `seed+2`, `seed+3` so the default seed of 52
/// reproduces the historical per-sweep seeds 52–55.
pub struct Ablations;

impl Experiment for Ablations {
    fn name(&self) -> &'static str {
        "ablations"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: load regime, CBF cycle, selection policy, and inflation sweeps"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §3"
    }

    fn default_seed(&self) -> u64 {
        52
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        vec![
            table(
                "Ablation — offered-load regime (ALL vs NONE)",
                "load",
                &load_sweep(scale, Scheme::All, &[0.9, 1.0, 1.1, 1.2], seed, reps),
            ),
            table(
                "Ablation — CBF scheduling-cycle length (HALF vs NONE)",
                "cycle",
                &cbf_cycle_sweep(scale, &[0.0, 30.0, 300.0], seed.wrapping_add(1), reps),
            ),
            table(
                "Ablation — target selection policy (R2 vs NONE)",
                "policy",
                &selection_sweep(scale, Scheme::R(2), seed.wrapping_add(2), reps),
            ),
            table(
                "Ablation — remote request inflation (HALF vs NONE)",
                "inflation",
                &inflation_sweep(scale, Scheme::Half, seed.wrapping_add(3), reps),
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sweep_smoke() {
        let rows = load_sweep(Scale::Smoke, Scheme::R(2), &[0.9, 1.1], 52, None);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.rel_stretch.is_finite()));
        assert!(render("load", &rows).contains("runtime_scale"));
    }

    #[test]
    fn cbf_cycle_smoke() {
        let rows = cbf_cycle_sweep(Scale::Smoke, &[0.0, 30.0], 53, None);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.rel_stretch.is_finite() && r.rel_stretch > 0.0);
        }
    }

    #[test]
    fn selection_smoke() {
        let rows = selection_sweep(Scale::Smoke, Scheme::R(2), 54, None);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2].label, "least-loaded");
    }

    #[test]
    fn backfill_sweep_smoke() {
        let rows = backfill_sweep(Scale::Smoke, 3, 56, None);
        assert_eq!(rows.len(), 4);
        // EASY backfills constantly on a loaded machine.
        assert!(
            rows[0].rel_stretch > 0.0,
            "NONE backfills/job {}",
            rows[0].rel_stretch
        );
        assert!(render_backfills(&rows).contains("backfills/job"));
    }

    #[test]
    fn inflation_smoke() {
        let rows = inflation_sweep(Scale::Smoke, Scheme::R(2), 55, None);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.rel_stretch.is_finite()));
    }
}
