//! Registry-level campaigns: a set of experiments run as cells on the
//! `rbr-exec` engine, with optional journalling and checkpoint/resume.
//!
//! One campaign cell is one experiment at a fixed `(scale, seed, reps)`,
//! rendered in the campaign's output format. Cells are pure functions of
//! their index — every experiment derives its randomness hierarchically
//! from its master seed — so the engine may run them on any thread in
//! any order, journal each completion, and replay finished cells on
//! resume, while the merged output stays byte-identical to a serial,
//! uninterrupted `rbr run all`.

use rbr_exec::campaign::{CampaignOptions, CampaignResult, CampaignStats, CellSpec, Progress};

use super::Experiment;
use crate::report::Format;
use crate::scale::Scale;

/// What to run: which experiments, at which fidelity, rendered how.
pub struct Plan<'a> {
    /// The experiments, in campaign (cell) order.
    pub experiments: Vec<&'a dyn Experiment>,
    /// Fidelity preset for every cell.
    pub scale: Scale,
    /// Master-seed override; `None` uses each experiment's default seed.
    pub seed: Option<u64>,
    /// Replication override (the CLI's `--reps`).
    pub reps: Option<usize>,
    /// Output format each cell's payload is rendered in.
    pub format: Format,
}

impl Plan<'_> {
    /// The campaign's identity string, stamped into the journal header.
    /// Resuming under a different manifest is refused: a journal records
    /// payloads for exactly one `(scale, seed, reps, format)` point.
    pub fn manifest(&self) -> String {
        format!(
            "scale={} seed={} reps={} format={}",
            self.scale.name(),
            match self.seed {
                Some(s) => s.to_string(),
                None => "default".to_string(),
            },
            match self.reps {
                Some(r) => r.to_string(),
                None => "default".to_string(),
            },
            self.format.extension(),
        )
    }

    /// The campaign's cell list: one cell per experiment, keyed by its
    /// registry name.
    pub fn cells(&self) -> Vec<CellSpec> {
        self.experiments
            .iter()
            .map(|e| CellSpec::new(e.name()))
            .collect()
    }
}

/// Journalling/resume knobs, a thin re-badging of the engine's options
/// (the manifest comes from the [`Plan`]).
#[derive(Clone, Debug, Default)]
pub struct RunOptions {
    /// Campaign directory for the journal; `None` disables journalling.
    pub dir: Option<std::path::PathBuf>,
    /// Replay completed cells from the directory's journal.
    pub resume: bool,
    /// Stop after this many freshly-executed cells (test hook).
    pub cell_budget: Option<usize>,
    /// Shared cross-campaign cell-cache directory (`--cache DIR`).
    pub cache: Option<std::path::PathBuf>,
}

fn engine_options(plan: &Plan<'_>, options: &RunOptions) -> CampaignOptions {
    CampaignOptions {
        dir: options.dir.clone(),
        resume: options.resume,
        cell_budget: options.cell_budget,
        manifest: plan.manifest(),
        cache: options.cache.clone(),
        segment_records: None,
    }
}

fn execute_cell(plan: &Plan<'_>, i: usize) -> String {
    let exp = plan.experiments[i];
    let seed = plan.seed.unwrap_or_else(|| exp.default_seed());
    let report = exp.run_with(plan.scale, seed, plan.reps);
    let mut rendered = report.render(plan.format);
    if !rendered.ends_with('\n') {
        rendered.push('\n');
    }
    rendered
}

/// Runs the plan on the current pool and materializes every outcome.
/// Each outcome's `payload` is the experiment's report rendered in
/// `plan.format`, newline-terminated — exactly the bytes `rbr run`
/// would print or write for that experiment.
pub fn run(
    plan: &Plan<'_>,
    options: &RunOptions,
    progress: &(dyn Fn(&Progress) + Sync),
) -> Result<CampaignResult, String> {
    rbr_exec::campaign::run(
        &plan.cells(),
        &engine_options(plan, options),
        |i, _| execute_cell(plan, i),
        progress,
    )
}

/// Streams the plan's cells to `sink` in cell order as they land,
/// without materializing the result set — the O(accumulators) path for
/// wide campaigns. See [`rbr_exec::campaign::run_streaming`].
pub fn run_streaming<S: rbr_exec::campaign::CellSink + Send>(
    plan: &Plan<'_>,
    options: &RunOptions,
    sink: S,
    progress: &(dyn Fn(&Progress) + Sync),
) -> Result<CampaignStats, String> {
    rbr_exec::campaign::run_streaming(
        &plan.cells(),
        &engine_options(plan, options),
        |i, _| execute_cell(plan, i),
        sink,
        progress,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::Registry;

    fn plan(registry: &Registry) -> Plan<'_> {
        Plan {
            experiments: registry.iter().take(3).collect(),
            scale: Scale::Smoke,
            seed: Some(11),
            reps: Some(1),
            format: Format::Json,
        }
    }

    #[test]
    fn manifest_pins_every_campaign_parameter() {
        let registry = Registry::standard();
        let p = plan(&registry);
        assert_eq!(p.manifest(), "scale=smoke seed=11 reps=1 format=json");
        let defaults = Plan {
            seed: None,
            reps: None,
            ..plan(&registry)
        };
        assert_eq!(
            defaults.manifest(),
            "scale=smoke seed=default reps=default format=json"
        );
    }

    #[test]
    fn cells_follow_registry_order() {
        let registry = Registry::standard();
        let p = plan(&registry);
        let keys: Vec<String> = p.cells().into_iter().map(|c| c.key).collect();
        let expect: Vec<String> = registry
            .iter()
            .take(3)
            .map(|e| e.name().to_string())
            .collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn payloads_match_direct_runs() {
        use crate::report::Report;
        let registry = Registry::standard();
        let p = plan(&registry);
        let result = run(&p, &RunOptions::default(), &|_| {}).unwrap();
        assert!(result.complete);
        for (outcome, exp) in result.outcomes.iter().zip(&p.experiments) {
            assert_eq!(outcome.key, exp.name());
            // Wall time legitimately differs between two runs (the
            // byte-level check lives in the equivalence integration test
            // under RBR_FIXED_WALL_TIME); everything else must match.
            let mut campaign = Report::from_json(&outcome.payload).unwrap();
            let mut direct = exp.run_with(Scale::Smoke, 11, Some(1));
            campaign.meta.wall_time_secs = 0.0;
            direct.meta.wall_time_secs = 0.0;
            assert_eq!(
                campaign.render_json(),
                direct.render_json(),
                "{} diverged",
                exp.name()
            );
        }
    }
}
