//! The paper's trace cross-check (§3.1.1): "We conducted some simulations
//! using real-world traces made available in the Parallel Workloads
//! Archive but, expectedly, did not observe significantly different
//! results."
//!
//! This experiment replays an SWF trace — a user-supplied one, or a
//! synthetic trace exported from the workload model — split round-robin
//! into N per-cluster streams, and reruns the headline comparison
//! (relative average stretch and CV of the ALL scheme vs NONE) on it.

use rbr_grid::{GridConfig, GridSim, Scheme};
use rbr_simcore::{Duration, SeedSequence, SimTime};
use rbr_workload::{EstimateModel, JobSpec, LublinConfig, LublinModel, SwfTrace};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::framework::record_sim;
use super::{Experiment, RunMetrics};

/// Parameters of the trace cross-check.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters the trace is split across.
    pub n: usize,
    /// Scheme to compare against NONE.
    pub scheme: Scheme,
    /// SWF text to replay; `None` generates a synthetic trace from the
    /// calibrated model (demonstrating the full SWF round trip).
    pub swf: Option<String>,
    /// Window used when generating the synthetic trace.
    pub window: Duration,
    /// Replications (the split/seed varies; the trace itself is fixed).
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Default protocol at the given scale: synthetic trace, N = 10, ALL.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            scheme: Scheme::All,
            swf: None,
            window: scale.window(),
            reps: scale.reps().min(4),
            seed: 59,
        }
    }

    /// Materializes the trace: parse the provided SWF or synthesize one.
    fn trace(&self) -> SwfTrace {
        match &self.swf {
            Some(text) => SwfTrace::parse(text).expect("invalid SWF trace"),
            None => {
                let model = LublinModel::new(LublinConfig::paper_2006());
                let mut rng = SeedSequence::new(self.seed).child(999).rng();
                // One long stream, later split N ways; generate N× the
                // window so each split stream spans the full window.
                let jobs = model.generate(
                    &mut rng,
                    Duration::from_secs(self.window.as_secs() * self.n as f64),
                    &EstimateModel::paper_real(),
                );
                SwfTrace::from_jobs(&jobs, vec!["synthetic cross-check trace".to_string()])
            }
        }
    }
}

/// The cross-check outcome.
#[derive(Clone, Debug)]
pub struct Output {
    /// Jobs replayed per replication.
    pub jobs: usize,
    /// Mean relative average stretch (scheme vs NONE) across replications.
    pub rel_stretch: f64,
    /// Mean relative CV of stretches.
    pub rel_cv: f64,
}

/// Splits a trace's jobs round-robin into `n` streams, compressing each
/// stream's arrivals by `n` so every cluster sees the original arrival
/// *rate* (the standard methodology for deriving multi-site workloads
/// from a single-site log).
fn split(jobs: &[JobSpec], n: usize) -> Vec<(JobSpec, usize)> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| {
            let home = i % n;
            let scaled = JobSpec::new(
                SimTime::from_secs(j.arrival.as_secs() / n as f64),
                j.nodes,
                j.runtime,
                j.estimate,
            );
            (scaled, home)
        })
        .collect()
}

/// Runs the cross-check.
pub fn run(config: &Config) -> Output {
    let trace = config.trace();
    let jobs = trace.to_jobs(128);
    let streams = split(&jobs, config.n);

    // Each replication (a paired base/treatment replay) is one campaign
    // cell folded into streaming summaries in replication order (the
    // helper carries the sim tally with the cells, so accounting
    // attributes to this experiment on any worker thread).
    let [rel_stretch, rel_cv] = super::summarize_cells(config.reps, |rep| {
        let seed = SeedSequence::new(config.seed).child(rep as u64);
        let base_cfg = GridConfig::homogeneous(config.n, Scheme::None);
        let mut treat_cfg = base_cfg.clone();
        treat_cfg.scheme = config.scheme;
        let base_run = GridSim::with_jobs(base_cfg, streams.clone(), seed).run();
        record_sim(&base_run);
        let base = RunMetrics::from_run(&base_run);
        let treat_run = GridSim::with_jobs(treat_cfg, streams.clone(), seed).run();
        record_sim(&treat_run);
        let treat = RunMetrics::from_run(&treat_run);
        [
            treat.stretch_mean / base.stretch_mean,
            treat.stretch_cv / base.stretch_cv,
        ]
    });
    Output {
        jobs: streams.len(),
        rel_stretch: rel_stretch.mean(),
        rel_cv: rel_cv.mean(),
    }
}

/// The outcome as a typed table.
pub fn table(out: &Output) -> TypedTable {
    let mut t = TypedTable::new(
        "§3.1.1 — SWF trace replay cross-check",
        vec!["metric", "value"],
    );
    t.push(vec![
        Cell::text("jobs replayed"),
        Cell::int(out.jobs as i64),
    ]);
    t.push(vec![
        Cell::text("rel stretch (trace)"),
        Cell::float(out.rel_stretch, 3),
    ]);
    t.push(vec![
        Cell::text("rel CV (trace)"),
        Cell::float(out.rel_cv, 3),
    ]);
    t
}

/// Renders the outcome.
pub fn render(out: &Output) -> String {
    table(out).to_text()
}

/// The trace cross-check's registry entry.
pub struct TraceCheck;

impl Experiment for TraceCheck {
    fn name(&self) -> &'static str {
        "trace-check"
    }

    fn description(&self) -> &'static str {
        "§3.1.1 cross-check: replay an SWF trace split across clusters"
    }

    fn paper_section(&self) -> &'static str {
        "§3.1.1"
    }

    fn default_seed(&self) -> u64 {
        59
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_preserves_rate_and_jobs() {
        let jobs: Vec<JobSpec> = (0..10)
            .map(|i| {
                JobSpec::new(
                    SimTime::from_secs(i as f64 * 10.0),
                    1,
                    Duration::from_secs(5.0),
                    Duration::from_secs(5.0),
                )
            })
            .collect();
        let streams = split(&jobs, 2);
        assert_eq!(streams.len(), 10);
        // Round-robin homes.
        assert_eq!(streams[0].1, 0);
        assert_eq!(streams[1].1, 1);
        // Arrivals compressed by N: job 2 originally at 20 s → 10 s.
        assert_eq!(streams[2].0.arrival, SimTime::from_secs(10.0));
    }

    #[test]
    fn smoke_cross_check() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.reps = 1;
        cfg.window = Duration::from_secs(900.0);
        let out = run(&cfg);
        assert!(out.jobs > 100);
        assert!(out.rel_stretch.is_finite() && out.rel_stretch > 0.0);
        assert!(render(&out).contains("trace"));
    }

    #[test]
    fn explicit_swf_is_used() {
        let swf = "\
1 0 0 60 2 -1 -1 2 120 -1 1 1 1 -1 1 -1 -1 -1
2 5 0 60 2 -1 -1 2 120 -1 1 1 1 -1 1 -1 -1 -1
3 9 0 60 2 -1 -1 2 120 -1 1 1 1 -1 1 -1 -1 -1
4 12 0 60 2 -1 -1 2 120 -1 1 1 1 -1 1 -1 -1 -1
";
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 2;
        cfg.reps = 1;
        cfg.swf = Some(swf.to_string());
        let out = run(&cfg);
        assert_eq!(out.jobs, 4);
    }
}
