//! Table 2: non-uniformly distributed redundant requests.
//!
//! Remote clusters are picked with a geometric bias — cluster C₁ twice
//! as likely as C₂, which is twice as likely as C₃, and so on ("heavily
//! biased: half of the clusters each picked with only probability
//! 6.25 %"). Paper values, N = 10, relative to NONE:
//!
//! |            | R2   | R3   | R4   | HALF |
//! |------------|------|------|------|------|
//! | rel stretch| 0.94 | 0.95 | 0.88 | 0.89 |
//! | rel CV     | 0.94 | 0.92 | 0.88 | 0.86 |
//!
//! Headline: the benefit survives a badly skewed account distribution.

use rbr_grid::{GridConfig, Scheme, SelectionPolicy};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the Table 2 experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Schemes to evaluate (paper: R2, R3, R4, HALF).
    pub schemes: Vec<Scheme>,
    /// Bias ratio between successive clusters (paper: 2).
    pub bias_ratio: f64,
    /// Replications per scheme.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            schemes: vec![Scheme::R(2), Scheme::R(3), Scheme::R(4), Scheme::Half],
            bias_ratio: 2.0,
            reps: scale.reps(),
            window: scale.window(),
            seed: 44,
        }
    }
}

/// One column of Table 2.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE.
    pub rel_cv: f64,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Vec<Row> {
    let seed = SeedSequence::new(config.seed);
    let mut base = GridConfig::homogeneous(config.n, Scheme::None);
    base.window = config.window;
    let baseline = run_reps(&base, config.reps, seed, RunMetrics::from_run);

    config
        .schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = GridConfig::homogeneous(config.n, scheme);
            cfg.selection = SelectionPolicy::Biased {
                ratio: config.bias_ratio,
            };
            cfg.window = config.window;
            let cmp = Comparison::new(
                baseline.clone(),
                run_reps(&cfg, config.reps, seed, RunMetrics::from_run),
            );
            Row {
                scheme,
                rel_stretch: cmp.rel_stretch(),
                rel_cv: cmp.rel_cv(),
            }
        })
        .collect()
}

/// Table 2 as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Table 2 — geometrically biased target selection vs NONE",
        vec!["scheme", "rel stretch", "rel CV"],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.scheme.to_string()),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
        ]);
    }
    t
}

/// Renders the rows in the paper's Table 2 layout.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Table 2's registry entry.
pub struct Table2;

impl Experiment for Table2 {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn description(&self) -> &'static str {
        "Table 2: redundant requests under a heavily biased account distribution"
    }

    fn paper_section(&self) -> &'static str {
        "§3.4"
    }

    fn default_seed(&self) -> u64 {
        44
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 4;
        cfg.schemes = vec![Scheme::R(2), Scheme::Half];
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.rel_stretch.is_finite());
            assert!(r.rel_cv.is_finite());
        }
        assert!(render(&rows).contains("R2"));
    }

    #[test]
    fn paper_config_uses_bias_two() {
        let cfg = Config::paper();
        assert_eq!(cfg.bias_ratio, 2.0);
        assert_eq!(cfg.schemes.len(), 4);
    }
}
