//! Table 2: non-uniformly distributed redundant requests.
//!
//! Remote clusters are picked with a geometric bias — cluster C₁ twice
//! as likely as C₂, which is twice as likely as C₃, and so on ("heavily
//! biased: half of the clusters each picked with only probability
//! 6.25 %"). Paper values, N = 10, relative to NONE:
//!
//! |            | R2   | R3   | R4   | HALF |
//! |------------|------|------|------|------|
//! | rel stretch| 0.94 | 0.95 | 0.88 | 0.89 |
//! | rel CV     | 0.94 | 0.92 | 0.88 | 0.86 |
//!
//! Headline: the benefit survives a badly skewed account distribution.

use rbr_grid::{GridConfig, Scheme, SelectionPolicy};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::Table;
use crate::scale::Scale;

use super::{mean_ratio, run_reps, RunMetrics};

/// Parameters of the Table 2 experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Schemes to evaluate (paper: R2, R3, R4, HALF).
    pub schemes: Vec<Scheme>,
    /// Bias ratio between successive clusters (paper: 2).
    pub bias_ratio: f64,
    /// Replications per scheme.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            schemes: vec![Scheme::R(2), Scheme::R(3), Scheme::R(4), Scheme::Half],
            bias_ratio: 2.0,
            reps: scale.reps(),
            window: scale.window(),
            seed: 44,
        }
    }
}

/// One column of Table 2.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE.
    pub rel_cv: f64,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Vec<Row> {
    let seed = SeedSequence::new(config.seed);
    let mut base = GridConfig::homogeneous(config.n, Scheme::None);
    base.window = config.window;
    let b = run_reps(&base, config.reps, seed, RunMetrics::from_run);
    let bs: Vec<f64> = b.iter().map(|m| m.stretch_mean).collect();
    let bcv: Vec<f64> = b.iter().map(|m| m.stretch_cv).collect();

    config
        .schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = GridConfig::homogeneous(config.n, scheme);
            cfg.selection = SelectionPolicy::Biased {
                ratio: config.bias_ratio,
            };
            cfg.window = config.window;
            let t = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
            Row {
                scheme,
                rel_stretch: mean_ratio(
                    &t.iter().map(|m| m.stretch_mean).collect::<Vec<_>>(),
                    &bs,
                ),
                rel_cv: mean_ratio(
                    &t.iter().map(|m| m.stretch_cv).collect::<Vec<_>>(),
                    &bcv,
                ),
            }
        })
        .collect()
}

/// Renders the rows in the paper's Table 2 layout.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec!["scheme", "rel stretch", "rel CV"]);
    for r in rows {
        t.push(vec![
            r.scheme.to_string(),
            format!("{:.3}", r.rel_stretch),
            format!("{:.3}", r.rel_cv),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 4;
        cfg.schemes = vec![Scheme::R(2), Scheme::Half];
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.rel_stretch.is_finite());
            assert!(r.rel_cv.is_finite());
        }
        assert!(render(&rows).contains("R2"));
    }

    #[test]
    fn paper_config_uses_bias_two() {
        let cfg = Config::paper();
        assert_eq!(cfg.bias_ratio, 2.0);
        assert_eq!(cfg.schemes.len(), 4);
    }
}
