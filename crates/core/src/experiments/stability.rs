//! Beyond the paper: the stability frontier of redundancy-d.
//!
//! The post-2006 literature (Anton/Ayesta/Jonckheere/Verloop's survey,
//! Gardner et al., Shah/Lee/Ramchandran) turned the paper's qualitative
//! "redundancy is harmful" into a phase diagram: dispatch `d` copies of
//! each job to `d` of `K` homogeneous FCFS servers, cancel the losers at
//! the first *completion*, and the stability region — the set of offered
//! loads λ for which queues stay bounded — depends on how the copies'
//! service times relate. With i.i.d. copies the region is the full
//! λ < Kμ (racing hedges: the winner serves the minimum draw); with
//! *identical* copies the losers burn pure duplicate work and the region
//! shrinks below the no-redundancy line.
//!
//! This experiment locates the empirical threshold λ* per scheme: for
//! each (d, cancel-mode, copy-model) cell it bisects the normalized
//! offered load, classifying each probe load as unstable when the
//! least-squares slope of windowed queue-backlog samples
//! ([`rbr_stats::trend`]) exceeds a small fraction of the service
//! capacity, averaged over paired replications. The headline table is
//! the phase diagram — λ* per scheme — reproducing the survey's ordering
//! λ*_identical < λ*_single ≤ λ*_iid for d > 1; a second table reports
//! the raw slope grid the verdicts are built from.
//!
//! Replications are campaign cells on the `rbr-exec` pool, so the sweep
//! parallelizes and stays bit-identical at any `--jobs` count; every
//! cell reuses the same seed children (the paired design), and the
//! interarrival sampler inverts the same uniforms at every probe load,
//! so the bisection walks one frozen random world per replication.

use rbr_grid::redundancy::{self, CopyModel, RedundancyConfig};
use rbr_grid::{CancelMode, RunResult};
use rbr_simcore::{Duration, SeedSequence, SimTime};
use rbr_stats::linear_slope;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{framework, summarize_cells, Experiment};

/// One scheme of the phase diagram.
#[derive(Clone, Debug)]
pub struct SchemeSpec {
    /// Display label.
    pub label: String,
    /// Copies per job.
    pub d: usize,
    /// When losers are cancelled.
    pub cancel: CancelMode,
    /// How the copies' service times relate.
    pub copies: CopyModel,
    /// Use the single-submit baseline protocol (forces `d = 1`).
    pub single: bool,
}

/// Parameters of the stability sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Homogeneous servers `K`.
    pub servers: usize,
    /// Copies per job for the redundant schemes.
    pub d: usize,
    /// Shared-component weight of the correlated scheme.
    pub rho: f64,
    /// Mean service time in seconds.
    pub service_mean: f64,
    /// Submission window per probe run.
    pub window: Duration,
    /// Paired replications per probe load.
    pub reps: usize,
    /// Normalized-load bisection bracket (stable, unstable).
    pub bracket: (f64, f64),
    /// Bisection refinements after the bracket check (resolution =
    /// bracket width / 2^refinements).
    pub refinements: usize,
    /// Queue-backlog samples per run for the slope fit.
    pub samples: usize,
    /// Instability threshold: mean backlog slope > `slope_frac` × the
    /// service capacity `K/μ` (jobs per second).
    pub slope_frac: f64,
    /// Normalized loads of the diagnostic slope-grid table.
    pub grid: Vec<f64>,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Full fidelity.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// Reduced fidelity. The window sets how far past the transient the
    /// slope fit sees, so it grows with scale while the cluster stays
    /// small: stability is a per-server property, not a fleet one.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            servers: 3,
            d: 2,
            rho: 0.5,
            service_mean: 10.0,
            window: match scale {
                Scale::Smoke => Duration::from_secs(1_800.0),
                Scale::Quick => Duration::from_hours(2),
                Scale::Paper => Duration::from_hours(6),
            },
            reps: match scale {
                Scale::Smoke => 2,
                Scale::Quick => 4,
                Scale::Paper => 8,
            },
            bracket: (0.25, 1.5),
            refinements: match scale {
                Scale::Smoke => 5,
                Scale::Quick => 6,
                Scale::Paper => 7,
            },
            samples: 32,
            slope_frac: 0.02,
            grid: vec![0.4, 0.7, 0.9, 1.2],
            seed: 90,
        }
    }

    /// The schemes of the phase diagram, baseline first.
    pub fn schemes(&self) -> Vec<SchemeSpec> {
        vec![
            SchemeSpec {
                label: "single".to_string(),
                d: 1,
                cancel: CancelMode::OnStart,
                copies: CopyModel::Iid,
                single: true,
            },
            SchemeSpec {
                label: format!("d={} on-start", self.d),
                d: self.d,
                cancel: CancelMode::OnStart,
                copies: CopyModel::Iid,
                single: false,
            },
            SchemeSpec {
                label: format!("d={} on-completion iid", self.d),
                d: self.d,
                cancel: CancelMode::OnCompletion,
                copies: CopyModel::Iid,
                single: false,
            },
            SchemeSpec {
                label: format!("d={} on-completion corr", self.d),
                d: self.d,
                cancel: CancelMode::OnCompletion,
                copies: CopyModel::Correlated { rho: self.rho },
                single: false,
            },
            SchemeSpec {
                label: format!("d={} on-completion identical", self.d),
                d: self.d,
                cancel: CancelMode::OnCompletion,
                copies: CopyModel::Identical,
                single: false,
            },
        ]
    }

    fn cell_config(&self, spec: &SchemeSpec) -> RedundancyConfig {
        let mut cfg = RedundancyConfig::new(self.servers, spec.d);
        cfg.cancel = spec.cancel;
        cfg.copies = spec.copies;
        cfg.service_mean = self.service_mean;
        cfg.window = self.window;
        cfg
    }
}

/// Backlog slope of one finished run, in jobs per second: a least-squares
/// fit of `pending_at` over evenly spaced sample times covering the last
/// three quarters of the submission window (the first quarter is burnt as
/// transient).
fn backlog_slope(run: &RunResult, window: Duration, samples: usize) -> f64 {
    let w = window.as_secs();
    let t0 = 0.25 * w;
    let pts: Vec<(f64, f64)> = (0..samples)
        .map(|i| {
            let t = t0 + (w - t0) * i as f64 / (samples.max(2) - 1) as f64;
            let at = SimTime::ZERO + Duration::from_secs(t);
            (t, run.pending_at(at) as f64)
        })
        .collect();
    linear_slope(&pts)
}

/// One probe: mean backlog slope (jobs/s), mean waste fraction, and mean
/// end-of-window backlog over paired replications at a normalized load.
fn probe(config: &Config, spec: &SchemeSpec, load: f64) -> (f64, f64, f64) {
    let cell = config.cell_config(spec).with_load(load);
    let seed = SeedSequence::new(config.seed);
    let window = config.window;
    let samples = config.samples;
    let [slope, waste, backlog] = summarize_cells::<3>(config.reps, |rep| {
        let run = if spec.single {
            redundancy::run_single(&cell, seed.child(rep as u64))
        } else {
            redundancy::run(&cell, seed.child(rep as u64))
        };
        framework::record_sim(&run);
        [
            backlog_slope(&run, window, samples),
            run.waste_fraction(),
            run.pending_at(SimTime::ZERO + window) as f64,
        ]
    });
    (slope.mean(), waste.mean(), backlog.mean())
}

/// Whether a probe classifies as unstable.
fn unstable(config: &Config, spec: &SchemeSpec, load: f64) -> bool {
    let capacity = config.servers as f64 / config.service_mean;
    probe(config, spec, load).0 > config.slope_frac * capacity
}

/// The empirical threshold for one scheme: a bracket check, then
/// [`Config::refinements`] bisection steps on the normalized load.
/// Returns `(λ*, bracket_ok)`; when the bracket does not actually
/// straddle the threshold the nearer endpoint is reported with
/// `bracket_ok = false`.
pub fn lambda_star(config: &Config, spec: &SchemeSpec) -> (f64, bool) {
    let (mut lo, mut hi) = config.bracket;
    if unstable(config, spec, lo) {
        return (lo, false);
    }
    if !unstable(config, spec, hi) {
        return (hi, false);
    }
    for _ in 0..config.refinements {
        let mid = 0.5 * (lo + hi);
        if unstable(config, spec, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (0.5 * (lo + hi), true)
}

/// One row of the phase diagram.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// The scheme.
    pub spec: SchemeSpec,
    /// Empirical threshold, as a fraction of the capacity `Kμ`.
    pub lambda_star: f64,
    /// Whether the bracket straddled the threshold.
    pub bracket_ok: bool,
}

/// One row of the diagnostic slope grid.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Scheme label.
    pub label: String,
    /// Normalized load probed.
    pub load: f64,
    /// Mean backlog slope, jobs per hour.
    pub slope_per_hour: f64,
    /// Mean backlog at the end of the submission window.
    pub end_backlog: f64,
    /// Mean wasted-work fraction.
    pub waste_fraction: f64,
}

/// The sweep outcome.
#[derive(Clone, Debug)]
pub struct Output {
    /// λ* per scheme, in [`Config::schemes`] order (baseline first).
    pub cells: Vec<CellOutcome>,
    /// The slope grid behind the verdicts.
    pub grid: Vec<GridRow>,
}

impl Output {
    /// λ* of the scheme whose label contains `needle`.
    pub fn lambda_of(&self, needle: &str) -> f64 {
        self.cells
            .iter()
            .find(|c| c.spec.label.contains(needle))
            .map(|c| c.lambda_star)
            .unwrap_or(f64::NAN)
    }
}

/// Runs the sweep: a bisection per scheme, then the diagnostic grid.
pub fn run(config: &Config) -> Output {
    let cells = config
        .schemes()
        .into_iter()
        .map(|spec| {
            let (lambda_star, bracket_ok) = lambda_star(config, &spec);
            CellOutcome {
                spec,
                lambda_star,
                bracket_ok,
            }
        })
        .collect();
    let mut grid = Vec::new();
    for spec in config.schemes() {
        for &load in &config.grid {
            let (slope, waste, backlog) = probe(config, &spec, load);
            grid.push(GridRow {
                label: spec.label.clone(),
                load,
                slope_per_hour: slope * 3_600.0,
                end_backlog: backlog,
                waste_fraction: waste,
            });
        }
    }
    Output { cells, grid }
}

fn cancel_label(cancel: CancelMode) -> &'static str {
    match cancel {
        CancelMode::OnStart => "on-start",
        CancelMode::OnCompletion => "on-completion",
    }
}

/// The phase diagram: λ* per scheme.
pub fn phase_table(config: &Config, out: &Output) -> TypedTable {
    let mut t = TypedTable::new(
        format!(
            "stability frontier — empirical λ*/Kμ per scheme (K = {}, exp service)",
            config.servers
        ),
        vec!["scheme", "d", "cancel", "copies", "λ*/Kμ", "bracketed"],
    );
    for cell in &out.cells {
        t.push(vec![
            Cell::text(cell.spec.label.as_str()),
            Cell::int(cell.spec.d as i64),
            Cell::text(cancel_label(cell.spec.cancel)),
            Cell::text(cell.spec.copies.label()),
            Cell::float(cell.lambda_star, 3),
            Cell::text(if cell.bracket_ok { "yes" } else { "no" }),
        ]);
    }
    t
}

/// The slope grid behind the phase diagram.
pub fn grid_table(out: &Output) -> TypedTable {
    let mut t = TypedTable::new(
        "queue-backlog slope vs offered load (instability diagnostics)",
        vec![
            "scheme",
            "load/Kμ",
            "slope (jobs/h)",
            "end backlog",
            "waste frac",
        ],
    );
    for row in &out.grid {
        t.push(vec![
            Cell::text(row.label.as_str()),
            Cell::float(row.load, 2),
            Cell::float(row.slope_per_hour, 1),
            Cell::float(row.end_backlog, 1),
            Cell::percent(row.waste_fraction, 1),
        ]);
    }
    t
}

/// Renders both tables.
pub fn render(config: &Config, out: &Output) -> String {
    format!(
        "{}\n{}",
        phase_table(config, out).to_text(),
        grid_table(out).to_text()
    )
}

/// The stability sweep's registry entry.
pub struct Stability;

impl Experiment for Stability {
    fn name(&self) -> &'static str {
        "stability"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: empirical stability thresholds λ* for redundancy-d \
         (cancel-on-start vs -completion × iid/correlated/identical copies)"
    }

    fn paper_section(&self) -> &'static str {
        "beyond"
    }

    fn default_seed(&self) -> u64 {
        90
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        let out = run(&config);
        vec![phase_table(&config, &out), grid_table(&out)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_exec::{with_pool, Pool};

    /// A cheap config: single-refinement bisections on a short window.
    fn tiny() -> Config {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.window = Duration::from_secs(1_200.0);
        cfg.reps = 2;
        cfg.refinements = 4;
        cfg.grid = vec![0.5, 1.2];
        cfg
    }

    #[test]
    fn bisection_finds_the_mm1_threshold() {
        // K FCFS servers fed d = 1 jobs with exponential service: the
        // closed-form stability edge is λ = Kμ, i.e. 1.0 normalized.
        let cfg = tiny();
        let spec = &cfg.schemes()[0];
        let (ls, ok) = lambda_star(&cfg, spec);
        assert!(ok, "bracket must straddle the M/M/K threshold");
        assert!(
            (ls - 1.0).abs() < 0.2,
            "single-submit λ* should be ≈1.0 normalized, got {ls}"
        );
    }

    #[test]
    fn slope_grid_orders_loads() {
        let cfg = tiny();
        let spec = &cfg.schemes()[0];
        let (stable_slope, ..) = probe(&cfg, spec, 0.4);
        let (unstable_slope, _, backlog) = probe(&cfg, spec, 1.4);
        assert!(unstable_slope > stable_slope);
        assert!(
            backlog > 0.0,
            "overload must leave an end-of-window backlog"
        );
    }

    #[test]
    fn headline_identical_shrinks_and_iid_does_not() {
        let cfg = tiny();
        let out = run(&cfg);
        let ident = out.lambda_of("identical");
        let iid = out.lambda_of("on-completion iid");
        assert!(
            ident < iid,
            "identical copies must shrink the stability region: λ*_ident = {ident}, λ*_iid = {iid}"
        );
        for cell in &out.cells {
            assert!(cell.lambda_star.is_finite());
        }
    }

    #[test]
    fn table_is_byte_identical_across_job_counts() {
        std::env::set_var("RBR_FIXED_WALL_TIME", "0");
        let cfg = tiny();
        let serial = {
            let pool = Pool::new(1);
            with_pool(&pool, || {
                let out = run(&cfg);
                render(&cfg, &out)
            })
        };
        let parallel = {
            let pool = Pool::new(2);
            with_pool(&pool, || {
                let out = run(&cfg);
                render(&cfg, &out)
            })
        };
        assert_eq!(serial, parallel, "--jobs must never change bytes");
    }
}
