//! Figure 4: the unfairness result — average stretch of jobs using
//! redundant requests ("r jobs") and jobs not using them ("n-r jobs")
//! versus the percentage `p` of jobs that use them.
//!
//! Paper findings on N = 10: as `p` grows the average stretch of *both*
//! populations grows; r-jobs always beat n-r jobs; with 40 % of jobs on
//! ALL, r-jobs run at roughly half the baseline stretch while n-r jobs
//! pay the bill; the penalty grows with the redundancy level.

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Experiment, RunMetrics};

/// Parameters of the Figure 4 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Fractions `p` to sweep.
    pub fractions: Vec<f64>,
    /// Schemes to evaluate.
    pub schemes: Vec<Scheme>,
    /// Replications per point.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let fractions = match scale {
            Scale::Smoke => vec![0.0, 0.5],
            Scale::Quick => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
            Scale::Paper => vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0],
        };
        Config {
            n: 10,
            fractions,
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 47,
        }
    }
}

/// One point of the figure: absolute stretches, like the paper plots.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Fraction of jobs using the scheme.
    pub fraction: f64,
    /// Average stretch of jobs using redundant requests (NaN when
    /// `fraction` is 0).
    pub stretch_r: f64,
    /// Average stretch of jobs not using redundant requests (NaN when
    /// `fraction` is 1).
    pub stretch_nr: f64,
    /// Average stretch over all jobs.
    pub stretch_all: f64,
}

fn nan_mean(values: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = values.filter(|v| v.is_finite()).collect();
    if xs.is_empty() {
        f64::NAN
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &scheme in &config.schemes {
        for &fraction in &config.fractions {
            let seed = SeedSequence::new(config.seed);
            let mut cfg = GridConfig::homogeneous(config.n, scheme);
            cfg.redundant_fraction = fraction;
            cfg.window = config.window;
            let metrics = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
            rows.push(Row {
                scheme,
                fraction,
                stretch_r: nan_mean(metrics.iter().map(|m| m.stretch_redundant)),
                stretch_nr: nan_mean(metrics.iter().map(|m| m.stretch_non_redundant)),
                stretch_all: nan_mean(metrics.iter().map(|m| m.stretch_mean)),
            });
        }
    }
    rows
}

/// Figure 4 as a typed table. The r column at `p = 0` and the n-r column
/// at `p = 1` are structurally missing (the population is empty), so
/// those cells are `Missing`, not NaN.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Figure 4 — r-jobs vs n-r jobs vs the fraction p using redundancy",
        vec!["scheme", "p", "stretch r", "stretch n-r", "stretch all"],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.scheme.to_string()),
            Cell::percent(r.fraction, 0),
            Cell::float_or_missing(r.stretch_r, 2),
            Cell::float_or_missing(r.stretch_nr, 2),
            Cell::float(r.stretch_all, 2),
        ]);
    }
    t
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Figure 4's registry entry.
pub struct Fig4;

impl Experiment for Fig4 {
    fn name(&self) -> &'static str {
        "fig4"
    }

    fn description(&self) -> &'static str {
        "Figure 4: average stretch of r-jobs vs n-r jobs as the redundant fraction grows"
    }

    fn paper_section(&self) -> &'static str {
        "§3.6"
    }

    fn default_seed(&self) -> u64 {
        47
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.schemes = vec![Scheme::All];
        cfg.window = Duration::from_secs(1_200.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        // p = 0: no redundant jobs, so the r column is NaN.
        assert!(rows[0].stretch_r.is_nan());
        assert!(rows[0].stretch_nr.is_finite());
        // p = 0.5: both populations exist.
        assert!(rows[1].stretch_r.is_finite());
        assert!(rows[1].stretch_nr.is_finite());
        let text = render(&rows);
        assert!(text.contains("stretch n-r"));
        assert!(text.contains('-'));
    }

    #[test]
    fn r_jobs_beat_nr_jobs_at_mid_fraction() {
        // The core qualitative claim of Figure 4, checkable even at smoke
        // scale: redundant jobs outperform non-redundant jobs in the same
        // run.
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.schemes = vec![Scheme::All];
        cfg.fractions = vec![0.4];
        cfg.reps = 3;
        let rows = run(&cfg);
        assert!(
            rows[0].stretch_r < rows[0].stretch_nr,
            "r {} vs n-r {}",
            rows[0].stretch_r,
            rows[0].stretch_nr
        );
    }
}
