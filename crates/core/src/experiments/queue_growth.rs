//! The §4.1 queue-size check: "when simulating N = 10 clusters for a
//! 24-hour period, we found that the average maximum queue size across
//! all clusters for the ALL redundant request scheme is larger than when
//! no redundant requests are used by less than 2 %."
//!
//! We reproduce the measurement; EXPERIMENTS.md discusses why the effect
//! is larger in an overloaded regime (a pending job occupies `r` queues
//! at once until it starts, so standing backlog inflates per-queue
//! length even though the *number of jobs in the system* barely moves).

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{mean_ratio, run_reps, Experiment, RunMetrics};

/// Parameters of the queue-growth measurement.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Scheme to compare against NONE (paper: ALL).
    pub scheme: Scheme,
    /// Replications.
    pub reps: usize,
    /// Submission window (paper: 24 hours).
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's 24-hour protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// Reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            scheme: Scheme::All,
            reps: scale.reps().min(10),
            window: match scale {
                Scale::Smoke => Duration::from_secs(1_800.0),
                Scale::Quick => Duration::from_hours(6),
                Scale::Paper => Duration::from_hours(24),
            },
            seed: 50,
        }
    }
}

/// The measurement outcome.
#[derive(Clone, Copy, Debug)]
pub struct Output {
    /// Average queue growth during the submission window, in *jobs* per
    /// hour (the paper quotes ≈700 jobs/hour for the model's peak hours).
    pub growth_per_hour: f64,
    /// Average (over clusters, then replications) maximum queue length
    /// without redundancy.
    pub baseline_max_queue: f64,
    /// Same with the scheme.
    pub scheme_max_queue: f64,
    /// Mean per-replication ratio `scheme / baseline`.
    pub ratio: f64,
    /// Per-replication ratio of the *number of distinct jobs* pending at
    /// peak, approximated by dividing per-queue length by the mean number
    /// of live copies — reported for the discussion in EXPERIMENTS.md.
    pub submits_ratio: f64,
}

/// Runs the measurement.
pub fn run(config: &Config) -> Output {
    let seed = SeedSequence::new(config.seed);
    let mut base = GridConfig::homogeneous(config.n, Scheme::None);
    base.window = config.window;
    let mut treat = base.clone();
    treat.scheme = config.scheme;

    let window = config.window;
    let b = run_reps(&base, config.reps, seed, |run| {
        (
            RunMetrics::from_run(run).max_queue_avg,
            run.submits as f64,
            run.queue_growth_per_hour(window) / config.n as f64,
        )
    });
    let t = run_reps(&treat, config.reps, seed, |run| {
        (
            RunMetrics::from_run(run).max_queue_avg,
            run.submits as f64,
            0.0,
        )
    });
    let bq: Vec<f64> = b.iter().map(|x| x.0).collect();
    let tq: Vec<f64> = t.iter().map(|x| x.0).collect();
    Output {
        growth_per_hour: b.iter().map(|x| x.2).sum::<f64>() / b.len() as f64,
        baseline_max_queue: bq.iter().sum::<f64>() / bq.len() as f64,
        scheme_max_queue: tq.iter().sum::<f64>() / tq.len() as f64,
        ratio: mean_ratio(&tq, &bq),
        submits_ratio: mean_ratio(
            &t.iter().map(|x| x.1).collect::<Vec<_>>(),
            &b.iter().map(|x| x.1).collect::<Vec<_>>(),
        ),
    }
}

/// The measurement as a typed table.
pub fn table(out: &Output) -> TypedTable {
    let mut t = TypedTable::new(
        "§4.1 — maximum queue size with and without redundancy",
        vec!["metric", "value"],
    );
    t.push(vec![
        Cell::text("avg max queue, NONE"),
        Cell::float(out.baseline_max_queue, 1),
    ]);
    t.push(vec![
        Cell::text("avg max queue, scheme"),
        Cell::float(out.scheme_max_queue, 1),
    ]);
    t.push(vec![Cell::text("ratio"), Cell::float(out.ratio, 3)]);
    t.push(vec![
        Cell::text("submissions ratio"),
        Cell::float(out.submits_ratio, 2),
    ]);
    t.push(vec![
        Cell::text("queue growth (jobs/h/cluster, NONE)"),
        Cell::float(out.growth_per_hour, 0),
    ]);
    t
}

/// Renders the outcome.
pub fn render(out: &Output) -> String {
    table(out).to_text()
}

/// The queue-growth check's registry entry.
pub struct QueueGrowth;

impl Experiment for QueueGrowth {
    fn name(&self) -> &'static str {
        "queue-growth"
    }

    fn description(&self) -> &'static str {
        "§4.1 check: how much the ALL scheme inflates the maximum queue size"
    }

    fn paper_section(&self) -> &'static str {
        "§4.1"
    }

    fn default_seed(&self) -> u64 {
        50
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.reps = 2;
        let out = run(&cfg);
        assert!(out.baseline_max_queue > 0.0);
        assert!(out.ratio > 0.0 && out.ratio.is_finite());
        // Redundant jobs multiply submissions.
        assert!(out.submits_ratio > 1.0);
        assert!(render(&out).contains("ratio"));
    }
}
