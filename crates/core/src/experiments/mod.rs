//! The experiment layer: one declarative runner per figure and table of
//! the paper, plus ablations beyond it, all registered in a single
//! [`Registry`].
//!
//! Every entry implements the [`Experiment`] trait — `(scale, seed)` in,
//! structured [`Report`](crate::report::Report) out — and the registry
//! is the *only* list of experiments in the workspace: the CLI, the
//! criterion benches, and the framework smoke test all iterate it.
//!
//! | registry name | module | reproduces |
//! |---------------|--------|------------|
//! | `fig1` (alias `fig2`) | [`fig1`] | Figure 1 (relative average stretch vs N) and Figure 2 (relative CV of stretches vs N) — one sweep, two tables |
//! | `table1` | [`table1`] | Table 1 (EASY / CBF / FCFS × exact / real estimates) |
//! | `table2` | [`table2`] | Table 2 (non-uniformly distributed redundant requests) |
//! | `fig3` | [`fig3`] | Figure 3 (relative stretch vs job interarrival time) |
//! | `table3` | [`table3`] | Table 3 (heterogeneous platforms) |
//! | `fig4` | [`fig4`] | Figure 4 (r-jobs vs n-r jobs vs fraction p) |
//! | `fig5` | [`fig5`] | Figure 5 (scheduler submit/cancel throughput vs queue size) |
//! | `table4` | [`table4`] | Table 4 (queue-wait over-prediction) |
//! | `queue-growth` | [`queue_growth`] | §4.1's "<2 % larger max queue size" check |
//! | `conclusion` | [`conclusion`] | the N = 20, 80 %-ALL scenario quoted in the conclusion |
//! | `ablations` | [`ablation`] | beyond the paper: load-regime, CBF-cycle, selection-policy, and inflation sensitivity |
//! | `forecast` | [`forecast`] | beyond the paper: redundancy's effect on statistical (binomial quantile-bound) wait forecasting |
//! | `moldable` | [`moldable`] | beyond the paper: option (iv) — redundant shape requests for moldable jobs |
//! | `dual-queue` | [`dual_queue`] | beyond the paper: option (iii) — redundant requests across premium/standard queues |
//! | `trace-check` | [`trace_check`] | §3.1.1's trace cross-check: replay an SWF trace split across the clusters |
//! | `faults` | [`faults`] | beyond the paper: unreliable middleware — lost/delayed cancellations and outages vs the perfect-middleware baseline |
//! | `batch` | [`batch`] | beyond the paper: batched submit/cancel transactions — sustainable redundancy vs batch size, plus the batching metascheduler's behavior |
//! | `stability` | [`stability`] | beyond the paper: the redundancy-d stability frontier — empirical λ* per (d, cancel-mode, copy-model) scheme via queue-growth bisection |
//!
//! Every runner is a pure function of its `Config` (seeds included), so
//! results are bit-reproducible across machines.
//!
//! # Adding an experiment
//!
//! 1. Write the module: a `Config` with `at_scale(Scale)`, a `run`
//!    function, and a unit struct implementing [`Experiment`] whose
//!    `tables()` builds [`TypedTable`](crate::report::TypedTable)s from
//!    the run. Use `run_reps`/[`Comparison`] for the paired
//!    replication harness.
//! 2. Register the unit struct in [`Registry::standard`].
//!
//! That is the whole checklist: `rbr list`, `rbr run <name>`, `rbr run
//! all`, the benches, and the registry smoke test pick it up from the
//! registry.

pub mod ablation;
pub mod batch;
pub mod campaign;
pub mod conclusion;
pub mod dual_queue;
pub mod faults;
pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod forecast;
pub mod framework;
pub mod moldable;
pub mod queue_growth;
pub mod registry;
pub mod stability;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod trace_check;

pub use framework::{Comparison, Experiment};
pub use registry::Registry;

use rbr_grid::record::JobClass;
use rbr_grid::{GridConfig, GridSim, RunResult};
use rbr_simcore::SeedSequence;
use rbr_stats::Summary;

/// The per-run metrics the figures and tables are built from. Reducing
/// each run to this immediately keeps memory flat when replications run
/// in parallel.
#[derive(Clone, Copy, Debug)]
pub struct RunMetrics {
    /// Mean job stretch.
    pub stretch_mean: f64,
    /// Coefficient of variation of job stretches (the fairness metric).
    pub stretch_cv: f64,
    /// Largest job stretch.
    pub stretch_max: f64,
    /// Mean turnaround time in seconds.
    pub turnaround_mean: f64,
    /// Mean stretch over redundant jobs only (NaN if none).
    pub stretch_redundant: f64,
    /// Mean stretch over non-redundant jobs only (NaN if none).
    pub stretch_non_redundant: f64,
    /// Average over clusters of the maximum queue length.
    pub max_queue_avg: f64,
    /// Node-seconds thrown away (zombie executions, outage-killed runs);
    /// 0 under perfect middleware.
    pub wasted_node_secs: f64,
    /// `wasted_node_secs` over the useful work delivered.
    pub waste_fraction: f64,
    /// Copies that started after their job had begun elsewhere.
    pub zombie_starts: f64,
    /// Useful node-seconds delivered (completed-job work areas).
    pub useful_node_secs: f64,
    /// Useful work over total pool capacity × makespan (0 when either
    /// is unknown).
    pub utilization: f64,
}

impl RunMetrics {
    /// Reduces a completed run.
    pub fn from_run(run: &RunResult) -> Self {
        let all = run.stretch(JobClass::All);
        let r = run.stretch(JobClass::Redundant);
        let nr = run.stretch(JobClass::NonRedundant);
        RunMetrics {
            stretch_mean: all.mean(),
            stretch_cv: all.cv(),
            stretch_max: all.max(),
            turnaround_mean: run.turnaround(JobClass::All).mean(),
            stretch_redundant: if r.is_empty() { f64::NAN } else { r.mean() },
            stretch_non_redundant: if nr.is_empty() { f64::NAN } else { nr.mean() },
            max_queue_avg: if run.max_queue_len.is_empty() {
                0.0
            } else {
                run.max_queue_len.iter().sum::<usize>() as f64 / run.max_queue_len.len() as f64
            },
            wasted_node_secs: run.wasted_node_secs,
            waste_fraction: run.waste_fraction(),
            zombie_starts: run.zombie_starts as f64,
            useful_node_secs: run.total_work(),
            utilization: run.overall_utilization(),
        }
    }
}

/// Runs `reps` replications of a configuration, reducing each run with
/// `reduce`. Replication `k` always uses `seed.child(k)`, so two calls
/// with the same seed but different schemes see identical job streams —
/// the paper's paired design.
///
/// Replications are the *cells* of the campaign engine: each is a pure
/// function of its index, submitted to the current `rbr-exec` pool and
/// merged in index order, so the returned vector is bit-identical to the
/// serial loop for any `--jobs` count.
pub(crate) fn run_reps<T, F>(
    config: &GridConfig,
    reps: usize,
    seed: SeedSequence,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&RunResult) -> T + Sync,
{
    run_reps_with(reps, seed, |_| config.clone(), reduce)
}

/// Like [`run_reps`] but the configuration itself may depend on the
/// replication index (heterogeneous platforms are redrawn per
/// replication in Table 3).
pub(crate) fn run_reps_with<T, F, C>(
    reps: usize,
    seed: SeedSequence,
    make_config: C,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&RunResult) -> T + Sync,
    C: Fn(usize) -> GridConfig + Sync,
{
    let mut out = Vec::with_capacity(reps);
    fold_reps_with(reps, seed, make_config, reduce, |_, value| out.push(value));
    out
}

/// The streaming primitive under [`run_reps_with`]: each replication's
/// reduced value is folded into `sink` in replication order as it lands,
/// so callers that accumulate (rather than compare pairwise) never hold
/// a per-rep vector. Bit-identical to the serial loop for any job count.
pub(crate) fn fold_reps_with<T, F, C, S>(
    reps: usize,
    seed: SeedSequence,
    make_config: C,
    reduce: F,
    sink: S,
) where
    T: Send,
    F: Fn(&RunResult) -> T + Sync,
    C: Fn(usize) -> GridConfig + Sync,
    S: FnMut(usize, T) + Send,
{
    // Cells may execute on pool worker threads; carry the submitting
    // experiment's sim tally across so provenance counts attribute to it
    // (and stay deterministic) regardless of which thread runs the rep.
    let tally = framework::current_tally();
    rbr_exec::fold_cells(
        reps,
        |rep| {
            let _tally = framework::install_tally(tally.clone());
            let run = GridSim::execute(make_config(rep), seed.child(rep as u64));
            framework::record_sim(&run);
            reduce(&run)
        },
        sink,
    );
}

/// Folds `reps` campaign cells into per-column streaming summaries.
///
/// Each cell samples `K` metric columns; the fold merges them through
/// [`Summary`] (Welford) in replication order, so memory is O(K)
/// regardless of rep count and the result is bit-identical for any job
/// count. A `NaN` sample means "no observation for this column in this
/// rep" (e.g. no redundant jobs that replication) and is skipped, so
/// conditional columns carry their own counts. The submitting
/// experiment's sim tally travels with the cells.
pub(crate) fn summarize_cells<const K: usize>(
    reps: usize,
    sample: impl Fn(usize) -> [f64; K] + Sync,
) -> [Summary; K] {
    let tally = framework::current_tally();
    let mut out = [Summary::new(); K];
    rbr_exec::fold_cells(
        reps,
        |rep| {
            let _tally = framework::install_tally(tally.clone());
            sample(rep)
        },
        |_, row: [f64; K]| {
            for (summary, value) in out.iter_mut().zip(row) {
                if !value.is_nan() {
                    summary.push(value);
                }
            }
        },
    );
    out
}

/// The summary's mean, or NaN when no rep contributed an observation.
pub(crate) fn mean_or_nan(summary: &Summary) -> f64 {
    if summary.is_empty() {
        f64::NAN
    } else {
        summary.mean()
    }
}

/// Mean of per-replication ratios `treatment[k] / baseline[k]`.
pub(crate) fn mean_ratio(treatment: &[f64], baseline: &[f64]) -> f64 {
    rbr_stats::mean_relative(treatment, baseline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_grid::Scheme;
    use rbr_simcore::Duration;

    fn tiny(scheme: Scheme) -> GridConfig {
        let mut cfg = GridConfig::homogeneous(2, scheme);
        cfg.window = Duration::from_secs(900.0);
        cfg
    }

    #[test]
    fn paired_runs_share_streams() {
        let seed = SeedSequence::new(7);
        let a = run_reps(&tiny(Scheme::None), 2, seed, |r| r.records.len());
        let b = run_reps(&tiny(Scheme::All), 2, seed, |r| r.records.len());
        assert_eq!(a, b, "same seeds must yield identical job populations");
    }

    #[test]
    fn metrics_are_finite_for_mixed_population() {
        let mut cfg = tiny(Scheme::All);
        cfg.redundant_fraction = 0.5;
        let m = run_reps(&cfg, 1, SeedSequence::new(8), RunMetrics::from_run);
        assert!(m[0].stretch_mean >= 1.0);
        assert!(m[0].stretch_redundant.is_finite());
        assert!(m[0].stretch_non_redundant.is_finite());
        assert!(m[0].max_queue_avg >= 0.0);
        assert!(m[0].useful_node_secs > 0.0);
        assert!(m[0].utilization > 0.0 && m[0].utilization <= 1.0);
    }

    #[test]
    fn zero_cluster_run_yields_zeros_not_nan() {
        let m = RunMetrics::from_run(&RunResult::default());
        assert_eq!(m.max_queue_avg, 0.0);
        assert_eq!(m.useful_node_secs, 0.0);
        assert_eq!(m.utilization, 0.0);
    }
}
