//! The experiment registry: one boxed [`Experiment`] per figure, table,
//! and ablation, in paper order.
//!
//! The CLI (`rbr list` / `rbr run`), the criterion benches, and the
//! framework smoke test all iterate this registry, so a new experiment
//! registered here is immediately runnable, benchable, and tested —
//! there is no second table to keep in sync.

use super::framework::Experiment;
use super::{
    ablation, batch, conclusion, dual_queue, faults, fig1, fig3, fig4, fig5, forecast, moldable,
    queue_growth, stability, table1, table2, table3, table4, trace_check,
};

/// The set of registered experiments.
pub struct Registry {
    entries: Vec<Box<dyn Experiment>>,
}

impl Registry {
    /// All experiments of the reproduction, in paper order followed by
    /// the beyond-the-paper extensions.
    pub fn standard() -> Self {
        Registry {
            entries: vec![
                Box::new(fig1::Fig1),
                Box::new(table1::Table1),
                Box::new(table2::Table2),
                Box::new(fig3::Fig3),
                Box::new(table3::Table3),
                Box::new(fig4::Fig4),
                Box::new(fig5::Fig5),
                Box::new(table4::Table4),
                Box::new(queue_growth::QueueGrowth),
                Box::new(conclusion::Conclusion),
                Box::new(ablation::Ablations),
                Box::new(forecast::Forecast),
                Box::new(moldable::Moldable),
                Box::new(dual_queue::DualQueue),
                Box::new(trace_check::TraceCheck),
                Box::new(faults::Faults),
                Box::new(batch::Batch),
                Box::new(stability::Stability),
            ],
        }
    }

    /// Iterates the experiments in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Experiment> {
        self.entries.iter().map(Box::as_ref)
    }

    /// Looks an experiment up by name or alias. Matching is
    /// case-insensitive and treats `_` and `-` as equivalent, so
    /// `queue_growth` finds `queue-growth`.
    pub fn get(&self, name: &str) -> Option<&dyn Experiment> {
        let wanted = name.trim().to_ascii_lowercase().replace('_', "-");
        self.iter()
            .find(|e| e.name() == wanted || e.aliases().contains(&wanted.as_str()))
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.iter().map(|e| e.name()).collect()
    }

    /// Number of registered experiments.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_and_aliases_are_unique() {
        let registry = Registry::standard();
        let mut seen = HashSet::new();
        for e in registry.iter() {
            assert!(seen.insert(e.name()), "duplicate name {:?}", e.name());
            for alias in e.aliases() {
                assert!(seen.insert(alias), "duplicate alias {alias:?}");
            }
        }
        assert_eq!(registry.len(), 18);
    }

    #[test]
    fn lookup_resolves_names_aliases_and_spellings() {
        let registry = Registry::standard();
        assert_eq!(registry.get("fig1").unwrap().name(), "fig1");
        // Figure 2 comes from the fig1 sweep; the alias keeps the old
        // CLI spelling working.
        assert_eq!(registry.get("fig2").unwrap().name(), "fig1");
        assert_eq!(registry.get("queue_growth").unwrap().name(), "queue-growth");
        assert_eq!(registry.get("Trace-Check").unwrap().name(), "trace-check");
        assert!(registry.get("nope").is_none());
        assert!(
            registry.get("all").is_none(),
            "'all' is CLI sugar, not an entry"
        );
    }

    #[test]
    fn every_entry_is_self_describing() {
        for e in Registry::standard().iter() {
            assert!(!e.name().is_empty());
            assert!(!e.description().is_empty(), "{}", e.name());
            assert!(!e.paper_section().is_empty(), "{}", e.name());
            assert!(
                e.name()
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
                "{:?} is not kebab-case",
                e.name()
            );
        }
    }
}
