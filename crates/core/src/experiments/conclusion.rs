//! The conclusion's quantified scenario: "When 80 % of jobs send
//! redundant requests to all clusters in a 20-cluster platform, the
//! average stretch of jobs not using redundant requests is 75 % higher
//! than when there are no redundant requests in the system. In this case
//! jobs using redundant requests experience stretches that are on
//! average half of those experienced by jobs not using redundant
//! requests. If the jobs using redundant requests send them to only 20 %
//! of the clusters, then the stretches of jobs not using redundant
//! requests are only increased by roughly 20 %."

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Experiment, RunMetrics};

/// Parameters of the conclusion scenario.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 20).
    pub n: usize,
    /// Fraction of jobs using redundancy (paper: 0.8).
    pub fraction: f64,
    /// Schemes to compare: ALL ("all clusters") and R(n/5) ("20 % of the
    /// clusters").
    pub schemes: Vec<Scheme>,
    /// Replications.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's scenario.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// Reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 20,
            fraction: 0.8,
            schemes: vec![Scheme::All, Scheme::R(4)], // 4 = 20 % of 20
            reps: scale.reps(),
            window: scale.window(),
            seed: 51,
        }
    }
}

/// The scenario's outcome for one scheme.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Scheme used by the redundant 80 %.
    pub scheme: Scheme,
    /// Baseline average stretch with no redundancy anywhere.
    pub baseline_stretch: f64,
    /// Average stretch of the non-redundant jobs in the mixed system.
    pub stretch_nr: f64,
    /// Average stretch of the redundant jobs in the mixed system.
    pub stretch_r: f64,
    /// `stretch_nr / baseline` — the paper quotes +75 % for ALL.
    pub nr_vs_baseline: f64,
    /// `stretch_r / stretch_nr` — the paper quotes ≈ 0.5 for ALL.
    pub r_vs_nr: f64,
}

/// Runs the scenario.
pub fn run(config: &Config) -> Vec<Row> {
    let seed = SeedSequence::new(config.seed);
    let mut base = GridConfig::homogeneous(config.n, Scheme::None);
    base.window = config.window;
    let b = run_reps(&base, config.reps, seed, RunMetrics::from_run);
    let baseline = b.iter().map(|m| m.stretch_mean).sum::<f64>() / b.len() as f64;

    config
        .schemes
        .iter()
        .map(|&scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            cfg.redundant_fraction = config.fraction;
            let t = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
            let nr = t.iter().map(|m| m.stretch_non_redundant).sum::<f64>() / t.len() as f64;
            let r = t.iter().map(|m| m.stretch_redundant).sum::<f64>() / t.len() as f64;
            Row {
                scheme,
                baseline_stretch: baseline,
                stretch_nr: nr,
                stretch_r: r,
                nr_vs_baseline: nr / baseline,
                r_vs_nr: r / nr,
            }
        })
        .collect()
}

/// The scenario as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Conclusion — 80% redundant jobs on a 20-cluster platform",
        vec![
            "scheme",
            "baseline",
            "n-r stretch",
            "r stretch",
            "n-r vs baseline",
            "r vs n-r",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.scheme.to_string()),
            Cell::float(r.baseline_stretch, 2),
            Cell::float(r.stretch_nr, 2),
            Cell::float(r.stretch_r, 2),
            Cell::float(r.nr_vs_baseline, 2),
            Cell::float(r.r_vs_nr, 2),
        ]);
    }
    t
}

/// Renders the scenario.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// The conclusion scenario's registry entry.
pub struct Conclusion;

impl Experiment for Conclusion {
    fn name(&self) -> &'static str {
        "conclusion"
    }

    fn description(&self) -> &'static str {
        "the conclusion's scenario: 80% of jobs redundant on 20 clusters, ALL vs R4"
    }

    fn paper_section(&self) -> &'static str {
        "§6"
    }

    fn default_seed(&self) -> u64 {
        51
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 5;
        cfg.schemes = vec![Scheme::All];
        cfg.window = Duration::from_secs(1_200.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.baseline_stretch >= 1.0);
        // Redundant jobs beat non-redundant jobs in the same system.
        assert!(r.r_vs_nr < 1.0, "r_vs_nr {}", r.r_vs_nr);
        assert!(render(&rows).contains("n-r vs baseline"));
    }
}
