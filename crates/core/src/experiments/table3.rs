//! Table 3: heterogeneous platforms.
//!
//! Paper setup: N = 10 clusters whose sizes are drawn from
//! {16, 32, 64, 128, 256} and whose mean interarrival times are drawn
//! from U(2 s, 20 s), independently per replication; jobs never request
//! more nodes than their home cluster has. Paper values (relative to
//! NONE): stretch 0.83 / 0.74 / 0.71 / 0.63 / 0.67 and CV 0.90 / 0.85 /
//! 0.84 / 0.81 / 0.79 for R2 / R3 / R4 / HALF / ALL — redundancy helps
//! *more* than in the homogeneous case, because load balancing has more
//! imbalance to exploit.

use rbr_grid::{ClusterSpec, GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};
use rbr_workload::LublinConfig;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps_with, Comparison, Experiment, RunMetrics};

/// Parameters of the Table 3 experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Cluster sizes drawn from this set.
    pub size_choices: Vec<u32>,
    /// Interarrival times drawn uniformly from this range (seconds).
    pub iat_range: (f64, f64),
    /// Schemes to evaluate.
    pub schemes: Vec<Scheme>,
    /// Replications per scheme.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            size_choices: vec![16, 32, 64, 128, 256],
            iat_range: (2.0, 20.0),
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 46,
        }
    }

    /// Draws the random platform of replication `rep` — both the baseline
    /// and every scheme see the identical platform and job streams.
    fn platform(&self, rep: usize) -> Vec<ClusterSpec> {
        use rand::RngExt;
        let mut rng = SeedSequence::new(self.seed)
            .child(0x9147)
            .child(rep as u64)
            .rng();
        (0..self.n)
            .map(|_| {
                let nodes = self.size_choices[rng.random_range(0..self.size_choices.len())];
                let iat = rng.random_range(self.iat_range.0..self.iat_range.1);
                ClusterSpec::new(
                    nodes,
                    LublinConfig::paper_2006().with_mean_interarrival(iat),
                )
            })
            .collect()
    }
}

/// One row of Table 3.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE.
    pub rel_cv: f64,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Vec<Row> {
    let seed = SeedSequence::new(config.seed);
    let make = |scheme: Scheme| {
        move |rep: usize| -> GridConfig {
            let mut cfg = GridConfig::homogeneous(1, scheme);
            cfg.clusters = config.platform(rep);
            cfg.window = config.window;
            cfg
        }
    };
    let baseline = run_reps_with(config.reps, seed, make(Scheme::None), RunMetrics::from_run);

    config
        .schemes
        .iter()
        .map(|&scheme| {
            let cmp = Comparison::new(
                baseline.clone(),
                run_reps_with(config.reps, seed, make(scheme), RunMetrics::from_run),
            );
            Row {
                scheme,
                rel_stretch: cmp.rel_stretch(),
                rel_cv: cmp.rel_cv(),
            }
        })
        .collect()
}

/// Table 3 as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Table 3 — heterogeneous platforms (random sizes and loads)",
        vec!["scheme", "rel stretch", "rel CV"],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.scheme.to_string()),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
        ]);
    }
    t
}

/// Renders the rows in the paper's Table 3 layout.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Table 3's registry entry.
pub struct Table3;

impl Experiment for Table3 {
    fn name(&self) -> &'static str {
        "table3"
    }

    fn description(&self) -> &'static str {
        "Table 3: redundancy on heterogeneous platforms with per-replication random draws"
    }

    fn paper_section(&self) -> &'static str {
        "§3.5"
    }

    fn default_seed(&self) -> u64 {
        46
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_is_reproducible_and_heterogeneous() {
        let cfg = Config::at_scale(Scale::Smoke);
        let a = cfg.platform(3);
        let b = cfg.platform(3);
        assert_eq!(a.len(), 10);
        assert_eq!(
            a.iter().map(|c| c.nodes).collect::<Vec<_>>(),
            b.iter().map(|c| c.nodes).collect::<Vec<_>>()
        );
        for c in &a {
            assert!(cfg.size_choices.contains(&c.nodes));
            let iat = c.workload.mean_interarrival();
            assert!((2.0..20.0).contains(&iat));
        }
        // Different reps draw different platforms (overwhelmingly likely).
        let other = cfg.platform(4);
        assert_ne!(
            a.iter().map(|c| c.nodes).collect::<Vec<_>>(),
            other.iter().map(|c| c.nodes).collect::<Vec<_>>()
        );
    }

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.schemes = vec![Scheme::All];
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].rel_stretch.is_finite());
        assert!(render(&rows).contains("ALL"));
    }
}
