//! Table 4: queue-waiting-time over-prediction.
//!
//! Predictions come from the CBF reservations at submit time; requested
//! compute times use the "real estimates" model (mean over-estimation
//! 2.16), so predictions are systematically conservative. A redundant
//! job's prediction is the minimum over its copies.
//!
//! Paper values (predicted wait / effective wait, N = 10):
//!
//! | population | average | CV |
//! |------------|---------|-----|
//! | 0 % redundant — all jobs | 9.24 | 205 % |
//! | 40 % ALL — n-r jobs | 77.54 | 189 % |
//! | 40 % ALL — r jobs | 36.28 | 205 % |
//!
//! Headline: redundancy inflates everyone's over-prediction — about 4×
//! for the jobs using it and 8× for the jobs that do not.

use rbr_grid::record::JobClass;
use rbr_grid::{GridConfig, Scheme};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SeedSequence};
use rbr_workload::EstimateModel;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Experiment};

/// Parameters of the Table 4 experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Scheme used by redundant jobs (paper: ALL).
    pub scheme: Scheme,
    /// Fraction of jobs using the scheme in the redundant case (paper:
    /// 0.4).
    pub fraction: f64,
    /// Replications.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Floor applied to both predicted and effective waits when forming
    /// the ratio (the paper does not state its handling of zero waits;
    /// see DESIGN.md).
    pub floor: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// Reduced fidelity (CBF-bound, so replications follow
    /// `Scale::cbf_reps`).
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            // CBF with prediction collection is the most expensive cell
            // in the campaign; 4 clusters keep smoke runs snappy.
            n: if scale == Scale::Smoke { 4 } else { 10 },
            scheme: Scheme::All,
            fraction: 0.4,
            reps: scale.cbf_reps(),
            window: scale.window(),
            floor: Duration::from_secs(1.0),
            seed: 49,
        }
    }
}

/// One row of Table 4.
#[derive(Clone, Debug)]
pub struct Row {
    /// Which population the statistics cover.
    pub case: String,
    /// Mean of `predicted wait / effective wait` over jobs, averaged over
    /// replications.
    pub mean_ratio: f64,
    /// CV of the ratios (averaged over replications), as a fraction.
    pub cv: f64,
}

/// Runs the experiment: the 0 %-redundancy baseline and the
/// `fraction`-ALL case, reporting over-prediction statistics per
/// population.
pub fn run(config: &Config) -> Vec<Row> {
    let seed = SeedSequence::new(config.seed);
    let base_cfg = {
        let mut cfg = GridConfig::homogeneous(config.n, Scheme::None);
        cfg.algorithm = Algorithm::Cbf;
        cfg.estimates = EstimateModel::paper_real();
        cfg.collect_predictions = true;
        cfg.window = config.window;
        cfg
    };
    let floor = config.floor;
    let base = run_reps(&base_cfg, config.reps, seed, |run| {
        let s = run.prediction_ratio(JobClass::All, floor);
        (s.mean(), s.cv())
    });

    let mut red_cfg = base_cfg.clone();
    red_cfg.scheme = config.scheme;
    red_cfg.redundant_fraction = config.fraction;
    let red = run_reps(&red_cfg, config.reps, seed, |run| {
        let nr = run.prediction_ratio(JobClass::NonRedundant, floor);
        let r = run.prediction_ratio(JobClass::Redundant, floor);
        (nr.mean(), nr.cv(), r.mean(), r.cv())
    });

    let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let pct = (config.fraction * 100.0).round() as u32;
    vec![
        Row {
            case: "0% redundant — all jobs".to_string(),
            mean_ratio: avg(&base.iter().map(|x| x.0).collect::<Vec<_>>()),
            cv: avg(&base.iter().map(|x| x.1).collect::<Vec<_>>()),
        },
        Row {
            case: format!("{pct}% {} — n-r jobs", config.scheme),
            mean_ratio: avg(&red.iter().map(|x| x.0).collect::<Vec<_>>()),
            cv: avg(&red.iter().map(|x| x.1).collect::<Vec<_>>()),
        },
        Row {
            case: format!("{pct}% {} — r jobs", config.scheme),
            mean_ratio: avg(&red.iter().map(|x| x.2).collect::<Vec<_>>()),
            cv: avg(&red.iter().map(|x| x.3).collect::<Vec<_>>()),
        },
    ]
}

/// Table 4 as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Table 4 — queue-wait over-prediction under redundant churn",
        vec!["population", "avg over-prediction", "CV"],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.case.clone()),
            Cell::float(r.mean_ratio, 2),
            Cell::percent(r.cv, 0),
        ]);
    }
    t
}

/// Renders the rows in the paper's Table 4 layout.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Table 4's registry entry.
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn description(&self) -> &'static str {
        "Table 4: CBF queue-wait over-prediction for r-jobs and n-r jobs"
    }

    fn paper_section(&self) -> &'static str {
        "§5"
    }

    fn default_seed(&self) -> u64 {
        49
    }

    fn replications(&self, scale: Scale) -> usize {
        scale.cbf_reps()
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_shows_overprediction_inflation() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.window = Duration::from_secs(1_800.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3);
        // Predictions based on ×2.16 overestimates must over-predict.
        assert!(
            rows[0].mean_ratio > 1.0,
            "baseline over-prediction {}",
            rows[0].mean_ratio
        );
        // Redundancy should inflate over-prediction for both populations
        // relative to the baseline (the Table 4 headline).
        // Churn from redundant copies inflates the over-prediction of the
        // jobs not using them even at this small scale.
        assert!(
            rows[1].mean_ratio > rows[0].mean_ratio,
            "n-r {} vs baseline {}",
            rows[1].mean_ratio,
            rows[0].mean_ratio
        );
        // The r-jobs inflation (paper: ×4) is a loaded-regime effect;
        // at smoke scale just require a valid, finite statistic.
        assert!(rows[2].mean_ratio.is_finite() && rows[2].mean_ratio >= 1.0);
        let text = render(&rows);
        assert!(text.contains("n-r jobs"));
    }
}
