//! Beyond the paper: option (iii) of Section 2 — redundant requests to
//! multiple queues (premium + standard) of a single resource.
//!
//! The sweep varies the fraction of users racing both queues and reports
//! what they gain, what the single-queue users lose, and how often the
//! expensive queue ends up billed.
//!
//! Because the dual-queue simulator runs on the shared
//! [`SimDriver`](rbr_grid::SimDriver) core, each replication reduces to
//! the same [`RunMetrics`] as every other experiment: dual users are the
//! "redundant" job class, standard-only users the "non-redundant" class,
//! and the utilization/waste columns come from the unified accounting
//! (waste is identically zero here — the racing protocol runs under
//! perfect middleware).

use rbr_grid::dual_queue::{self, DualQueueConfig};
use rbr_simcore::SeedSequence;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{Experiment, RunMetrics};

/// Parameters of the dual-queue experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Fractions of dual-queue users to sweep.
    pub fractions: Vec<f64>,
    /// Base single-cluster setup.
    pub base: DualQueueConfig,
    /// Replications.
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Default protocol at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        let mut base = DualQueueConfig::new(0.0);
        base.window = scale.window();
        Config {
            fractions: match scale {
                Scale::Smoke => vec![0.0, 0.4],
                _ => vec![0.0, 0.1, 0.3, 0.5, 0.8],
            },
            base,
            reps: scale.reps().min(8),
            seed: 58,
        }
    }
}

/// One point of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Fraction of users racing both queues.
    pub fraction: f64,
    /// Mean stretch of dual-queue users (NaN at fraction 0).
    pub dual_stretch: f64,
    /// Mean stretch of standard-only users.
    pub single_stretch: f64,
    /// Fraction of dual jobs won by the premium queue.
    pub premium_win_fraction: f64,
    /// Mean price multiplier paid by dual users.
    pub dual_mean_price: f64,
    /// Mean pool utilization (useful work over capacity × makespan).
    pub utilization: f64,
    /// Mean wasted-work fraction; 0 under the perfect middleware this
    /// experiment assumes.
    pub waste_fraction: f64,
}

/// Runs the sweep. Replications are campaign-engine cells (each a pure
/// function of its index) folded into streaming per-column summaries in
/// replication order, so the result is bit-identical for any job count
/// and memory stays O(columns). A NaN column (no dual or no single jobs
/// that rep) simply contributes no observation.
pub fn run(config: &Config) -> Vec<Row> {
    config
        .fractions
        .iter()
        .map(|&fraction| {
            let [utilization, waste, dual, wins, price, single] =
                super::summarize_cells(config.reps, |rep| {
                    let mut cfg = config.base.clone();
                    cfg.dual_fraction = fraction;
                    let result =
                        dual_queue::run(&cfg, SeedSequence::new(config.seed).child(rep as u64));
                    let m = RunMetrics::from_run(&result.run);
                    let no_dual = m.stretch_redundant.is_nan();
                    [
                        m.utilization,
                        m.waste_fraction,
                        m.stretch_redundant,
                        if no_dual {
                            f64::NAN
                        } else {
                            result.premium_win_fraction()
                        },
                        if no_dual {
                            f64::NAN
                        } else {
                            result.dual_mean_price()
                        },
                        m.stretch_non_redundant,
                    ]
                });
            Row {
                fraction,
                dual_stretch: super::mean_or_nan(&dual),
                single_stretch: super::mean_or_nan(&single),
                premium_win_fraction: super::mean_or_nan(&wins),
                dual_mean_price: super::mean_or_nan(&price),
                utilization: utilization.mean(),
                waste_fraction: waste.mean(),
            }
        })
        .collect()
}

/// The sweep as a typed table. At fraction 0 the dual population is
/// empty, so its columns are `Missing`.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Dual queue — premium/standard racing on one resource",
        vec![
            "dual fraction",
            "dual stretch",
            "single stretch",
            "premium wins",
            "mean price",
            "utilization",
            "waste frac",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::percent(r.fraction, 0),
            Cell::float_or_missing(r.dual_stretch, 2),
            Cell::float_or_missing(r.single_stretch, 2),
            Cell::percent_or_missing(r.premium_win_fraction, 0),
            Cell::float_or_missing(r.dual_mean_price, 2),
            Cell::percent(r.utilization, 1),
            Cell::percent(r.waste_fraction, 2),
        ]);
    }
    t
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// The dual-queue study's registry entry.
pub struct DualQueue;

impl Experiment for DualQueue {
    fn name(&self) -> &'static str {
        "dual-queue"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: option (iii) premium/standard queue racing"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §2"
    }

    fn default_seed(&self) -> u64 {
        58
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.base.window = Duration::from_secs(1_800.0);
        cfg.reps = 2;
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        assert!(rows[0].dual_stretch.is_nan());
        assert!(rows[1].dual_stretch.is_finite());
        // Dual users should not do worse than single users in the same runs.
        assert!(rows[1].dual_stretch <= rows[1].single_stretch * 1.1);
        // Unified accounting: the racing protocol never wastes node-time
        // under perfect middleware, and the pool does real work.
        for r in &rows {
            assert_eq!(r.waste_fraction, 0.0);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("premium wins"));
        assert!(text.contains("utilization"));
    }
}
