//! Figures 1 and 2: relative average stretch and relative coefficient of
//! variation of stretches, versus the number of clusters.
//!
//! Paper setup: N ∈ {2, 3, 4, 5, 10, 20} identical 128-node clusters,
//! EASY scheduling, exact estimates, schemes R2/R3/R4/HALF/ALL, 50
//! replications. Paper findings: worst case ≈ +10 % (small N); all
//! schemes beneficial for N > 5, improving stretch by 15–25 % and
//! fairness (CV) by 10–25 %; max stretch improves 10–60 %.

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::plot::AsciiPlot;
use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the Figure 1/2 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cluster counts to sweep.
    pub ns: Vec<usize>,
    /// Redundancy schemes to evaluate (the baseline NONE is implicit).
    pub schemes: Vec<Scheme>,
    /// Replications per (N, scheme).
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let ns = match scale {
            Scale::Smoke => vec![2, 5],
            Scale::Quick => vec![2, 5, 10, 20],
            Scale::Paper => vec![2, 3, 4, 5, 10, 20],
        };
        Config {
            ns,
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 42,
        }
    }
}

/// One point of the figures: a `(N, scheme)` pair with every relative
/// metric the paper plots.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Number of clusters.
    pub n: usize,
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Figure 1's y-axis: mean over replications of
    /// `avg_stretch(scheme) / avg_stretch(NONE)`.
    pub rel_stretch: f64,
    /// Figure 2's y-axis: the same ratio for the CV of stretches.
    pub rel_cv: f64,
    /// Relative maximum stretch (quoted in §3.3 as improving 10–60 %).
    pub rel_max_stretch: f64,
    /// Relative mean turnaround (§3.3: always beneficial by this metric).
    pub rel_turnaround: f64,
    /// Fraction of replications where the scheme strictly improved the
    /// average stretch (§3.3 quotes >85–95 % for N ≥ 10).
    pub win_fraction: f64,
    /// Worst (largest) per-replication stretch ratio.
    pub worst: f64,
    /// Absolute baseline average stretch, for context.
    pub baseline_stretch: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &config.ns {
        let seed = SeedSequence::new(config.seed).child(n as u64);
        let mut base_cfg = GridConfig::homogeneous(n, Scheme::None);
        base_cfg.window = config.window;
        let baseline = run_reps(&base_cfg, config.reps, seed, RunMetrics::from_run);

        for &scheme in &config.schemes {
            let mut cfg = GridConfig::homogeneous(n, scheme);
            cfg.window = config.window;
            let cmp = Comparison::new(
                baseline.clone(),
                run_reps(&cfg, config.reps, seed, RunMetrics::from_run),
            );
            let series = cmp.stretch_series();
            rows.push(Row {
                n,
                scheme,
                rel_stretch: series.summary().mean(),
                rel_cv: cmp.rel_cv(),
                rel_max_stretch: cmp.rel_max_stretch(),
                rel_turnaround: cmp.rel_turnaround(),
                win_fraction: series.win_fraction(),
                worst: series.worst(),
                baseline_stretch: cmp.baseline_stretch(),
            });
        }
    }
    rows
}

/// Figure 1 as a typed table: every relative metric of the sweep.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Figure 1 — stretch relative to NONE vs number of clusters",
        vec![
            "N",
            "scheme",
            "rel stretch",
            "rel CV",
            "rel max",
            "rel TAT",
            "wins",
            "worst",
            "base stretch",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::int(r.n as i64),
            Cell::text(r.scheme.to_string()),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
            Cell::float(r.rel_max_stretch, 3),
            Cell::float(r.rel_turnaround, 3),
            Cell::percent(r.win_fraction, 0),
            Cell::float(r.worst, 3),
            Cell::float(r.baseline_stretch, 1),
        ]);
    }
    t
}

/// Figure 2 as a typed table: the fairness (CV) projection of the same
/// sweep — the paper plots it as its own figure, so it gets its own
/// named table.
pub fn cv_table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Figure 2 — CV of stretches relative to NONE vs number of clusters",
        vec!["N", "scheme", "rel CV"],
    );
    for r in rows {
        t.push(vec![
            Cell::int(r.n as i64),
            Cell::text(r.scheme.to_string()),
            Cell::float(r.rel_cv, 3),
        ]);
    }
    t
}

/// Renders the rows the way the paper's figures read.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Figures 1 and 2, registered as one entry because a single sweep
/// produces both (the old CLI listed `fig2` separately and quietly
/// re-ran the `fig1` module — the alias models the relationship
/// honestly).
pub struct Fig1;

impl Experiment for Fig1 {
    fn name(&self) -> &'static str {
        "fig1"
    }

    fn aliases(&self) -> &'static [&'static str] {
        &["fig2"]
    }

    fn description(&self) -> &'static str {
        "Figures 1 & 2: relative average stretch and relative CV of stretches vs number of clusters"
    }

    fn paper_section(&self) -> &'static str {
        "§3.3"
    }

    fn default_seed(&self) -> u64 {
        42
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        let rows = run(&config);
        vec![table(&rows), cv_table(&rows)]
    }
}

/// Renders the rows as the paper's Figure 1 plot (one series per
/// scheme, x = number of clusters, y = relative average stretch).
pub fn render_plot(rows: &[Row]) -> String {
    let mut plot = AsciiPlot::new(
        "Figure 1: average stretch relative to NONE",
        "number of clusters",
        "relative stretch",
    );
    let mut schemes: Vec<Scheme> = rows.iter().map(|r| r.scheme).collect();
    schemes.dedup();
    for scheme in schemes {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| (r.n as f64, r.rel_stretch))
            .collect();
        plot = plot.series(&scheme.to_string(), &pts);
    }
    plot.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let cfg = Config::at_scale(Scale::Smoke);
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.ns.len() * cfg.schemes.len());
        for r in &rows {
            assert!(r.rel_stretch > 0.0 && r.rel_stretch.is_finite());
            assert!(r.rel_cv > 0.0 && r.rel_cv.is_finite());
            assert!(r.baseline_stretch >= 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("rel stretch"));
        assert!(text.contains("ALL"));
        let plot = render_plot(&rows);
        assert!(plot.contains("Figure 1"));
        assert!(plot.contains("legend"));
    }

    #[test]
    fn paper_config_matches_protocol() {
        let cfg = Config::paper();
        assert_eq!(cfg.ns, vec![2, 3, 4, 5, 10, 20]);
        assert_eq!(cfg.reps, 50);
        assert_eq!(cfg.schemes.len(), 5);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.ns = vec![2];
        cfg.schemes = vec![Scheme::R(2)];
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a[0].rel_stretch, b[0].rel_stretch);
        assert_eq!(a[0].rel_cv, b[0].rel_cv);
    }
}
