//! Figures 1 and 2: relative average stretch and relative coefficient of
//! variation of stretches, versus the number of clusters.
//!
//! Paper setup: N ∈ {2, 3, 4, 5, 10, 20} identical 128-node clusters,
//! EASY scheduling, exact estimates, schemes R2/R3/R4/HALF/ALL, 50
//! replications. Paper findings: worst case ≈ +10 % (small N); all
//! schemes beneficial for N > 5, improving stretch by 15–25 % and
//! fairness (CV) by 10–25 %; max stretch improves 10–60 %.

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};
use rbr_stats::RelativeSeries;

use crate::plot::AsciiPlot;
use crate::report::Table;
use crate::scale::Scale;

use super::{run_reps, RunMetrics};

/// Parameters of the Figure 1/2 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Cluster counts to sweep.
    pub ns: Vec<usize>,
    /// Redundancy schemes to evaluate (the baseline NONE is implicit).
    pub schemes: Vec<Scheme>,
    /// Replications per (N, scheme).
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let ns = match scale {
            Scale::Smoke => vec![2, 5],
            Scale::Quick => vec![2, 5, 10, 20],
            Scale::Paper => vec![2, 3, 4, 5, 10, 20],
        };
        Config {
            ns,
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 42,
        }
    }
}

/// One point of the figures: a `(N, scheme)` pair with every relative
/// metric the paper plots.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Number of clusters.
    pub n: usize,
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Figure 1's y-axis: mean over replications of
    /// `avg_stretch(scheme) / avg_stretch(NONE)`.
    pub rel_stretch: f64,
    /// Figure 2's y-axis: the same ratio for the CV of stretches.
    pub rel_cv: f64,
    /// Relative maximum stretch (quoted in §3.3 as improving 10–60 %).
    pub rel_max_stretch: f64,
    /// Relative mean turnaround (§3.3: always beneficial by this metric).
    pub rel_turnaround: f64,
    /// Fraction of replications where the scheme strictly improved the
    /// average stretch (§3.3 quotes >85–95 % for N ≥ 10).
    pub win_fraction: f64,
    /// Worst (largest) per-replication stretch ratio.
    pub worst: f64,
    /// Absolute baseline average stretch, for context.
    pub baseline_stretch: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &n in &config.ns {
        let seed = SeedSequence::new(config.seed).child(n as u64);
        let mut base_cfg = GridConfig::homogeneous(n, Scheme::None);
        base_cfg.window = config.window;
        let baseline = run_reps(&base_cfg, config.reps, seed, RunMetrics::from_run);
        let base_stretch: Vec<f64> = baseline.iter().map(|m| m.stretch_mean).collect();
        let base_cv: Vec<f64> = baseline.iter().map(|m| m.stretch_cv).collect();
        let base_max: Vec<f64> = baseline.iter().map(|m| m.stretch_max).collect();
        let base_tat: Vec<f64> = baseline.iter().map(|m| m.turnaround_mean).collect();

        for &scheme in &config.schemes {
            let mut cfg = GridConfig::homogeneous(n, scheme);
            cfg.window = config.window;
            let metrics = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
            let stretch: Vec<f64> = metrics.iter().map(|m| m.stretch_mean).collect();
            let ratios: Vec<f64> = stretch
                .iter()
                .zip(&base_stretch)
                .map(|(a, b)| a / b)
                .collect();
            let series = RelativeSeries::from_ratios(ratios);
            rows.push(Row {
                n,
                scheme,
                rel_stretch: series.summary().mean(),
                rel_cv: super::mean_ratio(
                    &metrics.iter().map(|m| m.stretch_cv).collect::<Vec<_>>(),
                    &base_cv,
                ),
                rel_max_stretch: super::mean_ratio(
                    &metrics.iter().map(|m| m.stretch_max).collect::<Vec<_>>(),
                    &base_max,
                ),
                rel_turnaround: super::mean_ratio(
                    &metrics.iter().map(|m| m.turnaround_mean).collect::<Vec<_>>(),
                    &base_tat,
                ),
                win_fraction: series.win_fraction(),
                worst: series.worst(),
                baseline_stretch: base_stretch.iter().sum::<f64>() / base_stretch.len() as f64,
            });
        }
    }
    rows
}

/// Renders the rows the way the paper's figures read.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "N", "scheme", "rel stretch", "rel CV", "rel max", "rel TAT", "wins", "worst",
        "base stretch",
    ]);
    for r in rows {
        t.push(vec![
            r.n.to_string(),
            r.scheme.to_string(),
            format!("{:.3}", r.rel_stretch),
            format!("{:.3}", r.rel_cv),
            format!("{:.3}", r.rel_max_stretch),
            format!("{:.3}", r.rel_turnaround),
            format!("{:.0}%", r.win_fraction * 100.0),
            format!("{:.3}", r.worst),
            format!("{:.1}", r.baseline_stretch),
        ]);
    }
    t.render()
}

/// Renders the rows as the paper's Figure 1 plot (one series per
/// scheme, x = number of clusters, y = relative average stretch).
pub fn render_plot(rows: &[Row]) -> String {
    let mut plot = AsciiPlot::new(
        "Figure 1: average stretch relative to NONE",
        "number of clusters",
        "relative stretch",
    );
    let mut schemes: Vec<Scheme> = rows.iter().map(|r| r.scheme).collect();
    schemes.dedup();
    for scheme in schemes {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.scheme == scheme)
            .map(|r| (r.n as f64, r.rel_stretch))
            .collect();
        plot = plot.series(&scheme.to_string(), &pts);
    }
    plot.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_all_rows() {
        let cfg = Config::at_scale(Scale::Smoke);
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.ns.len() * cfg.schemes.len());
        for r in &rows {
            assert!(r.rel_stretch > 0.0 && r.rel_stretch.is_finite());
            assert!(r.rel_cv > 0.0 && r.rel_cv.is_finite());
            assert!(r.baseline_stretch >= 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("rel stretch"));
        assert!(text.contains("ALL"));
        let plot = render_plot(&rows);
        assert!(plot.contains("Figure 1"));
        assert!(plot.contains("legend"));
    }

    #[test]
    fn paper_config_matches_protocol() {
        let cfg = Config::paper();
        assert_eq!(cfg.ns, vec![2, 3, 4, 5, 10, 20]);
        assert_eq!(cfg.reps, 50);
        assert_eq!(cfg.schemes.len(), 5);
    }

    #[test]
    fn runs_are_reproducible() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.ns = vec![2];
        cfg.schemes = vec![Scheme::R(2)];
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a[0].rel_stretch, b[0].rel_stretch);
        assert_eq!(a[0].rel_cv, b[0].rel_cv);
    }
}
