//! Figure 5: batch-scheduler submit/cancel throughput versus queue size.
//!
//! The paper saturated a production OpenPBS/Maui install and measured
//! ≈11 submissions + 11 cancellations per second on an empty queue,
//! decaying exponentially-ish to ≈5 at 20 000 pending requests, across
//! four 12-hour runs (some cut short by scheduler memory leaks).
//!
//! Reproduced two ways:
//!
//! 1. [`run`] — the calibrated churn simulation: several noisy curves
//!    plus their average, exactly the figure's layout, including an
//!    optional crash-injected curve.
//! 2. [`native_throughput`] — an honest measurement of *this crate's*
//!    schedulers: wall-clock submit+cancel rate at pinned queue sizes
//!    (the criterion bench drives this), which exhibits the same
//!    monotone decay on real hardware.

use rand::RngExt;
use rbr_middleware::{ChurnExperiment, ChurnPoint};
use rbr_sched::{Algorithm, Request, RequestId};
use rbr_simcore::{Duration, SeedSequence, SimTime};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::Experiment;

/// Parameters of the churn simulation.
#[derive(Clone, Debug)]
pub struct Config {
    /// Queue sizes to pin (paper: 0 … 20 000).
    pub queue_sizes: Vec<usize>,
    /// Number of independent curves (paper: 4 experiments).
    pub curves: usize,
    /// Length of each measurement.
    pub duration: Duration,
    /// Inject the paper's memory-leak crash into the last curve.
    pub inject_crash: bool,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's setup: 4 twelve-hour curves over queue sizes
    /// 0 … 20 000, crashes included.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// Reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let (step, duration) = match scale {
            Scale::Smoke => (10_000, Duration::from_secs(600.0)),
            Scale::Quick => (2_500, Duration::from_hours(1)),
            Scale::Paper => (1_000, Duration::from_hours(12)),
        };
        Config {
            queue_sizes: (0..=20_000).step_by(step).collect(),
            curves: 4,
            duration,
            inject_crash: true,
            seed: 48,
        }
    }
}

/// One x-position of the figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// Pinned queue size.
    pub queue_size: usize,
    /// The individual curves' measurements (missing values where a
    /// crashed run did not reach this queue size — the paper: "some
    /// curves do not show values for the higher queue sizes").
    pub curves: Vec<Option<f64>>,
    /// The thick dashed line: average over surviving curves.
    pub average: f64,
}

/// Runs the churn simulation.
pub fn run(config: &Config) -> Vec<Row> {
    let mut per_curve: Vec<Vec<Option<ChurnPoint>>> = Vec::new();
    for curve in 0..config.curves {
        let mut exp = ChurnExperiment::paper_setup();
        exp.duration = config.duration;
        // The paper's crashed runs stopped collecting points beyond some
        // queue size; model that by crashing the final curve's scheduler
        // after a fixed operation budget per point.
        if config.inject_crash && curve == config.curves - 1 {
            exp.crash_after_ops = Some((config.duration.as_secs() * 3.0) as u64);
        }
        let mut rng = SeedSequence::new(config.seed).child(curve as u64).rng();
        let mut curve_points = Vec::new();
        let mut dead = false;
        for &q in &config.queue_sizes {
            if dead {
                curve_points.push(None);
                continue;
            }
            let p = exp.measure(q, &mut rng);
            if p.crashed {
                dead = true;
            }
            curve_points.push(Some(p));
        }
        per_curve.push(curve_points);
    }

    config
        .queue_sizes
        .iter()
        .enumerate()
        .map(|(i, &q)| {
            let curves: Vec<Option<f64>> = per_curve
                .iter()
                .map(|c| c[i].map(|p| p.ops_per_sec))
                .collect();
            let live: Vec<f64> = curves.iter().flatten().copied().collect();
            Row {
                queue_size: q,
                average: live.iter().sum::<f64>() / live.len().max(1) as f64,
                curves,
            }
        })
        .collect()
}

/// Figure 5 as a typed table (one column per curve plus the average;
/// crashed curves' lost tails are missing cells).
pub fn table(rows: &[Row]) -> TypedTable {
    let n_curves = rows.first().map_or(0, |r| r.curves.len());
    let mut headers = vec!["queue size".to_string()];
    for i in 0..n_curves {
        headers.push(format!("exp #{}", i + 1));
    }
    headers.push("average".to_string());
    let mut t = TypedTable::new(
        "Figure 5 — scheduler submit/cancel throughput vs queue size",
        headers,
    );
    for r in rows {
        let mut row = vec![Cell::int(r.queue_size as i64)];
        for c in &r.curves {
            row.push(match c {
                Some(v) => Cell::float(*v, 2),
                None => Cell::Missing,
            });
        }
        row.push(Cell::float(r.average, 2));
        t.push(row);
    }
    t
}

/// Renders the figure as a table (one column per curve plus the average).
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Figure 5's registry entry.
pub struct Fig5;

impl Experiment for Fig5 {
    fn name(&self) -> &'static str {
        "fig5"
    }

    fn description(&self) -> &'static str {
        "Figure 5: batch-scheduler submit/cancel throughput vs pending queue size"
    }

    fn paper_section(&self) -> &'static str {
        "§4"
    }

    fn default_seed(&self) -> u64 {
        48
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).curves
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.curves = r;
        }
        vec![table(&run(&config))]
    }
}

/// Measures the wall-clock submit+cancel throughput of one of **our**
/// scheduler implementations at a pinned queue size — the native analogue
/// of the paper's OpenPBS measurement. Returns operations (submit+cancel
/// pairs) per second.
///
/// The cluster runs a node-monopolizing job (the paper parked a long job
/// on all 16 nodes so pending jobs never start), the queue is pre-seeded
/// with `queue_size` requests, and then `pairs` iterations of
/// submit-new + cancel-oldest are timed.
pub fn native_throughput(alg: Algorithm, queue_size: usize, pairs: usize, seed: u64) -> f64 {
    let nodes = 16u32;
    let mut sched = alg.build_with_cycle(nodes, Duration::from_secs(30.0));
    let mut starts = Vec::new();
    let mut rng = SeedSequence::new(seed).rng();
    let mut next_id = 0u64;
    let alloc = |rng: &mut rand::rngs::StdRng, next_id: &mut u64, submit: SimTime| {
        let id = RequestId(*next_id);
        *next_id += 1;
        Request::new(
            id,
            rng.random_range(2..=nodes),
            Duration::from_secs(rng.random_range(60.0..36_000.0)),
            submit,
        )
    };

    // Park a long job on all but one node: nothing in the queue (every
    // request needs ≥ 2 nodes) can ever start, but the scheduler still
    // has a free node to consider, so each event runs a full backfill
    // scan over the queue — the linear-in-queue work that made the
    // paper's OpenPBS throughput decay.
    let blocker = Request::new(
        RequestId(u64::MAX),
        nodes - 1,
        Duration::from_hours(10_000),
        SimTime::ZERO,
    );
    sched.submit(SimTime::ZERO, blocker, &mut starts);
    assert_eq!(starts.len(), 1, "blocker must start immediately");
    starts.clear();

    // Pre-seed the queue.
    let mut now = SimTime::ZERO;
    let tick = Duration::from_micros(1);
    let mut oldest = next_id;
    for _ in 0..queue_size {
        now += tick;
        let req = alloc(&mut rng, &mut next_id, now);
        sched.submit(now, req, &mut starts);
        assert!(
            starts.is_empty(),
            "no queued request fits the single free node"
        );
    }

    // Timed churn: submit one, cancel the oldest (maximum churn, like
    // deleting the job at the head of the queue).
    let t0 = std::time::Instant::now();
    for _ in 0..pairs {
        now += tick;
        let req = alloc(&mut rng, &mut next_id, now);
        sched.submit(now, req, &mut starts);
        now += tick;
        sched.cancel(now, RequestId(oldest), &mut starts);
        oldest += 1;
        debug_assert!(starts.is_empty());
    }
    let elapsed = t0.elapsed().as_secs_f64();
    pairs as f64 / elapsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_has_figure_shape() {
        let cfg = Config::at_scale(Scale::Smoke);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3); // 0, 10k, 20k
                                   // Empty queue ≈ 11 pairs/s, 20 k ≈ 5.2.
        assert!(
            (10.0..12.0).contains(&rows[0].average),
            "{}",
            rows[0].average
        );
        assert!(rows.last().unwrap().average < 6.0);
        // Monotone decay of the average.
        assert!(rows[0].average > rows[1].average);
        assert!(rows[1].average > rows[2].average);
        let text = render(&rows);
        assert!(text.contains("exp #1"));
        assert!(text.contains("average"));
    }

    #[test]
    fn crash_curve_goes_missing() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.duration = Duration::from_hours(2); // long enough to exceed the ops budget
        let rows = run(&cfg);
        let last_curve: Vec<Option<f64>> = rows.iter().map(|r| *r.curves.last().unwrap()).collect();
        assert!(
            last_curve.iter().any(|c| c.is_none()),
            "the crash-injected curve should lose its tail"
        );
    }

    #[test]
    fn native_throughput_is_positive_and_decays() {
        // Tiny op counts: this is a smoke check, the bench does it right.
        let fast = native_throughput(Algorithm::Easy, 10, 200, 1);
        let slow = native_throughput(Algorithm::Easy, 5_000, 200, 1);
        assert!(fast > 0.0 && slow > 0.0);
        // EASY scans the queue per event: bigger queues must be slower.
        assert!(fast > slow, "fast {fast} vs slow {slow}");
    }

    #[test]
    fn native_throughput_works_for_all_algorithms() {
        for alg in Algorithm::all() {
            let rate = native_throughput(alg, 100, 50, 2);
            assert!(rate > 0.0, "{alg}");
        }
    }
}
