//! Figure 3: relative average stretch versus the job interarrival time.
//!
//! The paper varies the Gamma shape α from 4 to 20 (β fixed at 0.49),
//! giving mean interarrival times between ≈2 s and ≈10 s on N = 10
//! clusters, and finds redundancy beneficial at every load level (and
//! likewise for the CV of stretches, "not shown").

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the Figure 3 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Gamma shape values α to sweep (paper: 4 → 20).
    pub alphas: Vec<f64>,
    /// Schemes to evaluate.
    pub schemes: Vec<Scheme>,
    /// Replications per point.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let alphas = match scale {
            Scale::Smoke => vec![8.0, 16.0],
            Scale::Quick => vec![6.0, 10.23, 16.0, 20.0],
            Scale::Paper => vec![4.0, 6.0, 8.0, 10.23, 12.0, 14.0, 16.0, 18.0, 20.0],
        };
        Config {
            n: 10,
            alphas,
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 45,
        }
    }
}

/// One point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Gamma shape α.
    pub alpha: f64,
    /// Mean interarrival time α·β in seconds (the figure's x-axis).
    pub mean_interarrival: f64,
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE (the paper reports this improves
    /// too, without plotting it).
    pub rel_cv: f64,
    /// Absolute baseline stretch, for context.
    pub baseline_stretch: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for (a_idx, &alpha) in config.alphas.iter().enumerate() {
        let seed = SeedSequence::new(config.seed).child(a_idx as u64);
        let mut base = GridConfig::homogeneous(config.n, Scheme::None);
        base.window = config.window;
        for c in &mut base.clusters {
            c.workload = c.workload.with_interarrival_shape(alpha);
        }
        let mean_iat = base.clusters[0].workload.mean_interarrival();
        let baseline = run_reps(&base, config.reps, seed, RunMetrics::from_run);

        for &scheme in &config.schemes {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            let cmp = Comparison::new(
                baseline.clone(),
                run_reps(&cfg, config.reps, seed, RunMetrics::from_run),
            );
            rows.push(Row {
                alpha,
                mean_interarrival: mean_iat,
                scheme,
                rel_stretch: cmp.rel_stretch(),
                rel_cv: cmp.rel_cv(),
                baseline_stretch: cmp.baseline_stretch(),
            });
        }
    }
    rows
}

/// Figure 3 as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Figure 3 — stretch relative to NONE vs job interarrival time",
        vec![
            "alpha",
            "mean iat (s)",
            "scheme",
            "rel stretch",
            "rel CV",
            "base stretch",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::float(r.alpha, 2),
            Cell::float(r.mean_interarrival, 2),
            Cell::text(r.scheme.to_string()),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
            Cell::float(r.baseline_stretch, 1),
        ]);
    }
    t
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Figure 3's registry entry.
pub struct Fig3;

impl Experiment for Fig3 {
    fn name(&self) -> &'static str {
        "fig3"
    }

    fn description(&self) -> &'static str {
        "Figure 3: relative average stretch vs job interarrival time (load sweep)"
    }

    fn paper_section(&self) -> &'static str {
        "§3.5"
    }

    fn default_seed(&self) -> u64 {
        45
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.schemes = vec![Scheme::All];
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        // x-axis values follow α·β.
        assert!((rows[0].mean_interarrival - 8.0 * 0.49).abs() < 1e-9);
        assert!(render(&rows).contains("mean iat"));
    }

    #[test]
    fn paper_sweep_spans_two_to_ten_seconds() {
        let cfg = Config::paper();
        let lo = 4.0 * 0.49;
        let hi = 20.0 * 0.49;
        assert!((1.9..2.1).contains(&lo));
        assert!((9.7..9.9).contains(&hi));
        assert!(cfg.alphas.contains(&10.23)); // the base model point
    }
}
