//! Figure 3: relative average stretch versus the job interarrival time.
//!
//! The paper varies the Gamma shape α from 4 to 20 (β fixed at 0.49),
//! giving mean interarrival times between ≈2 s and ≈10 s on N = 10
//! clusters, and finds redundancy beneficial at every load level (and
//! likewise for the CV of stretches, "not shown").

use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::Table;
use crate::scale::Scale;

use super::{mean_ratio, run_reps, RunMetrics};

/// Parameters of the Figure 3 sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Gamma shape values α to sweep (paper: 4 → 20).
    pub alphas: Vec<f64>,
    /// Schemes to evaluate.
    pub schemes: Vec<Scheme>,
    /// Replications per point.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let alphas = match scale {
            Scale::Smoke => vec![8.0, 16.0],
            Scale::Quick => vec![6.0, 10.23, 16.0, 20.0],
            Scale::Paper => vec![4.0, 6.0, 8.0, 10.23, 12.0, 14.0, 16.0, 18.0, 20.0],
        };
        Config {
            n: 10,
            alphas,
            schemes: Scheme::paper_schemes().to_vec(),
            reps: scale.reps(),
            window: scale.window(),
            seed: 45,
        }
    }
}

/// One point of the figure.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Gamma shape α.
    pub alpha: f64,
    /// Mean interarrival time α·β in seconds (the figure's x-axis).
    pub mean_interarrival: f64,
    /// Redundancy scheme.
    pub scheme: Scheme,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE (the paper reports this improves
    /// too, without plotting it).
    pub rel_cv: f64,
    /// Absolute baseline stretch, for context.
    pub baseline_stretch: f64,
}

/// Runs the sweep.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for (a_idx, &alpha) in config.alphas.iter().enumerate() {
        let seed = SeedSequence::new(config.seed).child(a_idx as u64);
        let mut base = GridConfig::homogeneous(config.n, Scheme::None);
        base.window = config.window;
        for c in &mut base.clusters {
            c.workload = c.workload.with_interarrival_shape(alpha);
        }
        let mean_iat = base.clusters[0].workload.mean_interarrival();
        let b = run_reps(&base, config.reps, seed, RunMetrics::from_run);
        let bs: Vec<f64> = b.iter().map(|m| m.stretch_mean).collect();
        let bcv: Vec<f64> = b.iter().map(|m| m.stretch_cv).collect();

        for &scheme in &config.schemes {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            let t = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
            rows.push(Row {
                alpha,
                mean_interarrival: mean_iat,
                scheme,
                rel_stretch: mean_ratio(
                    &t.iter().map(|m| m.stretch_mean).collect::<Vec<_>>(),
                    &bs,
                ),
                rel_cv: mean_ratio(
                    &t.iter().map(|m| m.stretch_cv).collect::<Vec<_>>(),
                    &bcv,
                ),
                baseline_stretch: bs.iter().sum::<f64>() / bs.len() as f64,
            });
        }
    }
    rows
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "alpha",
        "mean iat (s)",
        "scheme",
        "rel stretch",
        "rel CV",
        "base stretch",
    ]);
    for r in rows {
        t.push(vec![
            format!("{:.2}", r.alpha),
            format!("{:.2}", r.mean_interarrival),
            r.scheme.to_string(),
            format!("{:.3}", r.rel_stretch),
            format!("{:.3}", r.rel_cv),
            format!("{:.1}", r.baseline_stretch),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.schemes = vec![Scheme::All];
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        // x-axis values follow α·β.
        assert!((rows[0].mean_interarrival - 8.0 * 0.49).abs() < 1e-9);
        assert!(render(&rows).contains("mean iat"));
    }

    #[test]
    fn paper_sweep_spans_two_to_ten_seconds() {
        let cfg = Config::paper();
        let lo = 4.0 * 0.49;
        let hi = 20.0 * 0.49;
        assert!((1.9..2.1).contains(&lo));
        assert!((9.7..9.9).contains(&hi));
        assert!(cfg.alphas.contains(&10.23)); // the base model point
    }
}
