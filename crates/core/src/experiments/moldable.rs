//! Beyond the paper: option (iv) of Section 2 — redundant requests for
//! *different node counts* (moldable jobs) in a single batch queue.
//!
//! The paper's conundrum: "should one wait possibly a long time for a
//! larger number of nodes?" A fixed shape either waits too long (wide)
//! or runs too long (narrow); redundant shape requests let the queue
//! decide. This experiment compares every fixed-shape policy against the
//! all-shapes redundant policy on identical workloads.

use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
use rbr_simcore::SeedSequence;

use crate::report::Table;
use crate::scale::Scale;

/// Parameters of the moldable experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Base single-cluster setup (shapes, machine size, algorithm).
    pub base: MoldableConfig,
    /// Replications.
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Default protocol at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        let mut base = MoldableConfig::new(ShapePolicy::AllShapes);
        base.window = scale.window();
        Config {
            base,
            reps: scale.reps().min(8),
            seed: 57,
        }
    }
}

/// One policy's outcome.
#[derive(Clone, Debug)]
pub struct Row {
    /// Policy label.
    pub policy: String,
    /// Mean turnaround (seconds).
    pub turnaround: f64,
    /// Mean normalized stretch (turnaround ÷ best achievable runtime).
    pub normalized_stretch: f64,
    /// Mean nodes actually used.
    pub mean_nodes: f64,
}

/// Runs the comparison: each fixed shape, then all-shapes redundancy.
pub fn run(config: &Config) -> Vec<Row> {
    let mut policies: Vec<(String, ShapePolicy)> = config
        .base
        .shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("fixed {s} nodes"), ShapePolicy::Fixed(i)))
        .collect();
    policies.push(("all shapes (redundant)".to_string(), ShapePolicy::AllShapes));

    policies
        .into_iter()
        .map(|(label, policy)| {
            let mut turnaround = 0.0;
            let mut stretch = 0.0;
            let mut nodes = 0.0;
            for rep in 0..config.reps {
                let mut cfg = config.base.clone();
                cfg.policy = policy;
                let result =
                    moldable::run(&cfg, SeedSequence::new(config.seed).child(rep as u64));
                turnaround += result.turnaround().mean() / config.reps as f64;
                stretch += result.normalized_stretch().mean() / config.reps as f64;
                nodes += result.mean_nodes() / config.reps as f64;
            }
            Row {
                policy: label,
                turnaround,
                normalized_stretch: stretch,
                mean_nodes: nodes,
            }
        })
        .collect()
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    let mut t = Table::new(vec![
        "policy",
        "mean turnaround (s)",
        "norm. stretch",
        "mean nodes",
    ]);
    for r in rows {
        t.push(vec![
            r.policy.clone(),
            format!("{:.0}", r.turnaround),
            format!("{:.2}", r.normalized_stretch),
            format!("{:.1}", r.mean_nodes),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    #[test]
    fn smoke_run_compares_policies() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.base.window = Duration::from_secs(1_200.0);
        cfg.reps = 2;
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.base.shapes.len() + 1);
        assert!(rows.iter().all(|r| r.turnaround > 0.0));
        // The redundant policy should not lose to the WORST fixed choice.
        let worst_fixed = rows[..rows.len() - 1]
            .iter()
            .map(|r| r.turnaround)
            .fold(f64::NEG_INFINITY, f64::max);
        let redundant = rows.last().unwrap().turnaround;
        assert!(redundant <= worst_fixed * 1.05);
        assert!(render(&rows).contains("all shapes"));
    }
}
