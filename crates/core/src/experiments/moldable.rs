//! Beyond the paper: option (iv) of Section 2 — redundant requests for
//! *different node counts* (moldable jobs) in a single batch queue.
//!
//! The paper's conundrum: "should one wait possibly a long time for a
//! larger number of nodes?" A fixed shape either waits too long (wide)
//! or runs too long (narrow); redundant shape requests let the queue
//! decide. This experiment compares every fixed-shape policy against the
//! all-shapes redundant policy on identical workloads.

use rbr_grid::moldable::{self, MoldableConfig, ShapePolicy};
use rbr_simcore::SeedSequence;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{Experiment, RunMetrics};

/// Parameters of the moldable experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Base single-cluster setup (shapes, machine size, algorithm).
    pub base: MoldableConfig,
    /// Replications.
    pub reps: usize,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Default protocol at the given scale.
    pub fn at_scale(scale: Scale) -> Self {
        let mut base = MoldableConfig::new(ShapePolicy::AllShapes);
        base.window = scale.window();
        Config {
            base,
            reps: scale.reps().min(8),
            seed: 57,
        }
    }
}

/// One policy's outcome.
#[derive(Clone, Debug)]
pub struct Row {
    /// Policy label.
    pub policy: String,
    /// Mean turnaround (seconds).
    pub turnaround: f64,
    /// Mean normalized stretch (turnaround ÷ best achievable runtime).
    pub normalized_stretch: f64,
    /// Mean nodes actually used.
    pub mean_nodes: f64,
    /// Mean machine utilization (useful work over capacity × makespan),
    /// from the unified [`RunMetrics`] accounting.
    pub utilization: f64,
    /// Mean wasted-work fraction; 0 because shape racing cancels losing
    /// shapes before they start.
    pub waste_fraction: f64,
}

/// Runs the comparison: each fixed shape, then all-shapes redundancy.
pub fn run(config: &Config) -> Vec<Row> {
    let mut policies: Vec<(String, ShapePolicy)> = config
        .base
        .shapes
        .iter()
        .enumerate()
        .map(|(i, &s)| (format!("fixed {s} nodes"), ShapePolicy::Fixed(i)))
        .collect();
    policies.push(("all shapes (redundant)".to_string(), ShapePolicy::AllShapes));

    policies
        .into_iter()
        .map(|(label, policy)| {
            // Replications are campaign-engine cells folded into
            // streaming summaries in replication order: bit-identical
            // for any job count, O(columns) memory for any rep count.
            let [turnaround, stretch, nodes, utilization, waste] =
                super::summarize_cells(config.reps, |rep| {
                    let mut cfg = config.base.clone();
                    cfg.policy = policy;
                    let result =
                        moldable::run(&cfg, SeedSequence::new(config.seed).child(rep as u64));
                    let m = RunMetrics::from_run(&result.run);
                    [
                        result.turnaround().mean(),
                        result.normalized_stretch().mean(),
                        result.mean_nodes(),
                        m.utilization,
                        m.waste_fraction,
                    ]
                });
            Row {
                policy: label,
                turnaround: turnaround.mean(),
                normalized_stretch: stretch.mean(),
                mean_nodes: nodes.mean(),
                utilization: utilization.mean(),
                waste_fraction: waste.mean(),
            }
        })
        .collect()
}

/// The comparison as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Moldable — fixed shapes vs all-shapes redundancy",
        vec![
            "policy",
            "mean turnaround (s)",
            "norm. stretch",
            "mean nodes",
            "utilization",
            "waste frac",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::text(r.policy.clone()),
            Cell::float(r.turnaround, 0),
            Cell::float(r.normalized_stretch, 2),
            Cell::float(r.mean_nodes, 1),
            Cell::percent(r.utilization, 1),
            Cell::percent(r.waste_fraction, 2),
        ]);
    }
    t
}

/// Renders the comparison.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// The moldable study's registry entry.
pub struct Moldable;

impl Experiment for Moldable {
    fn name(&self) -> &'static str {
        "moldable"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: option (iv) moldable shape redundancy in one queue"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §2"
    }

    fn default_seed(&self) -> u64 {
        57
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbr_simcore::Duration;

    #[test]
    fn smoke_run_compares_policies() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.base.window = Duration::from_secs(1_200.0);
        cfg.reps = 2;
        let rows = run(&cfg);
        assert_eq!(rows.len(), cfg.base.shapes.len() + 1);
        assert!(rows.iter().all(|r| r.turnaround > 0.0));
        // The redundant policy should not lose to the WORST fixed choice.
        let worst_fixed = rows[..rows.len() - 1]
            .iter()
            .map(|r| r.turnaround)
            .fold(f64::NEG_INFINITY, f64::max);
        let redundant = rows.last().unwrap().turnaround;
        assert!(redundant <= worst_fixed * 1.05);
        // Unified accounting: shape racing cancels losers before they
        // start, so no node-time is wasted.
        for r in &rows {
            assert_eq!(r.waste_fraction, 0.0);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0);
        }
        let text = render(&rows);
        assert!(text.contains("all shapes"));
        assert!(text.contains("utilization"));
    }
}
