//! Table 1: the HALF scheme on N = 10 clusters under three scheduling
//! algorithms (EASY, CBF, FCFS) and two estimate models (exact and
//! "real" — the φ-model overestimates with mean factor 2.16).
//!
//! Paper values (relative to NONE on the same streams):
//!
//! |      | rel. avg stretch (exact / real) | rel. CV (exact / real) |
//! |------|--------------------------------|------------------------|
//! | EASY | 0.88 / 0.83 | 0.83 / 0.83 |
//! | CBF  | 0.90 / 0.83 | 0.86 / 0.83 |
//! | FCFS | 0.93 / 0.93 | 0.93 / 0.93 |
//!
//! The headline: **all entries below 1** — redundancy helps under every
//! algorithm and estimate model.

use rbr_grid::{GridConfig, Scheme};
use rbr_sched::Algorithm;
use rbr_simcore::{Duration, SeedSequence};
use rbr_workload::EstimateModel;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the Table 1 experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters (paper: 10).
    pub n: usize,
    /// Scheme used by all jobs (paper: HALF).
    pub scheme: Scheme,
    /// Algorithms to evaluate.
    pub algorithms: Vec<Algorithm>,
    /// Estimate models to evaluate (exact and real).
    pub estimates: Vec<EstimateModel>,
    /// Replications per cell for the cheap algorithms (EASY, FCFS).
    pub reps: usize,
    /// Replications per cell for CBF (schedule compression is ~30×
    /// slower, so reduced scales use fewer).
    pub cbf_reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The paper's exact protocol.
    pub fn paper() -> Self {
        Config::at_scale(Scale::Paper)
    }

    /// The protocol at reduced fidelity (CBF pays the schedule-compression
    /// cost, so replications follow `Scale::cbf_reps`).
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            // 4 clusters keep the CBF cells affordable at smoke scale;
            // the direction of every entry is already stable there.
            n: if scale == Scale::Smoke { 4 } else { 10 },
            scheme: Scheme::Half,
            algorithms: vec![Algorithm::Easy, Algorithm::Cbf, Algorithm::Fcfs],
            estimates: vec![EstimateModel::Exact, EstimateModel::paper_real()],
            reps: scale.reps(),
            cbf_reps: scale.cbf_reps(),
            window: scale.window(),
            seed: 43,
        }
    }
}

/// One cell pair of Table 1.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Scheduling algorithm.
    pub algorithm: Algorithm,
    /// Estimate model used.
    pub estimates: EstimateModel,
    /// Relative average stretch vs NONE.
    pub rel_stretch: f64,
    /// Relative CV of stretches vs NONE.
    pub rel_cv: f64,
    /// Absolute baseline stretch, for context.
    pub baseline_stretch: f64,
}

/// Runs the experiment.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for &alg in &config.algorithms {
        for (e_idx, &est) in config.estimates.iter().enumerate() {
            let seed = SeedSequence::new(config.seed)
                .child(alg as u64)
                .child(e_idx as u64);
            let mut base = GridConfig::homogeneous(config.n, Scheme::None);
            base.algorithm = alg;
            base.estimates = est;
            base.window = config.window;
            let mut treat = base.clone();
            treat.scheme = config.scheme;

            let reps = if alg == Algorithm::Cbf {
                config.cbf_reps
            } else {
                config.reps
            };
            let cmp = Comparison::new(
                run_reps(&base, reps, seed, RunMetrics::from_run),
                run_reps(&treat, reps, seed, RunMetrics::from_run),
            );
            rows.push(Row {
                algorithm: alg,
                estimates: est,
                rel_stretch: cmp.rel_stretch(),
                rel_cv: cmp.rel_cv(),
                baseline_stretch: cmp.baseline_stretch(),
            });
        }
    }
    rows
}

/// Table 1 as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Table 1 — HALF vs NONE across algorithms and estimate models",
        vec![
            "algorithm",
            "estimates",
            "rel stretch",
            "rel CV",
            "base stretch",
        ],
    );
    for r in rows {
        let est = match r.estimates {
            EstimateModel::Exact => "exact",
            _ => "real",
        };
        t.push(vec![
            Cell::text(r.algorithm.to_string()),
            Cell::text(est),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.rel_cv, 3),
            Cell::float(r.baseline_stretch, 1),
        ]);
    }
    t
}

/// Renders the rows in the paper's Table 1 layout.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// Table 1's registry entry.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn description(&self) -> &'static str {
        "Table 1: the HALF scheme under EASY/CBF/FCFS with exact and real estimates"
    }

    fn paper_section(&self) -> &'static str {
        "§3.4"
    }

    fn default_seed(&self) -> u64 {
        43
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_all_cells() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.window = Duration::from_secs(900.0);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 6); // 3 algorithms × 2 estimate models
        for r in &rows {
            assert!(r.rel_stretch.is_finite() && r.rel_stretch > 0.0);
            assert!(r.rel_cv.is_finite() && r.rel_cv > 0.0);
        }
        let text = render(&rows);
        assert!(text.contains("EASY"));
        assert!(text.contains("CBF"));
        assert!(text.contains("FCFS"));
        assert!(text.contains("real"));
    }

    #[test]
    fn paper_config_matches_table() {
        let cfg = Config::paper();
        assert_eq!(cfg.n, 10);
        assert_eq!(cfg.scheme, Scheme::Half);
        assert_eq!(cfg.algorithms.len(), 3);
        assert_eq!(cfg.estimates.len(), 2);
    }
}
