//! Beyond the paper: what happens to redundant batch requests when the
//! middleware is *not* perfect.
//!
//! The paper's protocol assumes a zero-latency, zero-loss cancellation
//! callback. This experiment degrades that assumption with the
//! `rbr_faults` model: cancellation messages take time and get lost with
//! probability `q`. A lost cancel leaves a **zombie** copy in a remote
//! queue that may start — and even run to completion — after its job
//! already finished elsewhere, wasting node-time and inflating everyone
//! else's queue wait.
//!
//! The sweep crosses cancellation loss probability × cancellation delay
//! × platform size, always under the aggressive ALL scheme, and reports
//! each cell relative to the *perfect-middleware* run of the same scheme
//! on identical job streams: relative average stretch, wasted
//! node-seconds, waste as a fraction of useful work, and zombie starts
//! per replication. At `q = 0` with zero delay the fault model is
//! disabled and every relative metric is exactly 1 (or 0 waste) — the
//! bit-identity guarantee of `rbr_grid::sim`.

use rbr_grid::{Delay, GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};
use rbr_stats::WasteAccount;

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the faulty-middleware sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Platform sizes (number of clusters) to evaluate.
    pub n_values: Vec<usize>,
    /// Cancellation loss probabilities `q` to sweep.
    pub cancel_loss: Vec<f64>,
    /// Fixed one-way cancellation delays (seconds) to sweep.
    pub cancel_delay_secs: Vec<f64>,
    /// Redundancy scheme under test (default: ALL, the worst case).
    pub scheme: Scheme,
    /// Replications per cell.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The default protocol at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let (n_values, cancel_loss, cancel_delay_secs) = match scale {
            Scale::Smoke => (vec![3], vec![0.0, 0.5, 1.0], vec![10.0]),
            Scale::Quick => (vec![5, 10], vec![0.0, 0.1, 0.5, 1.0], vec![0.0, 30.0]),
            Scale::Paper => (
                vec![5, 10, 20],
                vec![0.0, 0.05, 0.1, 0.25, 0.5, 1.0],
                vec![0.0, 30.0, 300.0],
            ),
        };
        Config {
            n_values,
            cancel_loss,
            cancel_delay_secs,
            scheme: Scheme::All,
            reps: scale.reps(),
            window: scale.window(),
            seed: 57,
        }
    }
}

/// One cell of the sweep.
#[derive(Clone, Copy, Debug)]
pub struct Row {
    /// Number of clusters.
    pub n: usize,
    /// Cancellation loss probability `q`.
    pub cancel_loss: f64,
    /// One-way cancellation delay in seconds.
    pub cancel_delay_secs: f64,
    /// Average stretch relative to the perfect-middleware run of the
    /// same scheme on the same seeds.
    pub rel_stretch: f64,
    /// Mean wasted node-seconds per replication.
    pub wasted_node_secs: f64,
    /// Wasted work as a fraction of useful work (work-weighted over the
    /// replications).
    pub waste_fraction: f64,
    /// Mean zombie starts per replication.
    pub zombie_starts: f64,
}

/// Runs the sweep. Each platform size gets one perfect-middleware
/// baseline, shared across every (loss, delay) cell at that size — the
/// paired design on the fault axis.
pub fn run(config: &Config) -> Vec<Row> {
    let mut rows = Vec::new();
    for (n_idx, &n) in config.n_values.iter().enumerate() {
        let seed = SeedSequence::new(config.seed).child(n_idx as u64);
        let mut base = GridConfig::homogeneous(n, config.scheme);
        base.window = config.window;
        let baseline = run_reps(&base, config.reps, seed, RunMetrics::from_run);

        for &loss in &config.cancel_loss {
            for &delay in &config.cancel_delay_secs {
                let mut cfg = base.clone();
                cfg.faults.cancel_loss = loss;
                cfg.faults.cancel_delay = if delay > 0.0 {
                    Delay::Fixed(Duration::from_secs(delay))
                } else {
                    Delay::Zero
                };
                let treatment = run_reps(&cfg, config.reps, seed, RunMetrics::from_run);
                let mut waste = WasteAccount::new();
                for m in &treatment {
                    waste.add(m.useful_node_secs, m.wasted_node_secs);
                }
                let reps = treatment.len() as f64;
                let wasted_mean = treatment.iter().map(|m| m.wasted_node_secs).sum::<f64>() / reps;
                let zombies_mean = treatment.iter().map(|m| m.zombie_starts).sum::<f64>() / reps;
                let cmp = Comparison::new(baseline.clone(), treatment);
                rows.push(Row {
                    n,
                    cancel_loss: loss,
                    cancel_delay_secs: delay,
                    rel_stretch: cmp.rel_stretch(),
                    wasted_node_secs: wasted_mean,
                    waste_fraction: waste.fraction(),
                    zombie_starts: zombies_mean,
                });
            }
        }
    }
    rows
}

/// The sweep as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Faulty middleware — cost of lost/delayed cancellations (vs perfect middleware)",
        vec![
            "N",
            "cancel loss q",
            "cancel delay (s)",
            "rel stretch",
            "wasted node-s",
            "waste frac",
            "zombies/rep",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::int(r.n as i64),
            Cell::float(r.cancel_loss, 2),
            Cell::float(r.cancel_delay_secs, 0),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.wasted_node_secs, 0),
            Cell::percent(r.waste_fraction, 2),
            Cell::float(r.zombie_starts, 1),
        ]);
    }
    t
}

/// Renders the sweep.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// The faults experiment's registry entry.
pub struct Faults;

impl Experiment for Faults {
    fn name(&self) -> &'static str {
        "faults"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: unreliable middleware — lost/delayed cancellations, zombies, wasted work"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §3"
    }

    fn default_seed(&self) -> u64 {
        57
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.window = Duration::from_secs(900.0);
        cfg.reps = 2;
        cfg
    }

    #[test]
    fn perfect_cell_is_the_baseline() {
        let mut cfg = tiny();
        cfg.cancel_loss = vec![0.0];
        cfg.cancel_delay_secs = vec![0.0];
        let rows = run(&cfg);
        assert_eq!(rows.len(), 1);
        // Loss 0 + delay 0 disables the fault model entirely: the
        // treatment IS the baseline, bit for bit.
        assert!((rows[0].rel_stretch - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].wasted_node_secs, 0.0);
        assert_eq!(rows[0].waste_fraction, 0.0);
        assert_eq!(rows[0].zombie_starts, 0.0);
    }

    #[test]
    fn waste_rises_monotonically_with_cancellation_loss() {
        let mut cfg = tiny();
        cfg.cancel_loss = vec![0.0, 0.5, 1.0];
        cfg.cancel_delay_secs = vec![10.0];
        let rows = run(&cfg);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].wasted_node_secs <= rows[1].wasted_node_secs + 1e-9
                && rows[1].wasted_node_secs <= rows[2].wasted_node_secs + 1e-9,
            "waste must grow with loss: {:?}",
            rows.iter().map(|r| r.wasted_node_secs).collect::<Vec<_>>()
        );
        assert!(rows[2].wasted_node_secs > 0.0);
        assert!(rows[2].zombie_starts > 0.0);
        // Certain loss hurts stretch at least as much as no loss.
        assert!(rows[2].rel_stretch >= rows[0].rel_stretch - 1e-9);
    }

    #[test]
    fn render_contains_the_metric_columns() {
        let mut cfg = tiny();
        cfg.cancel_loss = vec![1.0];
        let rows = run(&cfg);
        let text = render(&rows);
        assert!(text.contains("rel stretch"));
        assert!(text.contains("waste frac"));
    }
}
