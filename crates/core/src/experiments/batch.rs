//! Beyond the paper: how much redundancy becomes sustainable when the
//! middleware batches its transactions?
//!
//! Section 4.2's r < 3 bound is a *per-transaction* cost: every submit
//! and every cancel pays a full WS-GRAM round-trip. This experiment
//! quantifies the batching remedy along both of the paper's axes:
//!
//! * **Capacity** (the Section 4 arithmetic, first table): per-component
//!   sustainable redundancy at the peak-hour interarrival time as a
//!   function of batch size, from `rbr-middleware`'s
//!   [`BatchedTransaction`] amortization model, plus the mean batch-fill
//!   latency an operation pays. The `batch = 1` row *is* today's
//!   capacity analysis — identical numbers, guaranteed by the model's
//!   exact-identity special case and locked by a test below.
//! * **Behavior** (the Section 3 simulation, second table): the
//!   multi-cluster sim behind a batching metascheduler
//!   ([`BatchedGridSim`]), batching both submit and cancel transactions
//!   at the swept size with a fixed flush deadline. Each cell reports
//!   stretch relative to the *unbatched* run on identical job streams,
//!   cancel transactions dispatched, zombies, and wasted node-seconds —
//!   the batch-fill latency shows up as waiting (and, on the cancel
//!   side, as cancellation lag that leaks zombie starts).

use rbr_grid::{BatchSpec, BatchedGridSim, GridConfig, RunResult, Scheme};
use rbr_middleware::{BatchedTransaction, Bottleneck, SystemCapacity};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::framework;
use super::{run_reps, Comparison, Experiment, RunMetrics};

/// Parameters of the batch-size sweep.
#[derive(Clone, Debug)]
pub struct Config {
    /// Batch sizes (ops per transaction) to sweep; must include 1 for
    /// the identity row.
    pub batch_sizes: Vec<u32>,
    /// Peak-hour job interarrival time (seconds) for the capacity rows.
    pub iat_secs: f64,
    /// Flush deadline for unfilled transactions in the sim (seconds).
    pub deadline_secs: f64,
    /// Redundancy scheme under test (default: ALL, the worst case).
    pub scheme: Scheme,
    /// Number of clusters in the sim.
    pub n: usize,
    /// Replications per cell.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// The default sweep at reduced fidelity.
    pub fn at_scale(scale: Scale) -> Self {
        let (batch_sizes, n) = match scale {
            Scale::Smoke => (vec![1, 4, 16], 3),
            Scale::Quick => (vec![1, 2, 4, 8, 32], 5),
            Scale::Paper => (vec![1, 2, 4, 8, 16, 64], 10),
        };
        Config {
            batch_sizes,
            iat_secs: 5.0,
            deadline_secs: 30.0,
            scheme: Scheme::All,
            n,
            reps: scale.reps(),
            window: scale.window(),
            seed: 58,
        }
    }
}

/// One capacity row: the Section 4 arithmetic at one batch size.
#[derive(Clone, Copy, Debug)]
pub struct CapacityRow {
    /// Ops per transaction.
    pub batch: u32,
    /// Sustainable redundancy at the scheduler.
    pub r_scheduler: f64,
    /// Sustainable redundancy at the middleware (WS-GRAM).
    pub r_middleware: f64,
    /// Sustainable redundancy at the SOAP layer.
    pub r_soap: f64,
    /// Sustainable redundancy at the network.
    pub r_network: f64,
    /// System-wide bound (componentwise min).
    pub r_system: f64,
    /// The binding component.
    pub bottleneck: Bottleneck,
    /// Mean seconds an op waits for its transaction to fill at the
    /// per-cluster submission rate `1/iat`.
    pub fill_latency_secs: f64,
}

/// One sim row: batched vs unbatched behavior at one batch size.
#[derive(Clone, Copy, Debug)]
pub struct SimRow {
    /// Ops per transaction (submits and cancels alike).
    pub batch: u32,
    /// Average stretch relative to the unbatched run on the same seeds.
    pub rel_stretch: f64,
    /// Mean cancel transactions dispatched per replication.
    pub cancel_batches: f64,
    /// Mean zombie starts per replication.
    pub zombie_starts: f64,
    /// Mean wasted node-seconds per replication.
    pub wasted_node_secs: f64,
}

/// The capacity side: pure arithmetic, no simulation.
pub fn capacity_rows(config: &Config) -> Vec<CapacityRow> {
    let sys = SystemCapacity::paper_2006();
    config
        .batch_sizes
        .iter()
        .map(|&b| {
            let txn = BatchedTransaction::of(b);
            let per = sys.max_redundancy_per_component_batched(config.iat_secs, txn);
            let at = |c: Bottleneck| {
                per.iter()
                    .find(|(k, _)| *k == c)
                    .expect("all four components present")
                    .1
            };
            let (bottleneck, _) = sys.bottleneck_batched(txn);
            CapacityRow {
                batch: b,
                r_scheduler: at(Bottleneck::Scheduler),
                r_middleware: at(Bottleneck::Middleware),
                r_soap: at(Bottleneck::Soap),
                r_network: at(Bottleneck::Network),
                r_system: sys.max_redundancy_batched(config.iat_secs, txn),
                bottleneck,
                fill_latency_secs: txn.expected_fill_latency(1.0 / config.iat_secs),
            }
        })
        .collect()
}

/// Replication harness for the batched simulator: replication `k` uses
/// `seed.child(k)`, exactly like `run_reps`, so a batched cell pairs
/// with the unbatched baseline on identical job streams.
fn run_reps_batched<T, F>(
    config: &GridConfig,
    submit_batch: BatchSpec,
    reps: usize,
    seed: SeedSequence,
    reduce: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(&RunResult) -> T + Sync,
{
    let tally = framework::current_tally();
    rbr_exec::map_cells(reps, |rep| {
        let _tally = framework::install_tally(tally.clone());
        let run = BatchedGridSim::execute(config.clone(), submit_batch, seed.child(rep as u64));
        framework::record_sim(&run);
        reduce(&run)
    })
}

/// The behavioral side: batched metascheduler vs the unbatched run.
pub fn sim_rows(config: &Config) -> Vec<SimRow> {
    let seed = SeedSequence::new(config.seed);
    let mut base = GridConfig::homogeneous(config.n, config.scheme);
    base.window = config.window;
    let baseline = run_reps(&base, config.reps, seed, RunMetrics::from_run);
    let deadline = Duration::from_secs(config.deadline_secs);

    config
        .batch_sizes
        .iter()
        .map(|&b| {
            let batch = BatchSpec::of(b, if b > 1 { deadline } else { Duration::ZERO });
            let mut cfg = base.clone();
            cfg.faults.cancel_batch = batch;
            let reduce = |run: &RunResult| (RunMetrics::from_run(run), run.cancel_batches as f64);
            let cells = run_reps_batched(&cfg, batch, config.reps, seed, reduce);
            let reps = cells.len() as f64;
            let mean =
                |f: &dyn Fn(&(RunMetrics, f64)) -> f64| cells.iter().map(f).sum::<f64>() / reps;
            let treatment: Vec<RunMetrics> = cells.iter().map(|(m, _)| *m).collect();
            let cmp = Comparison::new(baseline.clone(), treatment);
            SimRow {
                batch: b,
                rel_stretch: cmp.rel_stretch(),
                cancel_batches: mean(&|(_, cb)| *cb),
                zombie_starts: mean(&|(m, _)| m.zombie_starts),
                wasted_node_secs: mean(&|(m, _)| m.wasted_node_secs),
            }
        })
        .collect()
}

fn bottleneck_name(b: Bottleneck) -> &'static str {
    match b {
        Bottleneck::Scheduler => "scheduler",
        Bottleneck::Middleware => "middleware",
        Bottleneck::Soap => "soap",
        Bottleneck::Network => "network",
    }
}

/// The capacity sweep as a typed table.
pub fn capacity_table(rows: &[CapacityRow]) -> TypedTable {
    let mut t = TypedTable::new(
        "Batched transactions — sustainable redundancy vs batch size (Section 4 arithmetic)",
        vec![
            "batch",
            "r scheduler",
            "r middleware",
            "r soap",
            "r network",
            "r system",
            "bottleneck",
            "fill latency (s)",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::int(r.batch as i64),
            Cell::float(r.r_scheduler, 1),
            Cell::float(r.r_middleware, 2),
            Cell::float(r.r_soap, 1),
            Cell::float(r.r_network, 1),
            Cell::float(r.r_system, 2),
            Cell::text(bottleneck_name(r.bottleneck)),
            Cell::float(r.fill_latency_secs, 1),
        ]);
    }
    t
}

/// The sim sweep as a typed table.
pub fn sim_table(rows: &[SimRow]) -> TypedTable {
    let mut t = TypedTable::new(
        "Batched metascheduler — behavior vs the unbatched run (identical job streams)",
        vec![
            "batch",
            "rel stretch",
            "cancel txns/rep",
            "zombies/rep",
            "wasted node-s",
        ],
    );
    for r in rows {
        t.push(vec![
            Cell::int(r.batch as i64),
            Cell::float(r.rel_stretch, 3),
            Cell::float(r.cancel_batches, 1),
            Cell::float(r.zombie_starts, 1),
            Cell::float(r.wasted_node_secs, 0),
        ]);
    }
    t
}

/// The batch experiment's registry entry.
pub struct Batch;

impl Experiment for Batch {
    fn name(&self) -> &'static str {
        "batch"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: batched submit/cancel transactions — sustainable redundancy vs batch size, and the batching metascheduler's behavior"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §4"
    }

    fn default_seed(&self) -> u64 {
        58
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![
            capacity_table(&capacity_rows(&config)),
            sim_table(&sim_rows(&config)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.window = Duration::from_secs(900.0);
        cfg.reps = 2;
        cfg
    }

    /// The acceptance gate: the `batch = 1` capacity row reproduces
    /// today's unbatched capacity analysis exactly — same componentwise
    /// redundancy bounds, same bottleneck, same system bound, bit for
    /// bit.
    #[test]
    fn unit_batch_row_reproduces_unbatched_capacity_exactly() {
        let cfg = tiny();
        let rows = capacity_rows(&cfg);
        let r1 = rows.iter().find(|r| r.batch == 1).expect("batch=1 row");
        let sys = SystemCapacity::paper_2006();
        assert_eq!(r1.r_system, sys.max_redundancy(cfg.iat_secs));
        assert_eq!(r1.bottleneck, sys.bottleneck().0);
        for (c, want) in sys.max_redundancy_per_component(cfg.iat_secs) {
            let got = match c {
                Bottleneck::Scheduler => r1.r_scheduler,
                Bottleneck::Middleware => r1.r_middleware,
                Bottleneck::Soap => r1.r_soap,
                Bottleneck::Network => r1.r_network,
            };
            assert_eq!(got, want, "{c:?}");
        }
        assert_eq!(r1.fill_latency_secs, 0.0);
    }

    #[test]
    fn capacity_bound_is_monotone_in_batch_size() {
        let rows = capacity_rows(&tiny());
        for pair in rows.windows(2) {
            assert!(
                pair[1].r_system >= pair[0].r_system,
                "batch {} bound {} below batch {} bound {}",
                pair[1].batch,
                pair[1].r_system,
                pair[0].batch,
                pair[0].r_system
            );
        }
        // And batching genuinely helps: the largest batch clears r = 3.
        assert!(rows.last().unwrap().r_system > 3.0);
    }

    #[test]
    fn sim_unit_batch_is_the_baseline() {
        let mut cfg = tiny();
        cfg.batch_sizes = vec![1];
        let rows = sim_rows(&cfg);
        assert_eq!(rows.len(), 1);
        // Batch 1 disables both submit and cancel batching: the
        // treatment IS the baseline, bit for bit.
        assert!((rows[0].rel_stretch - 1.0).abs() < 1e-12);
        assert_eq!(rows[0].cancel_batches, 0.0);
        assert_eq!(rows[0].zombie_starts, 0.0);
        assert_eq!(rows[0].wasted_node_secs, 0.0);
    }

    #[test]
    fn batched_cells_dispatch_transactions() {
        let mut cfg = tiny();
        cfg.batch_sizes = vec![4];
        let rows = sim_rows(&cfg);
        assert!(rows[0].cancel_batches > 0.0, "cancel batching must engage");
        assert!(rows[0].rel_stretch.is_finite());
    }

    #[test]
    fn tables_render_both_sides() {
        let mut cfg = tiny();
        cfg.batch_sizes = vec![1, 4];
        let cap = capacity_table(&capacity_rows(&cfg)).to_text();
        assert!(cap.contains("r middleware"));
        assert!(cap.contains("bottleneck"));
        let sim = sim_table(&sim_rows(&cfg)).to_text();
        assert!(sim.contains("rel stretch"));
        assert!(sim.contains("cancel txns/rep"));
    }
}
