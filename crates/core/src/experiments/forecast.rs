//! Beyond the paper: the effect of redundant requests on *statistical*
//! queue-wait forecasting.
//!
//! The paper's conclusion leaves this open: "statistical techniques for
//! predicting queue waiting times are more promising... It would be
//! interesting to explore the effect of redundant requests on these
//! techniques." This experiment runs the Binomial-Method quantile-bound
//! predictor of Brevik–Nurmi–Wolski over our grid runs and reports its
//! coverage (fraction of waits that respected the bound) and tightness
//! (bound ÷ wait), for jobs with and without redundancy, as the
//! redundant fraction grows.

use rbr_forecast::{evaluate, QuantilePredictor};
use rbr_grid::{GridConfig, Scheme};
use rbr_simcore::{Duration, SeedSequence};

use crate::report::{Cell, TypedTable};
use crate::scale::Scale;

use super::{run_reps, Experiment};

/// Parameters of the forecasting experiment.
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of clusters.
    pub n: usize,
    /// Scheme used by redundant jobs.
    pub scheme: Scheme,
    /// Fractions of jobs using redundancy to sweep (0 = the baseline).
    pub fractions: Vec<f64>,
    /// Target quantile of the wait bound.
    pub quantile: f64,
    /// Confidence of the bound.
    pub confidence: f64,
    /// Replications.
    pub reps: usize,
    /// Submission window.
    pub window: Duration,
    /// Floor for the tightness ratio (seconds).
    pub floor_secs: f64,
    /// Master seed.
    pub seed: u64,
}

impl Config {
    /// Default protocol: N = 10, ALL, the canonical 0.95/0.95 bound.
    pub fn at_scale(scale: Scale) -> Self {
        Config {
            n: 10,
            scheme: Scheme::All,
            fractions: match scale {
                Scale::Smoke => vec![0.0, 0.4],
                _ => vec![0.0, 0.2, 0.4, 0.8],
            },
            quantile: 0.95,
            confidence: 0.95,
            reps: scale.reps().min(8),
            window: scale.window(),
            floor_secs: 1.0,
            seed: 56,
        }
    }
}

/// One population's scores at one fraction.
#[derive(Clone, Debug)]
pub struct Row {
    /// Fraction of jobs using redundancy.
    pub fraction: f64,
    /// Which population ("all", "r jobs", "n-r jobs").
    pub population: String,
    /// Empirical coverage of the bound (target: `quantile`).
    pub correctness: f64,
    /// Mean bound ÷ wait (≥ 1 means conservative).
    pub tightness: f64,
    /// Jobs that had a prediction.
    pub predicted: usize,
}

type Pick = dyn Fn(&rbr_forecast::Evaluation) -> rbr_forecast::evaluate::PopulationScore;

/// Runs the experiment.
pub fn run(config: &Config) -> Vec<Row> {
    let predictor = QuantilePredictor::new(config.quantile, config.confidence, 512);
    let mut rows = Vec::new();
    for (f_idx, &fraction) in config.fractions.iter().enumerate() {
        let seed = SeedSequence::new(config.seed).child(f_idx as u64);
        let mut cfg = GridConfig::homogeneous(config.n, config.scheme);
        cfg.redundant_fraction = fraction;
        cfg.window = config.window;
        let floor = config.floor_secs;
        let pred = predictor.clone();
        let evals = run_reps(&cfg, config.reps, seed, move |run| {
            evaluate(run, &pred, floor)
        });

        let mut push = |population: &str, pick: &Pick| {
            let picked: Vec<_> = evals.iter().map(pick).collect();
            let total: usize = picked.iter().map(|p| p.predicted).sum();
            if total == 0 {
                return;
            }
            let covered: usize = picked.iter().map(|p| p.covered).sum();
            let tightness = picked
                .iter()
                .filter(|p| p.predicted > 0)
                .map(|p| p.tightness_mean * p.predicted as f64)
                .sum::<f64>()
                / total as f64;
            rows.push(Row {
                fraction,
                population: population.to_string(),
                correctness: covered as f64 / total as f64,
                tightness,
                predicted: total,
            });
        };
        push("all", &|e| e.all);
        if fraction > 0.0 {
            push("r jobs", &|e| e.redundant);
            push("n-r jobs", &|e| e.non_redundant);
        }
    }
    rows
}

/// The experiment as a typed table.
pub fn table(rows: &[Row]) -> TypedTable {
    let mut t = TypedTable::new(
        "Forecast — Binomial-Method wait bounds under redundancy",
        vec!["p", "population", "coverage", "tightness", "predicted"],
    );
    for r in rows {
        t.push(vec![
            Cell::percent(r.fraction, 0),
            Cell::text(r.population.clone()),
            Cell::float(r.correctness, 3),
            Cell::float(r.tightness, 2),
            Cell::int(r.predicted as i64),
        ]);
    }
    t
}

/// Renders the experiment.
pub fn render(rows: &[Row]) -> String {
    table(rows).to_text()
}

/// The forecasting study's registry entry.
pub struct Forecast;

impl Experiment for Forecast {
    fn name(&self) -> &'static str {
        "forecast"
    }

    fn description(&self) -> &'static str {
        "beyond the paper: statistical queue-wait forecasting under redundancy"
    }

    fn paper_section(&self) -> &'static str {
        "beyond §6"
    }

    fn default_seed(&self) -> u64 {
        56
    }

    fn replications(&self, scale: Scale) -> usize {
        Config::at_scale(scale).reps
    }

    fn tables(&self, scale: Scale, seed: u64, reps: Option<usize>) -> Vec<TypedTable> {
        let mut config = Config::at_scale(scale);
        config.seed = seed;
        if let Some(r) = reps {
            config.reps = r;
        }
        vec![table(&run(&config))]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run() {
        let mut cfg = Config::at_scale(Scale::Smoke);
        cfg.n = 3;
        cfg.reps = 2;
        cfg.window = Duration::from_secs(3_600.0);
        let rows = run(&cfg);
        // Baseline gives one row; the mixed fraction gives three.
        assert!(rows.len() >= 3, "rows: {}", rows.len());
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.correctness));
            assert!(r.tightness >= 0.0);
        }
        assert!(render(&rows).contains("coverage"));
    }
}
