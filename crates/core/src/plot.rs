//! ASCII line plots for the figure reproductions.
//!
//! The paper's results are figures; the harness reproduces them as data
//! series, and this module renders those series as monospace plots so a
//! terminal diff against the paper's curves is possible at a glance.

/// One named series: label, marker character, and its (x, y) points.
type Series = (String, char, Vec<(f64, f64)>);

/// A scatter/line plot with one marker character per series.
#[derive(Clone, Debug)]
pub struct AsciiPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

/// Marker characters assigned to series in order.
const MARKERS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

impl AsciiPlot {
    /// Creates an empty plot with the given labels.
    pub fn new(title: &str, x_label: &str, y_label: &str) -> Self {
        AsciiPlot {
            title: title.to_string(),
            x_label: x_label.to_string(),
            y_label: y_label.to_string(),
            width: 64,
            height: 20,
            series: Vec::new(),
        }
    }

    /// Overrides the canvas size (characters).
    ///
    /// # Panics
    /// Panics on degenerate sizes (needs at least 8×4).
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(
            width >= 8 && height >= 4,
            "canvas too small: {width}x{height}"
        );
        self.width = width;
        self.height = height;
        self
    }

    /// Adds one series; markers are assigned in insertion order. Points
    /// with non-finite coordinates are dropped.
    pub fn series(mut self, label: &str, points: &[(f64, f64)]) -> Self {
        let marker = MARKERS[self.series.len() % MARKERS.len()];
        let pts: Vec<(f64, f64)> = points
            .iter()
            .copied()
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        self.series.push((label.to_string(), marker, pts));
        self
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, _, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = bounds(all.iter().map(|p| p.0));
        let (mut y_min, mut y_max) = bounds(all.iter().map(|p| p.1));
        if x_min == x_max {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if y_min == y_max {
            y_min -= 0.5;
            y_max += 0.5;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (_, marker, pts) in &self.series {
            for &(x, y) in pts {
                let col =
                    ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let row =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row; // y grows upward
                let cell = &mut grid[row][col.min(self.width - 1)];
                // Overlapping series show the later marker.
                *cell = *marker;
            }
        }

        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!("{} ({})\n", self.y_label, compact(y_max)));
        for row in &grid {
            out.push_str("  |");
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("  ({})", compact(y_min)));
        out.push('+');
        out.push_str(&"-".repeat(self.width.saturating_sub(2)));
        out.push('\n');
        out.push_str(&format!(
            "   {} .. {}  ({})\n",
            compact(x_min),
            compact(x_max),
            self.x_label
        ));
        out.push_str("  legend:");
        for (label, marker, _) in &self.series {
            out.push_str(&format!(" {marker}={label}"));
        }
        out.push('\n');
        out
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn compact(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_within_canvas() {
        let plot = AsciiPlot::new("test", "x", "y")
            .with_size(32, 8)
            .series("a", &[(0.0, 0.0), (1.0, 1.0), (2.0, 4.0)]);
        let s = plot.render();
        assert!(s.contains("test"));
        assert!(s.contains('o'));
        assert!(s.contains("legend: o=a"));
        // 8 canvas rows between title/labels.
        let canvas_rows = s.lines().filter(|l| l.starts_with("  |")).count();
        assert_eq!(canvas_rows, 8);
    }

    #[test]
    fn multiple_series_get_distinct_markers() {
        let plot = AsciiPlot::new("t", "x", "y")
            .series("first", &[(0.0, 1.0)])
            .series("second", &[(1.0, 2.0)]);
        let s = plot.render();
        assert!(s.contains("o=first"));
        assert!(s.contains("+=second"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let plot = AsciiPlot::new("flat", "x", "y").series("a", &[(1.0, 5.0), (2.0, 5.0)]);
        let s = plot.render();
        assert!(s.contains('o'));
    }

    #[test]
    fn non_finite_points_are_dropped() {
        let plot = AsciiPlot::new("nan", "x", "y").series("a", &[(0.0, f64::NAN), (1.0, 2.0)]);
        let s = plot.render();
        assert!(s.contains('o'));
    }

    #[test]
    fn empty_plot_says_so() {
        let plot = AsciiPlot::new("void", "x", "y");
        assert!(plot.render().contains("no data"));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn degenerate_canvas_rejected() {
        let _ = AsciiPlot::new("t", "x", "y").with_size(2, 2);
    }
}
