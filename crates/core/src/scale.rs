//! Experiment fidelity presets.
//!
//! The paper averages every result over 50 replications of a 6-hour
//! submission window. That is affordable on a many-core machine but slow
//! on one core, so every experiment runner accepts a [`Scale`]:
//!
//! * [`Scale::Smoke`] — seconds; used by tests.
//! * [`Scale::Quick`] — minutes on a laptop core; the default for
//!   benches and examples. Shapes are stable; error bars are wider than
//!   the paper's.
//! * [`Scale::Paper`] — the paper's full 50 × 6 h protocol.
//!
//! Override via the `RBR_SCALE` environment variable
//! (`smoke` / `quick` / `paper`) for any harness that calls
//! [`Scale::from_env`].

use rbr_simcore::Duration;

/// How much fidelity (wall-clock time) to spend on an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Minimal: 2 replications of a 30-minute window.
    Smoke,
    /// Reduced: 16 replications of the paper's 6-hour window (the window
    /// sets the load regime, so it is not shortened below `Paper`).
    Quick,
    /// The paper's protocol: 50 replications of a 6-hour window.
    Paper,
}

impl Scale {
    /// Number of replications per configuration.
    pub fn reps(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 16,
            Scale::Paper => 50,
        }
    }

    /// Submission-window length.
    pub fn window(self) -> Duration {
        match self {
            Scale::Smoke => Duration::from_secs(1_800.0),
            Scale::Quick => Duration::from_hours(6),
            Scale::Paper => Duration::from_hours(6),
        }
    }

    /// Replications for CBF-heavy experiments (schedule compression makes
    /// CBF roughly 30× slower than EASY, so fewer replications keep the
    /// harness responsive below `Paper` scale).
    pub fn cbf_reps(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Quick => 6,
            Scale::Paper => 50,
        }
    }

    /// Lower-case canonical name (`"smoke"` / `"quick"` / `"paper"`).
    pub fn name(self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Quick => "quick",
            Scale::Paper => "paper",
        }
    }

    /// Parses a scale name, case-insensitively.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Reads `RBR_SCALE` (`smoke`/`quick`/`paper`), defaulting to the
    /// given scale when unset or unrecognised.
    pub fn from_env(default: Scale) -> Scale {
        std::env::var("RBR_SCALE")
            .ok()
            .and_then(|s| Scale::parse(&s))
            .unwrap_or(default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_matches_protocol() {
        assert_eq!(Scale::Paper.reps(), 50);
        assert_eq!(Scale::Paper.window(), Duration::from_hours(6));
    }

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Smoke.reps() < Scale::Quick.reps());
        assert!(Scale::Quick.reps() < Scale::Paper.reps());
        assert!(Scale::Smoke.window() < Scale::Quick.window());
        assert!(Scale::Quick.window() <= Scale::Paper.window());
    }

    #[test]
    fn names_round_trip() {
        for scale in [Scale::Smoke, Scale::Quick, Scale::Paper] {
            assert_eq!(Scale::parse(scale.name()), Some(scale));
        }
        assert_eq!(Scale::parse("PAPER"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn env_fallback_uses_default() {
        // The variable is not set in the test environment.
        std::env::remove_var("RBR_SCALE");
        assert_eq!(Scale::from_env(Scale::Quick), Scale::Quick);
    }
}
