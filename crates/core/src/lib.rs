//! # rbr — *On the Harmfulness of Redundant Batch Requests*, reproduced
//!
//! This crate is the top of the workspace reproducing Casanova's HPDC 2006
//! study of **redundant batch requests**: users who submit the same job to
//! several batch-scheduled clusters at once and cancel the losing copies
//! the moment one starts.
//!
//! The substrates live in their own crates and are re-exported here:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `rbr-simcore` | deterministic DES kernel |
//! | [`dist`] | `rbr-dist` | Gamma / hyper-Gamma / two-stage samplers |
//! | [`stats`] | `rbr-stats` | summaries, CV, paired relative metrics |
//! | [`workload`] | `rbr-workload` | Lublin model, estimate models, SWF |
//! | [`sched`] | `rbr-sched` | FCFS, EASY, Conservative Backfilling |
//! | [`grid`] | `rbr-grid` | the multi-cluster redundant-request sim |
//! | [`middleware`] | `rbr-middleware` | Section 4 load models |
//!
//! The [`experiments`] module contains one parameterized, reproducible
//! runner per figure and table of the paper (and several ablations beyond
//! it), all registered in a single [`Registry`]; [`scale`] selects how
//! much fidelity to spend, and [`report`] carries the structured results
//! (typed tables plus per-run provenance) with text, CSV, and JSON
//! renderers.
//!
//! ```no_run
//! use rbr::experiments::Registry;
//! use rbr::report::Format;
//! use rbr::Scale;
//!
//! let registry = Registry::standard();
//! let report = registry.get("fig1").unwrap().run(Scale::Smoke, 42);
//! println!("{}", report.render(Format::Text));
//! ```

pub mod experiments;
pub mod plot;
pub mod report;
pub mod scale;

pub use experiments::{Experiment, Registry};
pub use report::{Format, Report};

pub use rbr_dist as dist;
pub use rbr_forecast as forecast;
pub use rbr_grid as grid;
pub use rbr_middleware as middleware;
pub use rbr_sched as sched;
pub use rbr_simcore as sim;
pub use rbr_stats as stats;
pub use rbr_workload as workload;

pub use scale::Scale;
