//! # rbr — *On the Harmfulness of Redundant Batch Requests*, reproduced
//!
//! This crate is the top of the workspace reproducing Casanova's HPDC 2006
//! study of **redundant batch requests**: users who submit the same job to
//! several batch-scheduled clusters at once and cancel the losing copies
//! the moment one starts.
//!
//! The substrates live in their own crates and are re-exported here:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `rbr-simcore` | deterministic DES kernel |
//! | [`dist`] | `rbr-dist` | Gamma / hyper-Gamma / two-stage samplers |
//! | [`stats`] | `rbr-stats` | summaries, CV, paired relative metrics |
//! | [`workload`] | `rbr-workload` | Lublin model, estimate models, SWF |
//! | [`sched`] | `rbr-sched` | FCFS, EASY, Conservative Backfilling |
//! | [`grid`] | `rbr-grid` | the multi-cluster redundant-request sim |
//! | [`middleware`] | `rbr-middleware` | Section 4 load models |
//!
//! The [`experiments`] module contains one parameterized, reproducible
//! runner per figure and table of the paper (and several ablations beyond
//! it); [`scale`] selects how much fidelity to spend, and [`report`]
//! renders results as aligned text or CSV.
//!
//! ```no_run
//! use rbr::experiments::fig1;
//! use rbr::scale::Scale;
//!
//! let rows = fig1::run(&fig1::Config::at_scale(Scale::Smoke));
//! println!("{}", fig1::render(&rows));
//! ```

pub mod experiments;
pub mod plot;
pub mod report;
pub mod scale;

pub use rbr_dist as dist;
pub use rbr_forecast as forecast;
pub use rbr_grid as grid;
pub use rbr_middleware as middleware;
pub use rbr_sched as sched;
pub use rbr_simcore as sim;
pub use rbr_stats as stats;
pub use rbr_workload as workload;

pub use scale::Scale;
